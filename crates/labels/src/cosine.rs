//! Cosine similarity over q-gram multisets — the string measure the paper's
//! evaluation uses for `S^L` ("cosine similarity with q-grams" \[9\]).

use crate::LabelSimilarity;
use std::collections::BTreeMap;

/// Builds the q-gram multiset profile of `s`.
///
/// Following the q-gram literature the string is padded with `q - 1` copies
/// of `#` (prefix) and `$` (suffix) so that boundary characters contribute as
/// many grams as interior ones. Operates on `char`s, so multi-byte labels
/// (e.g. the paper's garbled `?????`) are handled correctly.
///
/// # Panics
///
/// Panics when `q == 0`; see [`crate::LabelsError::ZeroQ`] for the typed
/// counterpart used by validating callers.
pub fn qgram_profile(s: &str, q: usize) -> BTreeMap<Vec<char>, u32> {
    assert!(q >= 1, "q must be at least 1");
    let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (q - 1));
    padded.extend(std::iter::repeat('#').take(q - 1));
    padded.extend(s.chars());
    padded.extend(std::iter::repeat('$').take(q - 1));
    let mut profile = BTreeMap::new();
    if padded.len() >= q {
        for w in padded.windows(q) {
            *profile.entry(w.to_vec()).or_insert(0) += 1;
        }
    }
    profile
}

/// Cosine similarity of the q-gram profiles of `a` and `b`.
///
/// Returns 1.0 when both strings are empty (identical), and 0.0 when exactly
/// one is empty.
pub fn qgram_cosine(a: &str, b: &str, q: usize) -> f64 {
    if a == b {
        return 1.0;
    }
    let pa = qgram_profile(a, q);
    let pb = qgram_profile(b, q);
    if pa.is_empty() || pb.is_empty() {
        return if pa.is_empty() && pb.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let dot: f64 = pa
        .iter()
        .filter_map(|(g, &ca)| pb.get(g).map(|&cb| ca as f64 * cb as f64))
        .sum();
    let na: f64 = pa.values().map(|&c| (c as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = pb.values().map(|&c| (c as f64).powi(2)).sum::<f64>().sqrt();
    (dot / (na * nb)).clamp(0.0, 1.0)
}

/// A [`LabelSimilarity`] wrapper around [`qgram_cosine`] with a fixed `q`
/// (the customary `q = 3` by default).
#[derive(Debug, Clone, Copy)]
pub struct QgramCosine {
    /// Gram length.
    pub q: usize,
}

impl Default for QgramCosine {
    fn default() -> Self {
        QgramCosine { q: 3 }
    }
}

impl LabelSimilarity for QgramCosine {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        qgram_cosine(a, b, self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_similarity_one() {
        assert_eq!(qgram_cosine("Check Inventory", "Check Inventory", 3), 1.0);
        assert_eq!(qgram_cosine("", "", 3), 1.0);
    }

    #[test]
    fn disjoint_strings_have_similarity_zero() {
        assert_eq!(qgram_cosine("abc", "xyz", 3), 0.0);
    }

    #[test]
    fn similar_strings_score_between() {
        let s = qgram_cosine("Check Inventory", "Cheque Inventory", 3);
        assert!(s > 0.5 && s < 1.0, "got {s}");
    }

    #[test]
    fn symmetry() {
        let a = "Paid by Cash";
        let b = "Paid by Credit Card";
        assert!((qgram_cosine(a, b, 3) - qgram_cosine(b, a, 3)).abs() < 1e-15);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        assert_eq!(qgram_cosine("", "a", 3), 0.0);
    }

    #[test]
    fn padding_makes_single_chars_comparable() {
        // With padding, "a" and "a" share grams even though |a| < q;
        // and "a" vs "b" share only padding-free grams -> low but defined.
        let same = qgram_cosine("a", "a", 3);
        assert_eq!(same, 1.0);
        let diff = qgram_cosine("a", "b", 3);
        assert!(diff < 1.0);
    }

    #[test]
    fn q1_reduces_to_character_cosine() {
        let s = qgram_cosine("ab", "ba", 1);
        assert!((s - 1.0).abs() < 1e-12); // same character multiset
    }

    #[test]
    fn unicode_labels() {
        let s = qgram_cosine("收货确认", "收货确认", 2);
        assert_eq!(s, 1.0);
        assert!(qgram_cosine("收货确认", "发货确认", 2) < 1.0);
    }

    #[test]
    fn profile_counts_multiplicity() {
        let p = qgram_profile("aaa", 2);
        // Padded: #aaa$ -> grams #a, aa, aa, a$
        assert_eq!(p[&vec!['a', 'a']], 2);
    }

    #[test]
    fn wrapper_uses_q3_by_default() {
        let m = QgramCosine::default();
        assert_eq!(m.q, 3);
        use crate::LabelSimilarity;
        assert_eq!(m.similarity("x", "x"), 1.0);
    }
}
