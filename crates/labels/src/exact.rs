//! Exact-equality label similarity.
//!
//! The strictest measure in the family: `1.0` when the two names are
//! byte-identical, `0.0` otherwise. It is what the catalog's sketch layer
//! assumes when it turns the label term of Definition 2 into a set-overlap
//! upper bound — under equality, `S^L(v1, v2) ≤ [name(v1) ∈ names(G2)]`,
//! so the average row maximum of the label part is capped by the fraction
//! of one graph's names that appear verbatim in the other. No graded
//! measure (q-grams, edit distance, …) admits such a bound from name
//! *sets* alone, which is why the sketch-level label bound is only claimed
//! for this measure.

use crate::LabelSimilarity;

/// Exact string equality: `1.0` iff `a == b`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactName;

impl LabelSimilarity for ExactName {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        if a == b {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_names_score_one() {
        assert_eq!(ExactName.similarity("ship order", "ship order"), 1.0);
    }

    #[test]
    fn unequal_names_score_zero() {
        assert_eq!(ExactName.similarity("ship order", "ship  order"), 0.0);
        assert_eq!(ExactName.similarity("a", "A"), 0.0);
        assert_eq!(ExactName.similarity("", "a"), 0.0);
    }

    #[test]
    fn empty_equals_empty() {
        assert_eq!(ExactName.similarity("", ""), 1.0);
    }
}
