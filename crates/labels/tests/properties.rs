//! Property tests: every label similarity is symmetric, bounded in [0, 1],
//! and maximal on identical inputs.

use ems_labels::{
    jaro, jaro_winkler, levenshtein, levenshtein_similarity, qgram_cosine, token_jaccard,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    // Printable labels incl. spaces, punctuation and some CJK.
    proptest::string::string_regex("[a-zA-Z0-9 &()+?一-鿿]{0,12}").expect("valid regex")
}

proptest! {
    #[test]
    fn all_measures_bounded_and_symmetric(a in arb_label(), b in arb_label()) {
        let measures: [(&str, fn(&str, &str) -> f64); 4] = [
            ("qgram", |x, y| qgram_cosine(x, y, 3)),
            ("lev", levenshtein_similarity),
            ("jw", jaro_winkler),
            ("jaccard", token_jaccard),
        ];
        for (name, m) in measures {
            let ab = m(&a, &b);
            let ba = m(&b, &a);
            prop_assert!((0.0..=1.0).contains(&ab), "{name}: {ab}");
            prop_assert!((ab - ba).abs() < 1e-12, "{name} asymmetric: {ab} vs {ba}");
        }
    }

    #[test]
    fn identity_is_maximal(a in arb_label()) {
        prop_assert_eq!(qgram_cosine(&a, &a, 3), 1.0);
        prop_assert_eq!(levenshtein_similarity(&a, &a), 1.0);
        prop_assert_eq!(jaro(&a, &a), 1.0);
        prop_assert_eq!(token_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn levenshtein_triangle_inequality(
        a in arb_label(),
        b in arb_label(),
        c in arb_label(),
    ) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_zero_iff_equal(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
    }

    #[test]
    fn levenshtein_bounded_by_longer_length(a in arb_label(), b in arb_label()) {
        let bound = a.chars().count().max(b.chars().count());
        prop_assert!(levenshtein(&a, &b) <= bound);
    }
}
