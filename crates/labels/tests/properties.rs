//! Randomized property tests: every label similarity is symmetric, bounded
//! in [0, 1], and maximal on identical inputs. Driven by the deterministic
//! `ems-rng` generator.

use ems_labels::{
    jaro, jaro_winkler, levenshtein, levenshtein_similarity, qgram_cosine, token_jaccard,
};
use ems_rng::StdRng;

/// Printable labels incl. spaces, punctuation and some CJK, length 0..=12.
fn random_label(rng: &mut StdRng) -> String {
    const ASCII: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 &()+?";
    let len = rng.gen_range(0..=12usize);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.1) {
                // A CJK codepoint from the unified-ideograph block.
                char::from_u32(0x4E00 + rng.gen_range(0..0x2000u32)).unwrap_or('一')
            } else {
                ASCII[rng.gen_range(0..ASCII.len())] as char
            }
        })
        .collect()
}

#[test]
fn all_measures_bounded_and_symmetric() {
    let mut rng = StdRng::seed_from_u64(0x1AB1);
    for _ in 0..256 {
        let a = random_label(&mut rng);
        let b = random_label(&mut rng);
        type Measure = fn(&str, &str) -> f64;
        let measures: [(&str, Measure); 4] = [
            ("qgram", |x, y| qgram_cosine(x, y, 3)),
            ("lev", levenshtein_similarity),
            ("jw", jaro_winkler),
            ("jaccard", token_jaccard),
        ];
        for (name, m) in measures {
            let ab = m(&a, &b);
            let ba = m(&b, &a);
            assert!((0.0..=1.0).contains(&ab), "{name}: {ab}");
            assert!((ab - ba).abs() < 1e-12, "{name} asymmetric: {ab} vs {ba}");
        }
    }
}

#[test]
fn identity_is_maximal() {
    let mut rng = StdRng::seed_from_u64(0x1AB2);
    for _ in 0..256 {
        let a = random_label(&mut rng);
        assert_eq!(qgram_cosine(&a, &a, 3), 1.0);
        assert_eq!(levenshtein_similarity(&a, &a), 1.0);
        assert_eq!(jaro(&a, &a), 1.0);
        assert_eq!(token_jaccard(&a, &a), 1.0);
    }
}

#[test]
fn levenshtein_triangle_inequality() {
    let mut rng = StdRng::seed_from_u64(0x1AB3);
    for _ in 0..256 {
        let a = random_label(&mut rng);
        let b = random_label(&mut rng);
        let c = random_label(&mut rng);
        assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }
}

#[test]
fn levenshtein_zero_iff_equal() {
    let mut rng = StdRng::seed_from_u64(0x1AB4);
    for _ in 0..256 {
        let a = random_label(&mut rng);
        // Mix of independent pairs and forced-equal pairs.
        let b = if rng.gen_bool(0.2) {
            a.clone()
        } else {
            random_label(&mut rng)
        };
        assert_eq!(levenshtein(&a, &b) == 0, a == b);
    }
}

#[test]
fn levenshtein_bounded_by_longer_length() {
    let mut rng = StdRng::seed_from_u64(0x1AB5);
    for _ in 0..256 {
        let a = random_label(&mut rng);
        let b = random_label(&mut rng);
        let bound = a.chars().count().max(b.chars().count());
        assert!(levenshtein(&a, &b) <= bound);
    }
}
