//! Bit-identity properties of the precomputed fixpoint kernel: across
//! random graphs, seeds, budgets and pruning configurations, the worklist
//! kernel must reproduce the reference (seed) implementation *bitwise*, and
//! every thread count must reproduce the serial path bitwise. These are the
//! guarantees that make the `threads` knob a pure wall-clock trade.

use ems_core::engine::{Budget, Engine, RunOptions, RunStats, Seed};
use ems_core::{Direction, EmsParams, SimMatrix};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_rng::StdRng;

fn random_log(rng: &mut StdRng, alphabet: usize) -> ems_events::EventLog {
    let mut log = ems_events::EventLog::new();
    let traces = rng.gen_range(1..12usize);
    for _ in 0..traces {
        let len = rng.gen_range(1..10usize);
        log.push_trace((0..len).map(|_| format!("e{}", rng.gen_range(0..alphabet))));
    }
    log
}

fn random_graph_pair(rng: &mut StdRng) -> (DependencyGraph, DependencyGraph) {
    let alphabet = rng.gen_range(3..9usize);
    (
        DependencyGraph::from_log(&random_log(rng, alphabet)),
        DependencyGraph::from_log(&random_log(rng, alphabet)),
    )
}

fn random_params(rng: &mut StdRng) -> EmsParams {
    let mut p = if rng.gen_bool(0.5) {
        EmsParams::structural()
    } else {
        EmsParams::with_labels(0.7)
    };
    if rng.gen_bool(0.3) {
        p = p.without_pruning();
    }
    if rng.gen_bool(0.3) {
        p = p.estimated(rng.gen_range(0..4usize));
    }
    p
}

fn random_options(rng: &mut StdRng, n1: usize, n2: usize) -> RunOptions {
    let mut opts = RunOptions::default();
    if rng.gen_bool(0.3) {
        opts.budget = Budget {
            max_iterations: Some(rng.gen_range(0..6usize)),
            ..Budget::default()
        };
    }
    if rng.gen_bool(0.3) {
        // Extreme thresholds only: a mid-range threshold makes the abort
        // decision depend on the last bits of a full-matrix sum, which the
        // kernel intentionally computes with better rounding than the
        // reference (compensated vs naive) — decision parity near the
        // boundary is not part of the bit-identity contract.
        opts.abort_below = Some(if rng.gen_bool(0.5) { 0.0 } else { 0.99 });
    }
    if n1 * n2 > 0 && rng.gen_bool(0.3) {
        let mut values = SimMatrix::zeros(n1, n2);
        let mut frozen = vec![false; n1 * n2];
        for (k, slot) in frozen.iter_mut().enumerate() {
            if rng.gen_bool(0.2) {
                *slot = true;
                values.set(k / n2, k % n2, rng.gen::<f64>());
            }
        }
        opts.seed = Some(Seed { values, frozen });
    }
    opts
}

fn assert_bitwise(a: &SimMatrix, b: &SimMatrix, what: &str) {
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
    }
}

fn assert_same_work(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.formula_evals, b.formula_evals, "{what}: formula_evals");
    assert_eq!(a.pruned_evals, b.pruned_evals, "{what}: pruned_evals");
    assert_eq!(a.frozen_evals, b.frozen_evals, "{what}: frozen_evals");
    assert_eq!(a.estimated_pairs, b.estimated_pairs, "{what}: estimated");
    assert_eq!(a.aborted, b.aborted, "{what}: aborted");
    assert_eq!(a.degraded, b.degraded, "{what}: degraded");
}

/// The worklist kernel is bitwise-equal to the reference implementation
/// across random graphs, parameters, budgets, seeds and both directions.
#[test]
#[cfg_attr(miri, ignore)] // 60 random fixpoint cases: minutes under interpretation
fn kernel_matches_reference_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xD01);
    for case in 0..60 {
        let (g1, g2) = random_graph_pair(&mut rng);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let params = random_params(&mut rng);
        let opts = random_options(&mut rng, g1.num_real(), g2.num_real());
        for direction in [Direction::Forward, Direction::Backward] {
            let engine = Engine::new(&g1, &g2, &labels, &params, direction);
            let reference = engine.run_reference(&opts);
            let kernel = engine.run(&opts);
            assert_bitwise(&reference.sim, &kernel.sim, &format!("case {case}"));
            assert_same_work(&reference.stats, &kernel.stats, &format!("case {case}"));
        }
    }
}

/// `threads = 1` and `threads = N` produce bit-identical similarity
/// matrices and identical work counters (including `iterations`).
#[test]
#[cfg_attr(miri, ignore)] // 40 random multi-thread cases: minutes under interpretation
fn thread_count_never_changes_results() {
    let mut rng = StdRng::seed_from_u64(0xD02);
    for case in 0..40 {
        let (g1, g2) = random_graph_pair(&mut rng);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let params = random_params(&mut rng);
        let base = random_options(&mut rng, g1.num_real(), g2.num_real());
        let direction = if rng.gen_bool(0.5) {
            Direction::Forward
        } else {
            Direction::Backward
        };
        let engine = Engine::new(&g1, &g2, &labels, &params, direction);
        let serial = engine.run(&RunOptions {
            threads: Some(1),
            ..base.clone()
        });
        for n in [2usize, 4, 7] {
            let parallel = engine.run(&RunOptions {
                threads: Some(n),
                ..base.clone()
            });
            assert_bitwise(
                &serial.sim,
                &parallel.sim,
                &format!("case {case}, {n} threads"),
            );
            assert_same_work(
                &serial.stats,
                &parallel.stats,
                &format!("case {case}, {n} threads"),
            );
        }
    }
}

/// A grid large enough to clear the parallel threshold still agrees
/// bitwise between 1 and 8 threads — this exercises the sharded path with
/// real thread spawns rather than the small-grid serial fallback.
#[test]
#[cfg_attr(miri, ignore)] // large-grid thread spawns: minutes under interpretation
fn large_grid_parallel_path_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0xD03);
    let mut big_log = |alphabet: usize| {
        let mut log = ems_events::EventLog::new();
        for _ in 0..40 {
            let len = rng.gen_range(4..16usize);
            log.push_trace((0..len).map(|_| format!("a{}", rng.gen_range(0..alphabet))));
        }
        log
    };
    let g1 = DependencyGraph::from_log(&big_log(70));
    let g2 = DependencyGraph::from_log(&big_log(80));
    assert!(
        g1.num_real() * g2.num_real() >= 4096,
        "grid too small to cross PAR_MIN_PAIRS"
    );
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let params = EmsParams::structural();
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
    let serial = engine.run(&RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    });
    let parallel = engine.run(&RunOptions {
        threads: Some(8),
        ..RunOptions::default()
    });
    assert_bitwise(&serial.sim, &parallel.sim, "large grid");
    assert_same_work(&serial.stats, &parallel.stats, "large grid");
    assert!(serial.stats.iterations > 0);
}
