//! Bit-identity properties of the precomputed fixpoint kernel: across
//! random graphs, seeds, budgets and pruning configurations, the worklist
//! kernel must reproduce the reference (seed) implementation *bitwise*, and
//! every thread count must reproduce the serial path bitwise. These are the
//! guarantees that make the `threads` knob a pure wall-clock trade.

use ems_core::engine::{Budget, Engine, RunOptions, RunStats, Seed};
use ems_core::{Direction, EmsParams, SimMatrix};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_rng::StdRng;

fn random_log(rng: &mut StdRng, alphabet: usize) -> ems_events::EventLog {
    let mut log = ems_events::EventLog::new();
    let traces = rng.gen_range(1..12usize);
    for _ in 0..traces {
        let len = rng.gen_range(1..10usize);
        log.push_trace((0..len).map(|_| format!("e{}", rng.gen_range(0..alphabet))));
    }
    log
}

fn random_graph_pair(rng: &mut StdRng) -> (DependencyGraph, DependencyGraph) {
    let alphabet = rng.gen_range(3..9usize);
    (
        DependencyGraph::from_log(&random_log(rng, alphabet)),
        DependencyGraph::from_log(&random_log(rng, alphabet)),
    )
}

fn random_params(rng: &mut StdRng) -> EmsParams {
    let mut p = if rng.gen_bool(0.5) {
        EmsParams::structural()
    } else {
        EmsParams::with_labels(0.7)
    };
    if rng.gen_bool(0.3) {
        p = p.without_pruning();
    }
    if rng.gen_bool(0.3) {
        p = p.estimated(rng.gen_range(0..4usize));
    }
    p
}

fn random_options(rng: &mut StdRng, n1: usize, n2: usize) -> RunOptions {
    let mut opts = RunOptions::default();
    if rng.gen_bool(0.3) {
        opts.budget = Budget {
            max_iterations: Some(rng.gen_range(0..6usize)),
            ..Budget::default()
        };
    }
    if rng.gen_bool(0.3) {
        // Extreme thresholds only: a mid-range threshold makes the abort
        // decision depend on the last bits of a full-matrix sum, which the
        // kernel intentionally computes with better rounding than the
        // reference (compensated vs naive) — decision parity near the
        // boundary is not part of the bit-identity contract.
        opts.abort_below = Some(if rng.gen_bool(0.5) { 0.0 } else { 0.99 });
    }
    if n1 * n2 > 0 && rng.gen_bool(0.3) {
        let mut values = SimMatrix::zeros(n1, n2);
        let mut frozen = vec![false; n1 * n2];
        for (k, slot) in frozen.iter_mut().enumerate() {
            if rng.gen_bool(0.2) {
                *slot = true;
                values.set(k / n2, k % n2, rng.gen::<f64>());
            }
        }
        opts.seed = Some(Seed { values, frozen });
    }
    opts
}

fn assert_bitwise(a: &SimMatrix, b: &SimMatrix, what: &str) {
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
    }
}

fn assert_same_work(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.formula_evals, b.formula_evals, "{what}: formula_evals");
    assert_eq!(a.pruned_evals, b.pruned_evals, "{what}: pruned_evals");
    assert_eq!(a.frozen_evals, b.frozen_evals, "{what}: frozen_evals");
    assert_eq!(a.estimated_pairs, b.estimated_pairs, "{what}: estimated");
    assert_eq!(a.aborted, b.aborted, "{what}: aborted");
    assert_eq!(a.degraded, b.degraded, "{what}: degraded");
}

/// The worklist kernel is bitwise-equal to the reference implementation
/// across random graphs, parameters, budgets, seeds and both directions.
#[test]
#[cfg_attr(miri, ignore)] // 60 random fixpoint cases: minutes under interpretation
fn kernel_matches_reference_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xD01);
    for case in 0..60 {
        let (g1, g2) = random_graph_pair(&mut rng);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let params = random_params(&mut rng);
        let opts = random_options(&mut rng, g1.num_real(), g2.num_real());
        for direction in [Direction::Forward, Direction::Backward] {
            let engine = Engine::new(&g1, &g2, &labels, &params, direction);
            let reference = engine.run_reference(&opts);
            let kernel = engine.run(&opts);
            assert_bitwise(&reference.sim, &kernel.sim, &format!("case {case}"));
            assert_same_work(&reference.stats, &kernel.stats, &format!("case {case}"));
        }
    }
}

/// `threads = 1` and `threads = N` produce bit-identical similarity
/// matrices and identical work counters (including `iterations`).
#[test]
#[cfg_attr(miri, ignore)] // 40 random multi-thread cases: minutes under interpretation
fn thread_count_never_changes_results() {
    let mut rng = StdRng::seed_from_u64(0xD02);
    for case in 0..40 {
        let (g1, g2) = random_graph_pair(&mut rng);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let params = random_params(&mut rng);
        let base = random_options(&mut rng, g1.num_real(), g2.num_real());
        let direction = if rng.gen_bool(0.5) {
            Direction::Forward
        } else {
            Direction::Backward
        };
        let engine = Engine::new(&g1, &g2, &labels, &params, direction);
        let serial = engine.run(&RunOptions {
            threads: Some(1),
            ..base.clone()
        });
        for n in [2usize, 4, 7] {
            let parallel = engine.run(&RunOptions {
                threads: Some(n),
                oversubscribe: true,
                ..base.clone()
            });
            assert_bitwise(
                &serial.sim,
                &parallel.sim,
                &format!("case {case}, {n} threads"),
            );
            assert_same_work(
                &serial.stats,
                &parallel.stats,
                &format!("case {case}, {n} threads"),
            );
        }
    }
}

/// A grid large enough to clear the parallel threshold still agrees
/// bitwise between 1 and 8 threads — this exercises the sharded path with
/// real thread spawns rather than the small-grid serial fallback.
#[test]
#[cfg_attr(miri, ignore)] // large-grid thread spawns: minutes under interpretation
fn large_grid_parallel_path_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0xD03);
    let mut big_log = |alphabet: usize| {
        let mut log = ems_events::EventLog::new();
        for _ in 0..40 {
            let len = rng.gen_range(4..16usize);
            log.push_trace((0..len).map(|_| format!("a{}", rng.gen_range(0..alphabet))));
        }
        log
    };
    let g1 = DependencyGraph::from_log(&big_log(70));
    let g2 = DependencyGraph::from_log(&big_log(80));
    assert!(
        g1.num_real() * g2.num_real() >= 4096,
        "grid too small to cross PAR_MIN_PAIRS"
    );
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let params = EmsParams::structural();
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
    let serial = engine.run(&RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    });
    let parallel = engine.run(&RunOptions {
        threads: Some(8),
        oversubscribe: true,
        ..RunOptions::default()
    });
    assert_bitwise(&serial.sim, &parallel.sim, "large grid");
    assert_same_work(&serial.stats, &parallel.stats, "large grid");
    assert!(serial.stats.iterations > 0);
}

/// δ = 0 sparse mode is *exact*: across random graphs, parameters and
/// warm-up counts, evaluating through the CSR substrate reproduces the
/// dense kernel bitwise — at one thread and through the worker pool.
#[test]
#[cfg_attr(miri, ignore)] // 40 random fixpoint cases: minutes under interpretation
fn sparse_exact_mode_is_bit_identical_across_threads() {
    let mut rng = StdRng::seed_from_u64(0xD04);
    for case in 0..40 {
        let (g1, g2) = random_graph_pair(&mut rng);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let dense_params = random_params(&mut rng);
        let warmup = rng.gen_range(0..3usize);
        let sparse_params = dense_params.clone().with_sparse(0.0, warmup);
        let direction = if rng.gen_bool(0.5) {
            Direction::Forward
        } else {
            Direction::Backward
        };
        let dense = Engine::new(&g1, &g2, &labels, &dense_params, direction).run(&RunOptions {
            threads: Some(1),
            ..RunOptions::default()
        });
        let sparse_engine = Engine::new(&g1, &g2, &labels, &sparse_params, direction);
        for threads in [1usize, 4] {
            let sparse = sparse_engine.run(&RunOptions {
                threads: Some(threads),
                oversubscribe: true,
                ..RunOptions::default()
            });
            let what = format!("case {case}, warmup {warmup}, {threads} threads");
            assert_bitwise(&dense.sim, &sparse.sim, &what);
            assert_same_work(&dense.stats, &sparse.stats, &what);
            // δ = 0 never drops a pair — exactness is structural, not
            // a lucky threshold.
            assert_eq!(sparse.stats.sparsified_pairs, 0, "{what}");
        }
    }
}

/// δ > 0 sparse scores differ from the dense kernel by at most the
/// documented steady-state bound δ / (1 − α·c), across random graphs,
/// thresholds, warm-ups and thread counts.
#[test]
#[cfg_attr(miri, ignore)] // 40 random fixpoint cases: minutes under interpretation
fn thresholded_sparse_error_is_within_documented_bound() {
    let mut rng = StdRng::seed_from_u64(0xD05);
    for case in 0..40 {
        let (g1, g2) = random_graph_pair(&mut rng);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        // Exact solves only: the bound covers the fixpoint iteration, not
        // the estimation tail.
        let dense_params = if rng.gen_bool(0.5) {
            EmsParams::structural()
        } else {
            EmsParams::with_labels(0.7)
        };
        let delta = [0.01, 0.05, 0.1][rng.gen_range(0..3usize)];
        let warmup = rng.gen_range(1..4usize);
        let sparse_params = dense_params.clone().with_sparse(delta, warmup);
        let bound = delta / (1.0 - dense_params.alpha * dense_params.c);
        let dense = Engine::new(&g1, &g2, &labels, &dense_params, Direction::Forward)
            .run(&RunOptions::default());
        let sparse_engine = Engine::new(&g1, &g2, &labels, &sparse_params, Direction::Forward);
        for threads in [1usize, 4] {
            let sparse = sparse_engine.run(&RunOptions {
                threads: Some(threads),
                oversubscribe: true,
                ..RunOptions::default()
            });
            for (d, s) in dense.sim.data().iter().zip(sparse.sim.data()) {
                assert!(
                    (d - s).abs() <= bound,
                    "case {case}, δ={delta}, {threads} threads: |{d} - {s}| > {bound}"
                );
            }
        }
    }
}

/// The golden-trace contract extends to the new paths: the redacted
/// telemetry of the δ=0 sparse kernel — serial and through a 4-worker
/// pool — is byte-identical to the serial dense kernel's trace, and so is
/// the pooled dense kernel's. Scores are checked bitwise alongside.
#[test]
#[cfg_attr(miri, ignore)] // large-grid thread spawns: minutes under interpretation
fn golden_trace_is_identical_for_sparse_and_pooled_kernels() {
    use std::sync::Arc;
    let mut rng = StdRng::seed_from_u64(0xD06);
    let mut big_log = |alphabet: usize| {
        let mut log = ems_events::EventLog::new();
        for _ in 0..40 {
            let len = rng.gen_range(4..16usize);
            log.push_trace((0..len).map(|_| format!("a{}", rng.gen_range(0..alphabet))));
        }
        log
    };
    let g1 = DependencyGraph::from_log(&big_log(70));
    let g2 = DependencyGraph::from_log(&big_log(80));
    assert!(
        g1.num_real() * g2.num_real() >= 4096,
        "grid too small to cross the pairs-per-shard floor"
    );
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let dense_params = EmsParams::structural();
    let sparse_params = dense_params.clone().with_sparse(0.0, 1);
    let dense_engine = Engine::new(&g1, &g2, &labels, &dense_params, Direction::Forward);
    let sparse_engine = Engine::new(&g1, &g2, &labels, &sparse_params, Direction::Forward);
    let run_traced = |engine: &Engine, threads: usize| {
        let rec = Arc::new(ems_obs::Recorder::new());
        let out = engine.run(&RunOptions {
            threads: Some(threads),
            oversubscribe: true,
            recorder: Some(Arc::clone(&rec)),
            ..RunOptions::default()
        });
        (out, ems_obs::jsonl::write_redacted(&rec.records()))
    };
    let (dense1, trace_dense1) = run_traced(&dense_engine, 1);
    let (dense4, trace_dense4) = run_traced(&dense_engine, 4);
    let (sparse1, trace_sparse1) = run_traced(&sparse_engine, 1);
    let (sparse4, trace_sparse4) = run_traced(&sparse_engine, 4);
    assert_bitwise(&dense1.sim, &dense4.sim, "dense 1 vs 4 threads");
    assert_bitwise(&dense1.sim, &sparse1.sim, "dense vs sparse serial");
    assert_bitwise(&dense1.sim, &sparse4.sim, "dense vs sparse 4 threads");
    assert_eq!(trace_dense1, trace_dense4, "dense trace 1 vs 4 threads");
    assert_eq!(trace_dense1, trace_sparse1, "dense vs sparse serial trace");
    assert_eq!(trace_dense1, trace_sparse4, "dense vs sparse pooled trace");
    assert!(trace_dense1.contains("\"type\":\"iteration\""));
    // The pooled runs really used the pool.
    assert!(dense4.stats.pool_shards > 1, "pool never sharded");
}

/// An aggressive δ collapses the worklist *below* the pairs-per-shard
/// floor mid-run, forcing the pool back onto the serial fast path while
/// workers are still parked — results must stay bit-identical between 1
/// and 4 threads through that transition.
#[test]
#[cfg_attr(miri, ignore)] // large-grid thread spawns: minutes under interpretation
fn pool_survives_worklist_collapse_mid_run() {
    let mut rng = StdRng::seed_from_u64(0xD07);
    let mut big_log = |alphabet: usize| {
        let mut log = ems_events::EventLog::new();
        for _ in 0..40 {
            let len = rng.gen_range(4..16usize);
            log.push_trace((0..len).map(|_| format!("a{}", rng.gen_range(0..alphabet))));
        }
        log
    };
    let g1 = DependencyGraph::from_log(&big_log(70));
    let g2 = DependencyGraph::from_log(&big_log(80));
    assert!(g1.num_real() * g2.num_real() >= 4096);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    // High threshold, early engagement, tight epsilon: the Proposition-2
    // bound decays below δ around iteration 15 and the drops cascade
    // (zeroed neighbours pull survivors down), shrinking the worklist
    // from thousands of pairs to a handful — far below the
    // pairs-per-shard floor — while the run keeps iterating.
    let mut params = EmsParams::structural().with_sparse(0.35, 1);
    params.epsilon = 1e-9;
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
    let serial = engine.run(&RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    });
    let pooled = engine.run(&RunOptions {
        threads: Some(4),
        oversubscribe: true,
        ..RunOptions::default()
    });
    assert!(
        serial.stats.sparsified_pairs as usize > g1.num_real() * g2.num_real() / 2,
        "threshold never collapsed the worklist; the transition was not exercised"
    );
    assert!(
        serial.sim.data().iter().any(|v| *v > 0.0),
        "everything sparsified — the surviving-pair path was not exercised"
    );
    assert_bitwise(&serial.sim, &pooled.sim, "worklist collapse");
    assert_same_work(&serial.stats, &pooled.stats, "worklist collapse");
    assert_eq!(
        serial.stats.sparsified_pairs, pooled.stats.sparsified_pairs,
        "sparsification must be thread-count independent"
    );
}
