//! Interleaving tests for the engine's two shared-state mechanisms: the
//! `Mutex<DenseScratch>` buffer reuse (`try_lock` with local fallback) and
//! the active-pair worklist's retire-exactly-once accounting.
//!
//! The workspace carries no loom-style model checker (no external deps), so
//! these are scheduled-interleaving tests in its spirit: many rounds of
//! barrier-aligned concurrent runs with per-thread schedule perturbation
//! (spin/yield skew) to sweep distinct lock-acquisition orders. The
//! correctness claim under test is strong enough to survive the weaker
//! exploration: *whichever* thread wins the scratch lock, every concurrent
//! run must be bit-identical to the serial baseline, and the worklist
//! counters must account for every pair exactly once per iteration.

use ems_core::engine::{Budget, Engine, RunOptions, RunStats, Seed};
use ems_core::{Direction, EmsParams, SimMatrix};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_rng::StdRng;
use std::sync::Barrier;

fn random_log(rng: &mut StdRng, alphabet: usize) -> ems_events::EventLog {
    let mut log = ems_events::EventLog::new();
    let traces = rng.gen_range(2..10usize);
    for _ in 0..traces {
        let len = rng.gen_range(2..9usize);
        log.push_trace((0..len).map(|_| format!("e{}", rng.gen_range(0..alphabet))));
    }
    log
}

fn graph_pair(seed: u64) -> (DependencyGraph, DependencyGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet = rng.gen_range(4..9usize);
    (
        DependencyGraph::from_log(&random_log(&mut rng, alphabet)),
        DependencyGraph::from_log(&random_log(&mut rng, alphabet)),
    )
}

fn assert_bitwise(a: &SimMatrix, b: &SimMatrix, what: &str) {
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
    }
}

fn assert_same_work(a: &RunStats, b: &RunStats, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.formula_evals, b.formula_evals, "{what}: formula_evals");
    assert_eq!(a.pruned_evals, b.pruned_evals, "{what}: pruned_evals");
    assert_eq!(a.frozen_evals, b.frozen_evals, "{what}: frozen_evals");
    assert_eq!(a.aborted, b.aborted, "{what}: aborted");
    assert_eq!(a.degraded, b.degraded, "{what}: degraded");
}

/// Concurrent `run`s on one shared engine race for the dense scratch
/// buffers: the `try_lock` winner mutates the retained `DenseScratch`
/// in place while every loser falls back to a fresh local one. Across
/// barrier-aligned rounds with skewed schedules, every thread must still
/// reproduce the serial baseline bitwise — the scratch is a pure cache,
/// never state.
#[test]
#[cfg_attr(miri, ignore)] // spawns many threads over many rounds; minutes under miri
fn concurrent_runs_share_scratch_without_affecting_results() {
    const THREADS: usize = 4;
    const ROUNDS: usize = 25;
    let (g1, g2) = graph_pair(0xC0C0);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let params = EmsParams::structural();
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
    let opts = RunOptions::default();
    let baseline = engine.run(&opts);

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = &engine;
            let baseline = &baseline;
            let barrier = &barrier;
            let opts = opts.clone();
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    barrier.wait();
                    // Schedule perturbation: vary which thread reaches
                    // `try_lock` first so both the guard-held and the
                    // local-fallback paths are exercised.
                    for _ in 0..((t * round) % 7) {
                        std::thread::yield_now();
                    }
                    let out = engine.run(&opts);
                    assert_bitwise(
                        &baseline.sim,
                        &out.sim,
                        &format!("thread {t}, round {round}"),
                    );
                    assert_same_work(
                        &baseline.stats,
                        &out.stats,
                        &format!("thread {t}, round {round}"),
                    );
                }
            });
        }
    });
}

/// The scratch cache must also be inert across *heterogeneous* concurrent
/// runs: threads hammer the same engine with different thread counts,
/// budgets and seeds, each checking against its own serial baseline. A
/// scratch buffer leaking state between differently-shaped runs would
/// surface here as a bitwise divergence.
#[test]
#[cfg_attr(miri, ignore)] // spawns many threads over many rounds; minutes under miri
fn heterogeneous_concurrent_runs_stay_bit_identical() {
    let (g1, g2) = graph_pair(0xC0C1);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let params = EmsParams::with_labels(0.7);
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Backward);

    let n1 = g1.num_real();
    let n2 = g2.num_real();
    let mut seeded = SimMatrix::zeros(n1, n2);
    let mut frozen = vec![false; n1 * n2];
    let mut rng = StdRng::seed_from_u64(0xC0C2);
    for (k, slot) in frozen.iter_mut().enumerate() {
        if rng.gen_bool(0.2) {
            *slot = true;
            seeded.set(k / n2, k % n2, rng.gen::<f64>());
        }
    }
    let variants: Vec<RunOptions> = vec![
        RunOptions::default(),
        RunOptions {
            threads: Some(4),
            oversubscribe: true,
            ..RunOptions::default()
        },
        RunOptions {
            budget: Budget {
                max_iterations: Some(3),
                ..Budget::default()
            },
            ..RunOptions::default()
        },
        RunOptions {
            seed: Some(Seed {
                values: seeded,
                frozen,
            }),
            ..RunOptions::default()
        },
    ];
    let baselines: Vec<_> = variants.iter().map(|o| engine.run(o)).collect();

    let barrier = Barrier::new(variants.len());
    std::thread::scope(|scope| {
        for (t, (opts, baseline)) in variants.iter().zip(&baselines).enumerate() {
            let engine = &engine;
            let barrier = &barrier;
            scope.spawn(move || {
                for round in 0..20 {
                    barrier.wait();
                    for _ in 0..((t + round) % 5) {
                        std::thread::yield_now();
                    }
                    let out = engine.run(opts);
                    assert_bitwise(
                        &baseline.sim,
                        &out.sim,
                        &format!("variant {t}, round {round}"),
                    );
                    assert_same_work(
                        &baseline.stats,
                        &out.stats,
                        &format!("variant {t}, round {round}"),
                    );
                }
            });
        }
    });
}

/// Retire-exactly-once, phrased as an accounting identity over the public
/// counters: per iteration every pair is exactly one of evaluated
/// (`formula_evals`), retired (`pruned_evals`) or frozen (`frozen_evals`),
/// so the three must sum to `iterations × n1 × n2`. A pair retired twice
/// (double `retain` removal, stale `retired_count`) or resurrected breaks
/// the identity.
#[test]
fn worklist_accounting_covers_every_pair_exactly_once() {
    for seed in [0xA1u64, 0xA2, 0xA3, 0xA4, 0xA5] {
        let (g1, g2) = graph_pair(seed);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let params = EmsParams::structural(); // pruning on by default
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        let grid = (g1.num_real() * g2.num_real()) as u64;
        let per_iteration_total = out.stats.iterations as u64 * grid;
        assert_eq!(
            out.stats.formula_evals + out.stats.pruned_evals + out.stats.frozen_evals,
            per_iteration_total,
            "seed {seed:#x}: accounting identity (evaluated + retired + frozen)"
        );
        // And the identity must match the reference implementation's
        // full-grid bookkeeping exactly.
        let reference = engine.run_reference(&RunOptions::default());
        assert_same_work(&reference.stats, &out.stats, &format!("seed {seed:#x}"));
    }
}

/// Same identity under a frozen seed: frozen pairs leave the worklist
/// before iteration 1 and must be counted as frozen every iteration,
/// never double-counted as retired.
#[test]
fn worklist_accounting_holds_with_frozen_pairs() {
    let (g1, g2) = graph_pair(0xB7);
    let n1 = g1.num_real();
    let n2 = g2.num_real();
    let labels = LabelMatrix::zeros(n1, n2);
    let params = EmsParams::structural();
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);

    let mut values = SimMatrix::zeros(n1, n2);
    let mut frozen = vec![false; n1 * n2];
    let mut rng = StdRng::seed_from_u64(0xB8);
    for (k, slot) in frozen.iter_mut().enumerate() {
        if rng.gen_bool(0.3) {
            *slot = true;
            values.set(k / n2, k % n2, rng.gen::<f64>());
        }
    }
    let opts = RunOptions {
        seed: Some(Seed { values, frozen }),
        ..RunOptions::default()
    };
    let out = engine.run(&opts);
    let grid = (n1 * n2) as u64;
    assert_eq!(
        out.stats.formula_evals + out.stats.pruned_evals + out.stats.frozen_evals,
        out.stats.iterations as u64 * grid,
        "accounting identity with frozen pairs"
    );
    let reference = engine.run_reference(&opts);
    assert_same_work(&reference.stats, &out.stats, "frozen-seed run");
}
