//! Randomized property tests of the EMS similarity engine's theoretical
//! guarantees: Theorem 1 (monotone, bounded convergence), Proposition 2
//! (early convergence), Lemma 5 / Proposition 6 (upper bounds) and the
//! estimation bounds — all checked on randomly generated event-log pairs
//! driven by the deterministic `ems-rng` generator.

use ems_core::engine::{Engine, RunOptions};
use ems_core::{Direction, Ems, EmsParams, SimMatrix};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_rng::StdRng;

fn random_traces(rng: &mut StdRng) -> Vec<Vec<usize>> {
    let n = rng.gen_range(1..10usize);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..8usize);
            (0..len).map(|_| rng.gen_range(0..6usize)).collect()
        })
        .collect()
}

fn build_log(ts: &[Vec<usize>]) -> ems_events::EventLog {
    let mut log = ems_events::EventLog::new();
    for t in ts {
        log.push_trace(t.iter().map(|i| format!("e{i}")));
    }
    log
}

/// A pair of small logs over a shared-ish alphabet.
fn random_log_pair(rng: &mut StdRng) -> (ems_events::EventLog, ems_events::EventLog) {
    (
        build_log(&random_traces(rng)),
        build_log(&random_traces(rng)),
    )
}

fn run_rounds(
    g1: &DependencyGraph,
    g2: &DependencyGraph,
    rounds: usize,
    pruning: bool,
) -> SimMatrix {
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let mut params = EmsParams::structural();
    params.max_iterations = rounds.max(1);
    params.epsilon = 1e-12;
    if !pruning {
        params = params.without_pruning();
    }
    Engine::new(g1, g2, &labels, &params, Direction::Forward)
        .run(&RunOptions::default())
        .sim
}

/// Theorem 1: iteration is monotone and bounded in [0, 1].
#[test]
fn similarity_is_monotone_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC01);
    for _ in 0..32 {
        let (l1, l2) = random_log_pair(&mut rng);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let mut prev = SimMatrix::zeros(g1.num_real(), g2.num_real());
        for rounds in 1..=5 {
            let cur = run_rounds(&g1, &g2, rounds, false);
            for (i, j, v) in cur.iter() {
                assert!((0.0..=1.0).contains(&v), "({i},{j}) = {v}");
                assert!(
                    v + 1e-9 >= prev.get(i, j),
                    "monotonicity violated at ({i},{j}): {v} < {}",
                    prev.get(i, j)
                );
            }
            prev = cur;
        }
    }
}

/// Lemma 5: per-iteration growth is bounded by (αc)^n.
#[test]
fn growth_bound_holds() {
    let mut rng = StdRng::seed_from_u64(0xC02);
    for _ in 0..32 {
        let (l1, l2) = random_log_pair(&mut rng);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let mut prev = SimMatrix::zeros(g1.num_real(), g2.num_real());
        for n in 1..=5usize {
            let cur = run_rounds(&g1, &g2, n, false);
            let bound = 0.8f64.powi(n as i32) + 1e-9;
            for (i, j, v) in cur.iter() {
                assert!(
                    v - prev.get(i, j) <= bound,
                    "iteration {n}: growth {} > {bound}",
                    v - prev.get(i, j)
                );
            }
            prev = cur;
        }
    }
}

/// Proposition 2 / pruning soundness: the pruned computation reaches the
/// same fixpoint as the unpruned one.
#[test]
fn pruning_is_sound() {
    let mut rng = StdRng::seed_from_u64(0xC03);
    for _ in 0..32 {
        let (l1, l2) = random_log_pair(&mut rng);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let with = run_rounds(&g1, &g2, 60, true);
        let without = run_rounds(&g1, &g2, 60, false);
        assert!(
            with.max_abs_diff(&without) < 1e-6,
            "pruning changed the fixpoint by {}",
            with.max_abs_diff(&without)
        );
    }
}

/// Proposition 6: the limit never exceeds the upper bound computed from
/// any intermediate iteration.
#[test]
fn upper_bounds_dominate_the_limit() {
    let mut rng = StdRng::seed_from_u64(0xC04);
    for _ in 0..16 {
        let (l1, l2) = random_log_pair(&mut rng);
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let limit = run_rounds(&g1, &g2, 80, false);
        for k in [1usize, 2, 4] {
            let at_k = run_rounds(&g1, &g2, k, false);
            for (i, j, v) in limit.iter() {
                let bound = ems_core::bounds::general_upper_bound(at_k.get(i, j), k, 1.0, 0.8);
                assert!(
                    v <= bound + 1e-9,
                    "limit {v} exceeds bound {bound} from k={k} at ({i},{j})"
                );
            }
        }
    }
}

/// Matching a log against itself yields a symmetric matrix: Definition 2
/// averages s(v1,v2) and s(v2,v1), so identical graphs make S symmetric.
/// (Note: unlike SimRank, EMS does NOT guarantee the diagonal dominates
/// each row — self-similarity is not pinned to 1.)
#[test]
fn self_match_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(0xC05);
    for _ in 0..32 {
        let n = rng.gen_range(2..8usize);
        let ts: Vec<Vec<usize>> = (0..n)
            .map(|_| {
                let len = rng.gen_range(2..8usize);
                (0..len).map(|_| rng.gen_range(0..5usize)).collect()
            })
            .collect();
        let log = build_log(&ts);
        let out = Ems::new(EmsParams::structural()).match_logs(&log, &log);
        let sim = &out.similarity;
        for i in 0..sim.rows() {
            for j in 0..sim.cols() {
                assert!(
                    (sim.get(i, j) - sim.get(j, i)).abs() < 1e-9,
                    "asymmetric self-match at ({i},{j}): {} vs {}",
                    sim.get(i, j),
                    sim.get(j, i)
                );
            }
        }
    }
}

/// Estimation yields values in range and exact values where horizons are
/// reached.
#[test]
fn estimation_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xC06);
    for _ in 0..32 {
        let (l1, l2) = random_log_pair(&mut rng);
        let i = rng.gen_range(0..6usize);
        let params = EmsParams::structural().estimated(i);
        let out = Ems::new(params).match_logs(&l1, &l2);
        for (_, _, v) in out.similarity.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
