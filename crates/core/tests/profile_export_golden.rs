//! Byte-identity of the redacted profile export across kernels and thread
//! counts. The profiler/histogram instrumentation rides inside the engine
//! recorder stream, so the determinism contract extends to it: the
//! reference kernel, the serial worklist kernel, and every pooled thread
//! count must emit the *same* record sequence with the same deterministic
//! content — `jsonl::write_redacted` (dur_us and execution-class
//! histograms zeroed) and `prom::write_deterministic` must agree byte for
//! byte. Anything less and a profile diff between two CI runs would show
//! phantom changes that are really scheduling noise.

use ems_core::engine::{Engine, RunOptions};
use ems_core::{Direction, EmsParams};
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;
use ems_obs::{jsonl, prom, Record, Recorder};
use ems_synth::{PairConfig, PairGenerator, TreeConfig};
use std::sync::Arc;

fn graphs(activities: usize) -> (DependencyGraph, DependencyGraph) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: activities,
            seed: 11,
            ..TreeConfig::default()
        },
        traces_per_log: 30,
        seed: 23,
        ..PairConfig::default()
    })
    .generate();
    (
        DependencyGraph::from_log(&p.log1),
        DependencyGraph::from_log(&p.log2),
    )
}

/// Runs one engine configuration with a fresh recorder and returns both
/// deterministic export renderings of the captured records.
fn profiled_exports(engine: &Engine<'_>, reference: bool, threads: usize) -> (String, String) {
    let recorder = Arc::new(Recorder::new());
    let opts = RunOptions {
        threads: Some(threads),
        oversubscribe: true,
        recorder: Some(Arc::clone(&recorder)),
        ..RunOptions::default()
    };
    if reference {
        engine.run_reference(&opts);
    } else {
        engine.run(&opts);
    }
    let records = recorder.records();
    (
        jsonl::write_redacted(&records),
        prom::write_deterministic(&records),
    )
}

#[test]
fn redacted_profile_export_is_identical_across_kernels_and_threads() {
    let (g1, g2) = graphs(24);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let params = EmsParams::structural();
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);

    let (ref_jsonl, ref_prom) = profiled_exports(&engine, true, 1);
    let (serial_jsonl, serial_prom) = profiled_exports(&engine, false, 1);
    let (pooled_jsonl, pooled_prom) = profiled_exports(&engine, false, 4);

    assert_eq!(
        ref_jsonl, serial_jsonl,
        "reference vs serial redacted trace diverged"
    );
    assert_eq!(
        serial_jsonl, pooled_jsonl,
        "serial vs 4-thread redacted trace diverged"
    );
    assert_eq!(ref_prom, serial_prom);
    assert_eq!(serial_prom, pooled_prom);

    // The export actually carries the profile: spans, profiler counters,
    // and the run-summary histograms all present.
    for needle in [
        "prof.engine.run",
        "\"type\":\"histogram\"",
        "engine.iteration_delta",
        "engine.active_pairs",
        "engine.shard_pairs",
        "formula_evals",
    ] {
        assert!(serial_jsonl.contains(needle), "missing {needle}");
    }
    // Redaction proof: no live duration or execution-histogram content
    // survives into the deterministic exports.
    assert!(!serial_prom.contains("microseconds"), "{serial_prom}");
    for line in serial_jsonl.lines() {
        if line.contains("\"type\":\"span\"") {
            assert!(line.contains("\"dur_us\":0"), "unredacted span: {line}");
        }
        if line.contains("\"det\":false") {
            assert!(
                line.contains("\"count\":0") && line.contains("\"buckets\":[]"),
                "unredacted exec histogram: {line}"
            );
        }
    }
}

#[test]
fn sparse_mode_redacted_export_is_identical_across_thread_counts() {
    let (g1, g2) = graphs(24);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let mut params = EmsParams::structural().with_sparse(0.05, 1);
    params.c = 0.6;
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);

    let (t1_jsonl, t1_prom) = profiled_exports(&engine, false, 1);
    let (t4_jsonl, t4_prom) = profiled_exports(&engine, false, 4);
    assert_eq!(t1_jsonl, t4_jsonl, "sparse redacted trace diverged");
    assert_eq!(t1_prom, t4_prom);
    // The sparse drop phase reports through profiler counters whose values
    // are δ-driven, hence thread-invariant.
    assert!(
        t1_jsonl.contains("prof.engine.run.sparse_drop"),
        "{t1_jsonl}"
    );
}

#[test]
fn unredacted_trace_differs_only_in_redactable_fields() {
    let (g1, g2) = graphs(16);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let params = EmsParams::structural();
    let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);

    let run = |threads: usize| {
        let recorder = Arc::new(Recorder::new());
        let opts = RunOptions {
            threads: Some(threads),
            oversubscribe: true,
            recorder: Some(Arc::clone(&recorder)),
            ..RunOptions::default()
        };
        engine.run(&opts);
        recorder.records()
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a.len(), b.len(), "record sequences must align 1:1");
    for (ra, rb) in a.iter().zip(&b) {
        match (ra, rb) {
            // Wall time varies; everything else in a span must match.
            (
                Record::Span {
                    name: na,
                    attrs: aa,
                    ..
                },
                Record::Span {
                    name: nb,
                    attrs: ab,
                    ..
                },
            ) => {
                assert_eq!(na, nb);
                assert_eq!(aa, ab);
            }
            // Execution-class histograms (shard layout, latency) may
            // differ in content but never in identity.
            (Record::Histogram(ha), Record::Histogram(hb)) if !ha.deterministic => {
                assert_eq!(ha.name, hb.name);
                assert_eq!(ha.labels, hb.labels);
                assert!(!hb.deterministic);
            }
            _ => assert_eq!(ra, rb, "deterministic record diverged"),
        }
    }
}
