//! A concurrency-safe sibling of [`crate::MatchSession`] for catalog
//! serving: many queries share one set of model/substrate/label caches
//! without serializing whole requests.
//!
//! [`MatchSession`](crate::MatchSession) is `&mut self` end to end — the
//! right shape for a single pipeline, the wrong one for a server where K
//! reference substrates should be pinned once and hit from every worker.
//! [`SharedSession`] keeps the same stage structure (model → substrate →
//! label → solve) and the same durable-store tier, but holds each cache
//! behind its own `RwLock` of `Arc`ed products:
//!
//! * lookups take a read lock only;
//! * a miss builds **outside** any cache lock, then inserts under a write
//!   lock with a re-check — two workers racing on the same product build
//!   it twice and keep the first insert, never block each other for the
//!   duration of a build, and always observe identical bytes because
//!   every product is a deterministic function of the inputs;
//! * the solve stage runs entirely on `Arc` snapshots, lock-free.
//!
//! Locks are never nested (the symbol table mutex is held only while a
//! graph is built or decoded, with no cache lock held), so no lock-order
//! cycle exists by construction.
//!
//! Determinism: a `SharedSession` match is bit-identical to the same pair
//! through `MatchSession` or one-shot [`crate::Ems`] — same stages, same
//! kernels, same store codecs (pinned by the unit tests below).

use crate::engine::{Budget, Engine, RunOptions};
use crate::error::CoreError;
use crate::matcher::{aggregate_directions, label_matrix_for, MatchOutcome};
use crate::params::{Direction, EmsParams};
use crate::persist;
use crate::substrate::EngineSubstrate;
use ems_depgraph::{filter_min_frequency, DependencyGraph};
use ems_error::EmsError;
use ems_events::{fingerprint_log, EventLog, SymbolTable};
use ems_labels::LabelMatrix;
use ems_obs::Recorder;
use ems_store::{CatalogStore, SnapshotKind};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Cache and durable-tier counters of a [`SharedSession`], mirroring the
/// same-named [`crate::SessionStats`] fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedStats {
    /// Dependency graphs built (model-stage cache misses).
    pub graph_builds: u64,
    /// Model-stage cache hits.
    pub graph_cache_hits: u64,
    /// [`EngineSubstrate`]s built (substrate-stage cache misses).
    pub substrate_builds: u64,
    /// Substrate-stage cache hits.
    pub substrate_cache_hits: u64,
    /// Label matrices computed.
    pub label_builds: u64,
    /// Label-stage cache hits.
    pub label_cache_hits: u64,
    /// Full matches served from the outcome cache (both solves skipped).
    pub outcome_cache_hits: u64,
    /// Build products served from the durable store (snapshot decoded).
    pub store_hits: u64,
    /// Durable-store lookups that found no snapshot.
    pub store_misses: u64,
    /// Snapshots quarantined (payload-level corruption) and rebuilt.
    pub store_quarantines: u64,
    /// Durable-store reads that failed with an I/O error (degraded to a
    /// rebuild).
    pub store_read_failures: u64,
    /// Best-effort snapshot writes that failed (the match still
    /// succeeded).
    pub store_write_failures: u64,
}

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.read() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    match lock.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// The staged matching pipeline behind shared caches; see the module docs
/// for the locking model. All methods take `&self`, so one session can be
/// hit from any number of worker threads.
#[derive(Debug)]
pub struct SharedSession {
    params: EmsParams,
    min_frequency: f64,
    table: Mutex<SymbolTable>,
    /// Model cache: log content fingerprint → dependency graph.
    graphs: RwLock<BTreeMap<u64, Arc<DependencyGraph>>>,
    /// Substrate cache: (graph fp 1, graph fp 2, direction) → substrate.
    substrates: RwLock<BTreeMap<(u64, u64, u8), Arc<EngineSubstrate>>>,
    /// Label cache: (log fp 1, log fp 2) → label matrix.
    labels: RwLock<BTreeMap<(u64, u64), Arc<LabelMatrix>>>,
    /// Outcome cache: (log fp 1, log fp 2) → full match result. Every
    /// `SharedSession` call is a plain replay (no per-call options), so
    /// all calls participate.
    outcomes: RwLock<BTreeMap<(u64, u64), MatchOutcome>>,
    store: Option<Arc<CatalogStore>>,
    recorder: Option<Arc<Recorder>>,
    stats: Mutex<SharedStats>,
}

impl SharedSession {
    /// Creates a shared session, validating the parameters.
    pub fn try_new(params: EmsParams) -> Result<Self, CoreError> {
        params.validate().map_err(CoreError::InvalidParams)?;
        Ok(SharedSession {
            params,
            min_frequency: 0.0,
            table: Mutex::new(SymbolTable::new()),
            graphs: RwLock::new(BTreeMap::new()),
            substrates: RwLock::new(BTreeMap::new()),
            labels: RwLock::new(BTreeMap::new()),
            outcomes: RwLock::new(BTreeMap::new()),
            store: None,
            recorder: None,
            stats: Mutex::new(SharedStats::default()),
        })
    }

    /// Attaches a durable catalog store as the tier between the in-memory
    /// caches and a rebuild. Same failure contract as
    /// [`crate::MatchSession::with_store`]: store failures never fail a
    /// match.
    pub fn with_store(mut self, store: Arc<CatalogStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches the session telemetry sink (cache counters, prefixed
    /// `shared.`).
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Sets the minimum edge frequency applied when building graphs.
    pub fn with_min_frequency(mut self, threshold: f64) -> Self {
        self.min_frequency = threshold;
        self
    }

    /// The session's parameters.
    pub fn params(&self) -> &EmsParams {
        &self.params
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> SharedStats {
        *mutex_lock(&self.stats)
    }

    fn counter(&self, name: &str, result: &str) {
        if let Some(rec) = self.recorder.as_deref() {
            rec.counter_add(name, ems_obs::labels(&[("result", result)]), 1);
        }
    }

    /// The dependency graph of a log (session min-frequency filter
    /// applied), served from memory, the durable store, or a build.
    pub fn graph(&self, log: &EventLog) -> Arc<DependencyGraph> {
        self.graph_keyed(fingerprint_log(log), log)
    }

    /// [`graph`](Self::graph) with the log's content fingerprint already
    /// known (the catalog fingerprints at admission time).
    pub fn graph_keyed(&self, fingerprint: u64, log: &EventLog) -> Arc<DependencyGraph> {
        if let Some(g) = read_lock(&self.graphs).get(&fingerprint) {
            mutex_lock(&self.stats).graph_cache_hits += 1;
            self.counter("shared.graph_cache", "hit");
            return Arc::clone(g);
        }
        let store_key = persist::graph_store_key(fingerprint, self.min_frequency);
        let mut decoded: Option<DependencyGraph> = None;
        if let Some(bytes) = self.store_fetch(
            SnapshotKind::Graph,
            store_key,
            persist::GRAPH_PAYLOAD_VERSION,
        ) {
            let result = {
                let mut table = mutex_lock(&self.table);
                persist::decode_graph_in(&bytes, &mut table)
            };
            match result {
                Ok(g) => {
                    mutex_lock(&self.stats).store_hits += 1;
                    self.counter("shared.graph_cache", "disk");
                    decoded = Some(g);
                }
                Err(e) => self.store_quarantine(SnapshotKind::Graph, store_key, &e.to_string()),
            }
        }
        let built = decoded.is_none();
        let graph = match decoded {
            Some(g) => g,
            None => {
                let full = {
                    let mut table = mutex_lock(&self.table);
                    DependencyGraph::from_log_in(log, &mut table)
                };
                let g = if self.min_frequency > 0.0 {
                    filter_min_frequency(&full, self.min_frequency).0
                } else {
                    full
                };
                mutex_lock(&self.stats).graph_builds += 1;
                self.counter("shared.graph_cache", "miss");
                g
            }
        };
        let graph = Arc::new(graph);
        if built {
            self.store_put(
                SnapshotKind::Graph,
                store_key,
                persist::GRAPH_PAYLOAD_VERSION,
                || persist::encode_graph(&graph),
            );
        }
        // Re-check under the write lock: a racing worker may have landed
        // the identical product first — keep theirs so every caller shares
        // one allocation.
        Arc::clone(write_lock(&self.graphs).entry(fingerprint).or_insert(graph))
    }

    fn substrate(
        &self,
        g1: &Arc<DependencyGraph>,
        g2: &Arc<DependencyGraph>,
        direction: Direction,
    ) -> Arc<EngineSubstrate> {
        let key = (g1.fingerprint(), g2.fingerprint(), direction as u8);
        if let Some(sub) = read_lock(&self.substrates).get(&key) {
            mutex_lock(&self.stats).substrate_cache_hits += 1;
            self.counter("shared.substrate_cache", "hit");
            return Arc::clone(sub);
        }
        let store_key = persist::substrate_store_key(key.0, key.1, direction, self.params.c);
        let mut decoded: Option<EngineSubstrate> = None;
        if let Some(bytes) = self.store_fetch(
            SnapshotKind::Substrate,
            store_key,
            persist::SUBSTRATE_PAYLOAD_VERSION,
        ) {
            match persist::decode_substrate(&bytes, direction, self.params.c) {
                Ok(sub) if sub.rows() == g1.num_real() && sub.cols() == g2.num_real() => {
                    mutex_lock(&self.stats).store_hits += 1;
                    self.counter("shared.substrate_cache", "disk");
                    decoded = Some(sub);
                }
                Ok(sub) => self.store_quarantine(
                    SnapshotKind::Substrate,
                    store_key,
                    &format!(
                        "substrate shape {}x{} does not fit graphs {}x{}",
                        sub.rows(),
                        sub.cols(),
                        g1.num_real(),
                        g2.num_real()
                    ),
                ),
                Err(e) => self.store_quarantine(SnapshotKind::Substrate, store_key, &e.to_string()),
            }
        }
        let built = decoded.is_none();
        let sub = match decoded {
            Some(sub) => sub,
            None => {
                let sub = EngineSubstrate::build(g1, g2, direction, self.params.c);
                mutex_lock(&self.stats).substrate_builds += 1;
                self.counter("shared.substrate_cache", "miss");
                sub
            }
        };
        let sub = Arc::new(sub);
        if built {
            self.store_put(
                SnapshotKind::Substrate,
                store_key,
                persist::SUBSTRATE_PAYLOAD_VERSION,
                || persist::encode_substrate(&sub),
            );
        }
        Arc::clone(write_lock(&self.substrates).entry(key).or_insert(sub))
    }

    fn label_matrix(
        &self,
        fp1: u64,
        log1: &EventLog,
        fp2: u64,
        log2: &EventLog,
    ) -> Arc<LabelMatrix> {
        let key = (fp1, fp2);
        if let Some(m) = read_lock(&self.labels).get(&key) {
            mutex_lock(&self.stats).label_cache_hits += 1;
            self.counter("shared.label_cache", "hit");
            return Arc::clone(m);
        }
        let space = self.params.label_space();
        let store_key = persist::labels_store_key(fp1, fp2, space);
        let (rows, cols) = (log1.alphabet_size(), log2.alphabet_size());
        let mut decoded: Option<LabelMatrix> = None;
        if let Some(bytes) = self.store_fetch(
            SnapshotKind::Labels,
            store_key,
            persist::LABELS_PAYLOAD_VERSION,
        ) {
            match persist::decode_labels(&bytes) {
                Ok(m) if m.rows() == rows && m.cols() == cols => {
                    mutex_lock(&self.stats).store_hits += 1;
                    self.counter("shared.label_cache", "disk");
                    decoded = Some(m);
                }
                Ok(m) => self.store_quarantine(
                    SnapshotKind::Labels,
                    store_key,
                    &format!(
                        "label matrix shape {}x{} does not fit alphabets {rows}x{cols}",
                        m.rows(),
                        m.cols()
                    ),
                ),
                Err(e) => self.store_quarantine(SnapshotKind::Labels, store_key, &e.to_string()),
            }
        }
        let built = decoded.is_none();
        let m = match decoded {
            Some(m) => m,
            None => {
                let m = label_matrix_for(&self.params, log1, log2);
                mutex_lock(&self.stats).label_builds += 1;
                self.counter("shared.label_cache", "miss");
                m
            }
        };
        let m = Arc::new(m);
        if built {
            self.store_put(
                SnapshotKind::Labels,
                store_key,
                persist::LABELS_PAYLOAD_VERSION,
                || persist::encode_labels(&m),
            );
        }
        Arc::clone(write_lock(&self.labels).entry(key).or_insert(m))
    }

    /// Matches two logs through the shared caches. Bit-identical to the
    /// same pair through [`crate::MatchSession`] (unlimited budget, cold
    /// seed, default thread policy).
    pub fn try_match(&self, log1: &EventLog, log2: &EventLog) -> Result<MatchOutcome, CoreError> {
        self.try_match_keyed(fingerprint_log(log1), log1, fingerprint_log(log2), log2)
    }

    /// [`try_match`](Self::try_match) with both content fingerprints
    /// already known.
    pub fn try_match_keyed(
        &self,
        fp1: u64,
        log1: &EventLog,
        fp2: u64,
        log2: &EventLog,
    ) -> Result<MatchOutcome, CoreError> {
        if let Some(cached) = read_lock(&self.outcomes).get(&(fp1, fp2)) {
            let outcome = cached.clone();
            mutex_lock(&self.stats).outcome_cache_hits += 1;
            self.counter("shared.outcome_cache", "hit");
            return Ok(outcome);
        }
        let g1 = self.graph_keyed(fp1, log1);
        let g2 = self.graph_keyed(fp2, log2);
        self.try_match_modeled(fp1, log1, &g1, fp2, log2, &g2)
    }

    /// The substrate → label → solve tail of a match when both graphs are
    /// already in hand (the catalog pins reference graphs itself).
    pub fn try_match_modeled(
        &self,
        fp1: u64,
        log1: &EventLog,
        g1: &Arc<DependencyGraph>,
        fp2: u64,
        log2: &EventLog,
        g2: &Arc<DependencyGraph>,
    ) -> Result<MatchOutcome, CoreError> {
        if let Some(cached) = read_lock(&self.outcomes).get(&(fp1, fp2)) {
            let outcome = cached.clone();
            mutex_lock(&self.stats).outcome_cache_hits += 1;
            self.counter("shared.outcome_cache", "hit");
            return Ok(outcome);
        }
        let fwd_sub = self.substrate(g1, g2, Direction::Forward);
        let bwd_sub = self.substrate(g1, g2, Direction::Backward);
        let labels = self.label_matrix(fp1, log1, fp2, log2);
        let run_options = RunOptions {
            seed: None,
            abort_below: None,
            budget: Budget::default(),
            threads: None,
            oversubscribe: false,
            recorder: None,
        };
        let fwd =
            Engine::try_with_substrate(g1, g2, &labels, &self.params, Direction::Forward, fwd_sub)?
                .try_run(&run_options)?;
        let bwd = Engine::try_with_substrate(
            g1,
            g2,
            &labels,
            &self.params,
            Direction::Backward,
            bwd_sub,
        )?
        .try_run(&run_options)?;
        let outcome = aggregate_directions(&self.params, fwd, bwd);
        write_lock(&self.outcomes)
            .entry((fp1, fp2))
            .or_insert_with(|| outcome.clone());
        Ok(outcome)
    }

    /// Drops a graph and every substrate involving it from the in-memory
    /// caches — the catalog's eviction hook. The durable store keeps its
    /// snapshots, so the next access disk-warms (or rebuilds from the
    /// source log); evicting is an availability/memory trade, never a
    /// correctness event.
    pub fn evict_graph(&self, fingerprint: u64) {
        write_lock(&self.graphs).remove(&fingerprint);
        write_lock(&self.substrates).retain(|k, _| k.0 != fingerprint && k.1 != fingerprint);
    }

    fn store_fetch(&self, kind: SnapshotKind, key: u64, version: u32) -> Option<Vec<u8>> {
        let store = self.store.as_deref()?;
        match store.get(kind, key, version) {
            Ok(Some(bytes)) => Some(bytes),
            Ok(None) => {
                mutex_lock(&self.stats).store_misses += 1;
                None
            }
            Err(EmsError::StoreCorrupt { .. }) => {
                mutex_lock(&self.stats).store_quarantines += 1;
                None
            }
            Err(_) => {
                mutex_lock(&self.stats).store_read_failures += 1;
                None
            }
        }
    }

    fn store_quarantine(&self, kind: SnapshotKind, key: u64, reason: &str) {
        if let Some(store) = &self.store {
            store.quarantine_entry(kind, key, reason);
            mutex_lock(&self.stats).store_quarantines += 1;
        }
    }

    fn store_put(
        &self,
        kind: SnapshotKind,
        key: u64,
        version: u32,
        encode: impl FnOnce() -> Vec<u8>,
    ) {
        if let Some(store) = &self.store {
            if store.put(kind, key, version, &encode()).is_err() {
                mutex_lock(&self.stats).store_write_failures += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MatchSession;

    fn logs() -> (EventLog, EventLog) {
        let mut l1 = EventLog::new();
        l1.push_trace(["cash", "validate", "ship"]);
        l1.push_trace(["cash", "validate", "ship"]);
        l1.push_trace(["card", "validate", "ship"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["e0", "e1", "e3", "e4"]);
        l2.push_trace(["e0", "e2", "e3", "e4"]);
        (l1, l2)
    }

    fn exact_params() -> EmsParams {
        EmsParams {
            epsilon: 1e-300,
            ..EmsParams::structural()
        }
    }

    #[test]
    fn shared_matches_match_session_bitwise() {
        let (l1, l2) = logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1.clone());
        let h2 = session.ingest(l2.clone());
        let expected = session.match_pair(h1, h2).unwrap();

        let shared = SharedSession::try_new(exact_params()).unwrap();
        let got = shared.try_match(&l1, &l2).unwrap();
        assert_eq!(got.similarity.max_abs_diff(&expected.similarity), 0.0);
        assert_eq!(got.forward.max_abs_diff(&expected.forward), 0.0);
        assert_eq!(got.backward.max_abs_diff(&expected.backward), 0.0);
    }

    #[test]
    fn repeat_matches_hit_every_cache() {
        let (l1, l2) = logs();
        let shared = SharedSession::try_new(exact_params()).unwrap();
        shared.try_match(&l1, &l2).unwrap();
        shared.try_match(&l1, &l2).unwrap();
        let stats = shared.stats();
        assert_eq!(stats.graph_builds, 2);
        assert_eq!(stats.substrate_builds, 2);
        assert_eq!(stats.label_builds, 1);
        assert_eq!(stats.outcome_cache_hits, 1);
    }

    #[test]
    fn concurrent_queries_are_bit_identical_to_serial() {
        let (l1, l2) = logs();
        let serial = {
            let shared = SharedSession::try_new(exact_params()).unwrap();
            shared.try_match(&l1, &l2).unwrap()
        };
        let shared = SharedSession::try_new(exact_params()).unwrap();
        let outcomes: Vec<MatchOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| shared.try_match(&l1, &l2).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in &outcomes {
            assert_eq!(out.similarity.max_abs_diff(&serial.similarity), 0.0);
        }
        // However the race resolved, the sum of builds and outcome-cache
        // hits accounts for all eight queries.
        let stats = shared.stats();
        assert!(stats.graph_builds >= 2);
        assert!(stats.outcome_cache_hits <= 7);
    }

    #[test]
    fn shared_store_tier_warms_and_degrades_like_match_session() {
        let root = std::env::temp_dir().join(format!("ems-shared-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let (l1, l2) = logs();
        let cold = {
            let store = Arc::new(CatalogStore::open(&root).unwrap());
            let shared = SharedSession::try_new(exact_params())
                .unwrap()
                .with_store(store);
            let out = shared.try_match(&l1, &l2).unwrap();
            assert_eq!(shared.stats().store_misses, 5);
            out
        };
        // A fresh shared session disk-warms every build stage.
        let store = Arc::new(CatalogStore::open(&root).unwrap());
        let shared = SharedSession::try_new(exact_params())
            .unwrap()
            .with_store(store);
        let warm = shared.try_match(&l1, &l2).unwrap();
        assert_eq!(warm.similarity.max_abs_diff(&cold.similarity), 0.0);
        let stats = shared.stats();
        assert_eq!(stats.store_hits, 5);
        assert_eq!(stats.graph_builds, 0);
        assert_eq!(stats.substrate_builds, 0);
        assert_eq!(stats.label_builds, 0);
        let _ = std::fs::remove_dir_all(&root);
    }
}
