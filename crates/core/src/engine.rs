//! The iterative fixpoint computation of the forward/backward similarity
//! (Definition 2, formula (1)) with early-convergence pruning
//! (Proposition 2), per-pair freezing (Proposition 4), closed-form
//! estimation (Section 3.5) and upper-bound abort (Section 4.3).

use crate::bounds::pair_upper_bound;
use crate::error::CoreError;
use crate::estimate::extrapolate;
use crate::params::{Direction, EmsParams};
use crate::sim::SimMatrix;
use ems_depgraph::{
    longest_distances, longest_distances_backward, DependencyGraph, Distance, NodeId,
};
use ems_labels::LabelMatrix;
use std::time::{Duration, Instant};

/// Initial state carried into a run — used by the composite matcher to reuse
/// similarities that Proposition 4 proves unchanged.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Initial values: frozen pairs hold their known-correct similarities,
    /// all other pairs must be `0` (the `S^0` of Section 3.2 — monotone
    /// convergence relies on starting from below).
    pub values: SimMatrix,
    /// Per-pair freeze mask (row-major, `n1 * n2`): `true` pairs are never
    /// updated but still feed their values into neighbors' computations.
    pub frozen: Vec<bool>,
}

/// A resource budget for one similarity run.
///
/// Each limit is independent and optional; the default budget is unlimited.
/// Budgets are checked *between* iterations: the iteration count is never
/// exceeded, while formula evaluations and wall-clock time may overshoot by
/// at most one iteration's worth of work. When any limit trips, the exact
/// phase stops and the remaining non-converged pairs are finished with the
/// closed-form estimation of Section 3.5, so an exhausted run still returns
/// a usable similarity matrix — flagged via [`RunStats::degraded`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum exact iterations.
    pub max_iterations: Option<usize>,
    /// Maximum evaluations of formula (1) ([`RunStats::formula_evals`]).
    pub max_formula_evals: Option<u64>,
    /// Maximum elapsed wall-clock time.
    pub wall_clock: Option<Duration>,
}

impl Budget {
    /// An unlimited budget (all limits off).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_iterations.is_none()
            && self.max_formula_evals.is_none()
            && self.wall_clock.is_none()
    }

    /// True when the observed work exceeds any limit.
    fn exhausted(&self, iterations: usize, formula_evals: u64, started: Instant) -> bool {
        self.max_iterations.is_some_and(|m| iterations >= m)
            || self.max_formula_evals.is_some_and(|m| formula_evals >= m)
            || self.wall_clock.is_some_and(|m| started.elapsed() >= m)
    }
}

/// Options for one similarity run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Reused values + freeze mask (Proposition 4).
    pub seed: Option<Seed>,
    /// Abort threshold for upper-bound pruning (Section 4.3): after each
    /// iteration the run computes the average of the per-pair *upper bounds*;
    /// if that optimistic average is already below this threshold, the run
    /// can never beat it and stops early with [`RunStats::aborted`] set.
    pub abort_below: Option<f64>,
    /// Resource budget; exhaustion degrades gracefully to estimation.
    pub budget: Budget,
}

/// Counters describing how much work a run performed — these are the
/// quantities Figures 6 and 12 of the paper report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Iterations executed (exact phase).
    pub iterations: usize,
    /// Number of evaluations of formula (1) — one per non-skipped pair per
    /// iteration. This is the paper's "total number of iterations w.r.t. all
    /// event pairs".
    pub formula_evals: u64,
    /// Evaluations skipped by early-convergence pruning.
    pub pruned_evals: u64,
    /// Evaluations skipped because the pair was frozen by a [`Seed`].
    pub frozen_evals: u64,
    /// Pairs whose final value came from the closed-form estimation.
    pub estimated_pairs: u64,
    /// Whether the run stopped early due to `abort_below`.
    pub aborted: bool,
    /// Whether a [`Budget`] limit tripped and the run fell back to the
    /// closed-form estimation for pairs that had not yet converged.
    pub degraded: bool,
}

impl RunStats {
    /// Merges counters from another run (e.g. forward + backward).
    pub fn merge(&mut self, other: &RunStats) {
        self.iterations = self.iterations.max(other.iterations);
        self.formula_evals += other.formula_evals;
        self.pruned_evals += other.pruned_evals;
        self.frozen_evals += other.frozen_evals;
        self.estimated_pairs += other.estimated_pairs;
        self.aborted |= other.aborted;
        self.degraded |= other.degraded;
    }
}

/// Result of one similarity run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The computed similarity matrix over real events.
    pub sim: SimMatrix,
    /// Work counters.
    pub stats: RunStats,
}

/// One-direction similarity engine over a fixed pair of dependency graphs.
///
/// The engine owns nothing graph-shaped: it borrows the graphs and the label
/// matrix, precomputes the `l(v)` distances for its direction, and can then
/// run any number of times (the composite matcher runs it once per candidate).
#[derive(Debug)]
pub struct Engine<'a> {
    g1: &'a DependencyGraph,
    g2: &'a DependencyGraph,
    labels: &'a LabelMatrix,
    params: &'a EmsParams,
    direction: Direction,
    l1: Vec<Distance>,
    l2: Vec<Distance>,
}

impl<'a> Engine<'a> {
    /// Creates an engine for `direction` over `g1 × g2`.
    ///
    /// # Panics
    /// If the label matrix shape does not match the graphs' real node counts
    /// or the parameters fail validation. Use
    /// [`try_new`](Self::try_new) for a fallible variant.
    #[allow(clippy::panic)] // documented contract panic; try_new is the fallible path
    pub fn new(
        g1: &'a DependencyGraph,
        g2: &'a DependencyGraph,
        labels: &'a LabelMatrix,
        params: &'a EmsParams,
        direction: Direction,
    ) -> Self {
        match Self::try_new(g1, g2, labels, params, direction) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new): returns
    /// [`CoreError::InvalidParams`] or [`CoreError::LabelShapeMismatch`]
    /// instead of panicking.
    pub fn try_new(
        g1: &'a DependencyGraph,
        g2: &'a DependencyGraph,
        labels: &'a LabelMatrix,
        params: &'a EmsParams,
        direction: Direction,
    ) -> Result<Self, CoreError> {
        params.validate().map_err(CoreError::InvalidParams)?;
        if labels.rows() != g1.num_real() || labels.cols() != g2.num_real() {
            return Err(CoreError::LabelShapeMismatch {
                rows: labels.rows(),
                cols: labels.cols(),
                n1: g1.num_real(),
                n2: g2.num_real(),
            });
        }
        let (l1, l2) = match direction {
            Direction::Forward => (longest_distances(g1), longest_distances(g2)),
            Direction::Backward => (
                longest_distances_backward(g1),
                longest_distances_backward(g2),
            ),
        };
        Ok(Engine {
            g1,
            g2,
            labels,
            params,
            direction,
            l1,
            l2,
        })
    }

    /// The per-pair convergence bound `h = min(l(v1), l(v2))`
    /// (Proposition 2).
    pub fn pair_bound(&self, v1: usize, v2: usize) -> Distance {
        Distance::min(self.l1[v1], self.l2[v2])
    }

    fn neighbors(&self, side1: bool, v: NodeId) -> &[(NodeId, f64)] {
        let g = if side1 { self.g1 } else { self.g2 };
        match self.direction {
            Direction::Forward => g.pre(v),
            Direction::Backward => g.post(v),
        }
    }

    /// Evaluates the one-side similarity `s(v1, v2)` of Definition 2 against
    /// the previous iteration's matrix.
    fn one_side(&self, prev: &SimMatrix, v1: usize, v2: usize, swap: bool) -> f64 {
        // `swap` computes s(v2, v1): outer loop over v2's neighbors.
        let x1 = self.g1.artificial();
        let x2 = self.g2.artificial();
        let (outer, inner) = if swap {
            (
                self.neighbors(false, NodeId::from_index(v2)),
                self.neighbors(true, NodeId::from_index(v1)),
            )
        } else {
            (
                self.neighbors(true, NodeId::from_index(v1)),
                self.neighbors(false, NodeId::from_index(v2)),
            )
        };
        if outer.is_empty() {
            return 0.0;
        }
        let c = self.params.c;
        let mut sum = 0.0;
        for &(op, f_o) in outer {
            let o_art = if swap { op == x2 } else { op == x1 };
            let mut best = 0.0_f64;
            for &(ip, f_i) in inner {
                let i_art = if swap { ip == x1 } else { ip == x2 };
                let s_prev = match (o_art, i_art) {
                    (true, true) => 1.0,
                    (true, false) | (false, true) => 0.0,
                    (false, false) => {
                        if swap {
                            prev.get(ip.index(), op.index())
                        } else {
                            prev.get(op.index(), ip.index())
                        }
                    }
                };
                if s_prev <= best {
                    // C ≤ c < 1, so C * s_prev < s_prev ≤ best: cannot win.
                    continue;
                }
                let compat = c * (1.0 - (f_o - f_i).abs() / (f_o + f_i));
                let cand = compat * s_prev;
                if cand > best {
                    best = cand;
                }
            }
            sum += best;
        }
        sum / outer.len() as f64
    }

    /// Runs the iteration to convergence (or through Algorithm 1's
    /// estimation when `params.estimate_after` is set).
    ///
    /// # Panics
    /// If the seed's shape does not match the run's pair space. Use
    /// [`try_run`](Self::try_run) for a fallible variant.
    #[allow(clippy::panic)] // documented contract panic; try_run is the fallible path
    pub fn run(&self, options: &RunOptions) -> RunOutput {
        match self.try_run(options) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`run`](Self::run): returns
    /// [`CoreError::SeedShapeMismatch`] instead of panicking.
    pub fn try_run(&self, options: &RunOptions) -> Result<RunOutput, CoreError> {
        let n1 = self.g1.num_real();
        let n2 = self.g2.num_real();
        let p = self.params;
        let mut stats = RunStats::default();
        let started = Instant::now();

        let (mut current, frozen): (SimMatrix, Vec<bool>) = match &options.seed {
            Some(seed) => {
                if seed.values.rows() != n1
                    || seed.values.cols() != n2
                    || seed.frozen.len() != n1 * n2
                {
                    return Err(CoreError::SeedShapeMismatch {
                        rows: seed.values.rows(),
                        cols: seed.values.cols(),
                        mask: seed.frozen.len(),
                        n1,
                        n2,
                    });
                }
                (seed.values.clone(), seed.frozen.clone())
            }
            None => (SimMatrix::zeros(n1, n2), vec![false; n1 * n2]),
        };
        if n1 == 0 || n2 == 0 {
            return Ok(RunOutput {
                sim: current,
                stats,
            });
        }

        // Global iteration bound (Section 3.4): the whole computation is
        // finished after n = min(max l1, max l2) iterations when finite.
        let max_l1 = self.l1.iter().copied().max().unwrap_or(Distance::Finite(0));
        let max_l2 = self.l2.iter().copied().max().unwrap_or(Distance::Finite(0));
        let global_bound = match (p.pruning, Distance::min(max_l1, max_l2)) {
            (true, Distance::Finite(h)) => (h as usize).min(p.max_iterations),
            _ => p.max_iterations,
        };
        let exact_rounds = match p.estimate_after {
            Some(i) => i.min(global_bound),
            None => global_bound,
        };

        let mut next = current.clone();
        let alpha = p.alpha;
        let mut exhausted = false;
        for i in 1..=exact_rounds {
            // Budget check between iterations: the previous iteration's swap
            // has happened, so `current`/`next` are in the same consistent
            // state the estimation phase expects.
            if options
                .budget
                .exhausted(stats.iterations, stats.formula_evals, started)
            {
                exhausted = true;
                break;
            }
            let mut delta = 0.0_f64;
            for v1 in 0..n1 {
                for v2 in 0..n2 {
                    let k = v1 * n2 + v2;
                    if frozen[k] {
                        stats.frozen_evals += 1;
                        continue;
                    }
                    if p.pruning {
                        if let Distance::Finite(h) = self.pair_bound(v1, v2) {
                            if i > h as usize {
                                stats.pruned_evals += 1;
                                continue;
                            }
                        }
                    }
                    stats.formula_evals += 1;
                    let s12 = self.one_side(&current, v1, v2, false);
                    let s21 = self.one_side(&current, v1, v2, true);
                    let mut value =
                        alpha * (s12 + s21) / 2.0 + (1.0 - alpha) * self.labels.get(v1, v2);
                    // Numerical safety: theory guarantees [0,1].
                    value = value.clamp(0.0, 1.0);
                    delta = delta.max((value - current.get(v1, v2)).abs());
                    next.set(v1, v2, value);
                }
            }
            // Pairs skipped this round keep their previous values.
            for v1 in 0..n1 {
                for v2 in 0..n2 {
                    let k = v1 * n2 + v2;
                    let skipped = frozen[k]
                        || (p.pruning
                            && matches!(self.pair_bound(v1, v2), Distance::Finite(h) if i > h as usize));
                    if skipped {
                        let v = current.get(v1, v2);
                        next.set(v1, v2, v);
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
            stats.iterations = i;

            if let Some(threshold) = options.abort_below {
                let mut upper_sum = 0.0;
                for v1 in 0..n1 {
                    for v2 in 0..n2 {
                        upper_sum += pair_upper_bound(
                            current.get(v1, v2),
                            i,
                            self.pair_bound(v1, v2),
                            alpha,
                            p.c,
                        );
                    }
                }
                let upper_avg = upper_sum / (n1 * n2) as f64;
                if upper_avg < threshold {
                    stats.aborted = true;
                    return Ok(RunOutput {
                        sim: current,
                        stats,
                    });
                }
            }

            if delta < p.epsilon {
                break;
            }
        }

        // Estimation phase (Algorithm 1, lines 6-8). Only pairs that were
        // still moving at iteration I are extrapolated: a pair whose value
        // already stopped changing is its own best estimate, and the crude
        // recurrence model would only disturb it. A budget-exhausted run
        // enters this phase even without `estimate_after`: the closed-form
        // extrapolation finishes the pairs the budget cut off.
        stats.degraded = exhausted;
        let estimation_cap = match (p.estimate_after, exhausted) {
            (Some(cap), _) => Some(cap),
            (None, true) => Some(stats.iterations),
            (None, false) => None,
        };
        if let Some(cap) = estimation_cap {
            let i_done = stats.iterations.min(cap);
            for v1 in 0..n1 {
                for v2 in 0..n2 {
                    if frozen[v1 * n2 + v2] {
                        continue;
                    }
                    if i_done > 0 && (current.get(v1, v2) - next.get(v1, v2)).abs() < p.epsilon {
                        // `next` holds the previous iteration's values after
                        // the final swap: the pair has converged numerically.
                        continue;
                    }
                    let h = self.pair_bound(v1, v2);
                    let needs = match h {
                        Distance::Finite(h) => i_done < h as usize,
                        Distance::Infinite => true,
                    };
                    if !needs {
                        continue;
                    }
                    let (a_deg, b_deg) = match self.direction {
                        Direction::Forward => (
                            self.g1.pre(NodeId::from_index(v1)).len(),
                            self.g2.pre(NodeId::from_index(v2)).len(),
                        ),
                        Direction::Backward => (
                            self.g1.post(NodeId::from_index(v1)).len(),
                            self.g2.post(NodeId::from_index(v2)).len(),
                        ),
                    };
                    if a_deg == 0 || b_deg == 0 {
                        continue; // zero-frequency node: similarity stays 0
                    }
                    let f1 = self.g1.node_frequency(NodeId::from_index(v1));
                    let f2 = self.g2.node_frequency(NodeId::from_index(v2));
                    let s_prev = if i_done >= 1 {
                        Some(next.get(v1, v2))
                    } else {
                        None
                    };
                    let est = extrapolate(
                        current.get(v1, v2),
                        s_prev,
                        i_done,
                        h,
                        a_deg,
                        b_deg,
                        f1,
                        f2,
                        self.labels.get(v1, v2),
                        p,
                    );
                    // Exact similarities only grow (Theorem 1): never let the
                    // estimate fall below the exact value already computed.
                    let est = est.clamp(current.get(v1, v2), 1.0);
                    current.set(v1, v2, est);
                    stats.estimated_pairs += 1;
                }
            }
        }

        Ok(RunOutput {
            sim: current,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_labels::LabelMatrix;

    /// G1 of Figure 2(a): only the pieces relevant to Example 4 need exact
    /// frequencies; remaining edges follow the figure's structure.
    fn figure2_g1() -> DependencyGraph {
        DependencyGraph::from_parts(
            vec![
                "A".into(),
                "B".into(),
                "C".into(),
                "D".into(),
                "E".into(),
                "F".into(),
            ],
            vec![0.4, 0.6, 1.0, 1.0, 1.0, 1.0],
            &[
                (0, 2, 0.4), // A -> C
                (1, 2, 0.6), // B -> C
                (2, 3, 1.0), // C -> D
                (3, 4, 0.6), // D -> E
                (3, 5, 0.4), // D -> F
                (4, 5, 0.6), // E -> F
                (5, 4, 0.4), // F -> E
            ],
        )
    }

    /// G2 of Figure 2(b).
    fn figure2_g2() -> DependencyGraph {
        DependencyGraph::from_parts(
            vec![
                "1".into(),
                "2".into(),
                "3".into(),
                "4".into(),
                "5".into(),
                "6".into(),
            ],
            vec![1.0, 0.4, 0.6, 1.0, 1.0, 1.0],
            &[
                (0, 1, 0.4), // 1 -> 2
                (0, 2, 0.6), // 1 -> 3
                (1, 3, 0.4), // 2 -> 4
                (2, 3, 0.6), // 3 -> 4
                (3, 4, 1.0), // 4 -> 5
                (4, 5, 0.6), // 5 -> 6
                (5, 4, 0.4), // 6 -> 5 (5 and 6 interleave)
            ],
        )
    }

    fn structural_engine_run(
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        params: &EmsParams,
    ) -> RunOutput {
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let engine = Engine::new(g1, g2, &labels, params, Direction::Forward);
        engine.run(&RunOptions::default())
    }

    /// Reproduces Example 4's first-iteration values S¹(A,1) = 0.457 and
    /// S¹(A,2) = 0.6 with α = 1, c = 0.8.
    #[test]
    fn example4_first_iteration_values() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let mut params = EmsParams::structural();
        params.estimate_after = None;
        params.max_iterations = 1; // stop after iteration 1
        params.pruning = false;
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        // S¹(A,1): C(v^X,A,v^X,1)·1 = 0.8·(1 - 0.6/1.4) = 0.457...
        let s_a1 = out.sim.get(0, 0);
        assert!((s_a1 - 0.45714285).abs() < 1e-6, "S1(A,1) = {s_a1}");
        // S¹(A,2) = 0.5·(0.8 + 0.4) = 0.6.
        let s_a2 = out.sim.get(0, 1);
        assert!((s_a2 - 0.6).abs() < 1e-9, "S1(A,2) = {s_a2}");
        // Dislocated pair (A,2) beats the local-looking pair (A,1).
        assert!(s_a2 > s_a1);
    }

    #[test]
    fn similarity_is_monotone_across_iterations() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let mut prev = SimMatrix::zeros(6, 6);
        for rounds in 1..=6 {
            let mut params = EmsParams::structural().without_pruning();
            params.max_iterations = rounds;
            let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
            let out = engine.run(&RunOptions::default());
            for v1 in 0..6 {
                for v2 in 0..6 {
                    assert!(
                        out.sim.get(v1, v2) + 1e-12 >= prev.get(v1, v2),
                        "monotonicity violated at ({v1},{v2}) round {rounds}"
                    );
                    assert!(out.sim.get(v1, v2) <= 1.0 + 1e-12);
                }
            }
            prev = out.sim;
        }
    }

    #[test]
    fn pruned_and_unpruned_agree() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let with = structural_engine_run(&g1, &g2, &EmsParams::structural());
        let without = structural_engine_run(&g1, &g2, &EmsParams::structural().without_pruning());
        assert!(
            with.sim.max_abs_diff(&without.sim) < 1e-6,
            "pruning changed results by {}",
            with.sim.max_abs_diff(&without.sim)
        );
        assert!(with.stats.formula_evals < without.stats.formula_evals);
        assert!(with.stats.pruned_evals > 0);
    }

    #[test]
    fn backward_direction_runs_and_differs() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let fwd =
            Engine::new(&g1, &g2, &labels, &params, Direction::Forward).run(&RunOptions::default());
        let bwd = Engine::new(&g1, &g2, &labels, &params, Direction::Backward)
            .run(&RunOptions::default());
        assert!(fwd.sim.max_abs_diff(&bwd.sim) > 1e-3);
    }

    #[test]
    fn estimation_with_zero_iterations_is_cheap_and_bounded() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let params = EmsParams::structural().estimated(0);
        let out = structural_engine_run(&g1, &g2, &params);
        assert_eq!(out.stats.iterations, 0);
        assert!(out.stats.estimated_pairs > 0);
        for (_, _, v) in out.sim.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn estimation_converges_to_exact_with_large_i() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let exact = structural_engine_run(&g1, &g2, &EmsParams::structural());
        let estimated = structural_engine_run(&g1, &g2, &EmsParams::structural().estimated(50));
        // With I beyond every finite pair bound, estimation only touches
        // infinite-h pairs; finite pairs are exact.
        for v1 in 0..4 {
            for v2 in 0..4 {
                assert!(
                    (exact.sim.get(v1, v2) - estimated.sim.get(v1, v2)).abs() < 1e-6,
                    "pair ({v1},{v2})"
                );
            }
        }
    }

    #[test]
    fn estimation_error_shrinks_with_more_exact_iterations() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let exact = structural_engine_run(&g1, &g2, &EmsParams::structural());
        let err = |i: usize| {
            let est = structural_engine_run(&g1, &g2, &EmsParams::structural().estimated(i));
            est.sim.max_abs_diff(&exact.sim)
        };
        let e0 = err(0);
        let e3 = err(3);
        assert!(e3 <= e0 + 1e-9, "I=3 error {e3} vs I=0 error {e0}");
    }

    #[test]
    fn frozen_pairs_keep_their_values() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let base = engine.run(&RunOptions::default());
        // Freeze the entire matrix at the fixpoint: run must return it as-is.
        let seed = Seed {
            values: base.sim.clone(),
            frozen: vec![true; 36],
        };
        let out = engine.run(&RunOptions {
            seed: Some(seed),
            abort_below: None,
            ..Default::default()
        });
        assert_eq!(out.stats.formula_evals, 0);
        assert!(out.sim.max_abs_diff(&base.sim) < 1e-15);
    }

    #[test]
    fn partially_frozen_run_matches_full_run() {
        // Freezing pairs at their true fixpoint values must not change the
        // other pairs' fixpoints (this is what Proposition 4 relies on).
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let base = engine.run(&RunOptions::default());
        let mut frozen = vec![false; 36];
        let mut values = SimMatrix::zeros(6, 6);
        // Freeze rows of A and B (sources) at their converged values.
        for v1 in 0..2 {
            for v2 in 0..6 {
                frozen[v1 * 6 + v2] = true;
                values.set(v1, v2, base.sim.get(v1, v2));
            }
        }
        let out = engine.run(&RunOptions {
            seed: Some(Seed { values, frozen }),
            abort_below: None,
            ..Default::default()
        });
        // Agreement is up to the convergence threshold: freezing rows at
        // their fixpoint changes the iteration trajectory, not the limit.
        assert!(
            out.sim.max_abs_diff(&base.sim) < 1e-3,
            "diff {}",
            out.sim.max_abs_diff(&base.sim)
        );
    }

    #[test]
    fn abort_below_stops_early() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions {
            seed: None,
            abort_below: Some(0.99), // unreachable average
            ..Default::default()
        });
        assert!(out.stats.aborted);
        assert!(out.stats.iterations <= 3);
    }

    #[test]
    fn abort_threshold_zero_never_aborts() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions {
            seed: None,
            abort_below: Some(0.0),
            ..Default::default()
        });
        assert!(!out.stats.aborted);
    }

    #[test]
    fn label_similarity_is_blended() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        // Label matrix that marks (A,2) as typographically identical.
        let mut raw = vec![0.0; 36];
        raw[1] = 1.0; // (A, 2)
        let labels = LabelMatrix::from_raw(6, 6, raw);
        let params = EmsParams::with_labels(0.5);
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        let zero_labels = LabelMatrix::zeros(6, 6);
        let engine0 = Engine::new(&g1, &g2, &zero_labels, &params, Direction::Forward);
        let out0 = engine0.run(&RunOptions::default());
        assert!(out.sim.get(0, 1) > out0.sim.get(0, 1) + 0.2);
    }

    #[test]
    fn empty_graphs_yield_empty_matrix() {
        let g = DependencyGraph::from_parts(vec![], vec![], &[]);
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(0, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        assert_eq!(out.sim.rows(), 0);
        assert_eq!(out.stats.iterations, 0);
    }

    fn budget_run(budget: Budget) -> RunOutput {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        engine.run(&RunOptions {
            budget,
            ..Default::default()
        })
    }

    #[test]
    fn unlimited_budget_never_degrades() {
        let out = budget_run(Budget::unlimited());
        assert!(!out.stats.degraded);
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn zero_iteration_budget_still_returns_usable_estimates() {
        let out = budget_run(Budget {
            max_iterations: Some(0),
            ..Default::default()
        });
        assert!(out.stats.degraded);
        assert_eq!(out.stats.iterations, 0);
        assert!(out.stats.estimated_pairs > 0);
        for (_, _, v) in out.sim.iter() {
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn iteration_budget_matches_explicit_estimation() {
        // A budget of I iterations must land exactly where `estimated(I)`
        // lands: same exact prefix, same closed-form tail.
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let budgeted = budget_run(Budget {
            max_iterations: Some(2),
            ..Default::default()
        });
        let explicit = structural_engine_run(&g1, &g2, &EmsParams::structural().estimated(2));
        assert!(budgeted.stats.degraded);
        assert!(!explicit.stats.degraded);
        assert_eq!(budgeted.stats.iterations, 2);
        assert!(budgeted.sim.max_abs_diff(&explicit.sim) < 1e-12);
    }

    #[test]
    fn formula_eval_budget_trips_and_degrades() {
        let out = budget_run(Budget {
            max_formula_evals: Some(1),
            ..Default::default()
        });
        assert!(out.stats.degraded);
        // The check is between iterations: one full iteration may complete.
        assert!(out.stats.iterations <= 1);
        for (_, _, v) in out.sim.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn zero_wall_clock_budget_degrades_immediately() {
        let out = budget_run(Budget {
            wall_clock: Some(std::time::Duration::ZERO),
            ..Default::default()
        });
        assert!(out.stats.degraded);
        assert_eq!(out.stats.iterations, 0);
        assert!(out.stats.estimated_pairs > 0);
    }

    #[test]
    fn try_new_reports_bad_params_and_shapes() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let mut bad = EmsParams::structural();
        bad.c = 2.0;
        assert!(matches!(
            Engine::try_new(&g1, &g2, &labels, &bad, Direction::Forward),
            Err(crate::CoreError::InvalidParams(_))
        ));
        let params = EmsParams::structural();
        let small = LabelMatrix::zeros(2, 6);
        assert!(matches!(
            Engine::try_new(&g1, &g2, &small, &params, Direction::Forward),
            Err(crate::CoreError::LabelShapeMismatch { rows: 2, .. })
        ));
    }

    #[test]
    fn try_run_reports_seed_shape_mismatch() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let seed = Seed {
            values: SimMatrix::zeros(6, 6),
            frozen: vec![false; 7], // wrong mask length
        };
        let err = engine
            .try_run(&RunOptions {
                seed: Some(seed),
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::SeedShapeMismatch { mask: 7, .. }
        ));
    }
}
