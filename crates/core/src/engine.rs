//! The iterative fixpoint computation of the forward/backward similarity
//! (Definition 2, formula (1)) with early-convergence pruning
//! (Proposition 2), per-pair freezing (Proposition 4), closed-form
//! estimation (Section 3.5) and upper-bound abort (Section 4.3).
//!
//! Two implementations of the fixpoint live here:
//!
//! * [`Engine::try_run`] — the production kernel: a precomputed
//!   [`PairContext`] substrate (CSR neighbors + tabulated compatibility
//!   factors), an active-pair worklist that retires converged/frozen pairs
//!   once instead of re-testing them every round, and row-sharded parallel
//!   iteration gated by the `threads` knob ([`EmsParams::threads`] /
//!   [`RunOptions::threads`]). Results are bit-identical for every thread
//!   count: the update is a Jacobi step reading only the previous matrix,
//!   the delta reduction is an exact `f64::max`, and the work counters are
//!   integers (see `kernel` module docs for the full argument).
//! * [`Engine::try_run_reference`] — the original single-threaded seed
//!   kernel, kept verbatim as the differential-testing oracle and the
//!   benchmark baseline.

use crate::bounds::pair_upper_bound;
use crate::error::CoreError;
use crate::estimate::extrapolate;
use crate::kernel::{
    eval_chunk, resolve_threads, transpose_into, ActivePair, DenseScratch, PairContext, PairEval,
    H_INFINITE,
};
use crate::numeric::NeumaierSum;
use crate::params::{Direction, EmsParams};
use crate::sim::SimMatrix;
use crate::sim_sparse::SparseSim;
use crate::substrate::EngineSubstrate;
use ems_depgraph::{DependencyGraph, Distance, NodeId};
use ems_labels::LabelMatrix;
use ems_obs::{Histogram, IterationRecord, Recorder};
use ems_prof::{AllocTally, ProfScope, Profiler};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};
use std::time::{Duration, Instant};

pub use crate::stats::{Budget, PhaseTimes, RunOptions, RunOutput, RunStats, Seed, ThreadClamp};

/// Size-aware shard granularity: a parallel shard never covers fewer than
/// this many active pairs. Below the floor an iteration uses fewer shards
/// (down to one, i.e. fully serial) — synchronization overhead would
/// otherwise dominate the update.
const PAIRS_PER_SHARD_FLOOR: usize = 4096;

/// Shared per-iteration state of the persistent worker pool — everything a
/// shard evaluation reads, behind one `RwLock`. The main thread holds the
/// write lock through an iteration's serial sections (retirement,
/// substrate refresh, scatter, swap) and releases it only for the
/// evaluation window, during which every pool member — main included —
/// takes a read lock and evaluates its own shard.
struct PoolState {
    /// The iterate being read as `prev` during an evaluation window (the
    /// swap with `next` happens under the write lock).
    current: SimMatrix,
    /// Active-pair worklist, ascending in `k` and shrink-only.
    work: Vec<ActivePair>,
    /// Dense-substrate buffers (the evaluation input when `use_dense`).
    scratch: DenseScratch,
    /// Transposed `prev` for the sparse path (when `!use_dense` and no
    /// CSR substrate was built).
    prev_t: Vec<f64>,
    /// CSR of the transposed `prev` — the post-warm-up substrate of
    /// δ-sparsified runs ([`EmsParams::sparse_delta`]). Always built at
    /// `δ = 0` from the already-sparsified `current`, so reading it is
    /// bit-identical to reading the dense transpose.
    csr: Option<SparseSim>,
    /// Which evaluation substrate this iteration's shards read.
    use_dense: bool,
    /// Shard layout of the current evaluation window.
    chunk_size: usize,
    shards: usize,
}

/// Deterministic per-run histogram accumulator, shared by both kernels so
/// the emitted record sequence is identical across them.
///
/// The three deterministic histograms are derived from the same quantities
/// the per-iteration [`IterationRecord`]s carry (max delta, worklist size,
/// δ-dropped pairs) — bit-identical across the reference kernel, the
/// serial worklist kernel, and every pooled thread count. `shard_pairs`
/// tallies the evaluation shards *as actually executed* and therefore
/// depends on the thread count; it is classified non-deterministic, so
/// redacted exports zero its contents while keeping the record in place.
struct RunProfile {
    iteration_delta: Histogram,
    active_pairs: Histogram,
    sparse_dropped: Histogram,
    shard_pairs: Histogram,
}

impl RunProfile {
    fn new(attrs: Vec<(String, String)>) -> Self {
        RunProfile {
            iteration_delta: Histogram::new("engine.iteration_delta", attrs.clone(), "q32"),
            active_pairs: Histogram::new("engine.active_pairs", attrs.clone(), "pairs"),
            sparse_dropped: Histogram::new("engine.sparse_dropped", attrs.clone(), "pairs"),
            shard_pairs: Histogram::nondeterministic("engine.shard_pairs", attrs, "pairs"),
        }
    }

    /// One fixpoint iteration: its max delta (quantized via q32) and the
    /// number of active pairs it evaluated.
    fn observe_iteration(&mut self, max_delta: f64, active_pairs: usize) {
        self.iteration_delta.observe_f64(max_delta);
        self.active_pairs.observe(active_pairs as u64);
    }

    /// One δ-sparsification pass: how many pairs it dropped.
    fn observe_drop(&mut self, dropped: u64) {
        self.sparse_dropped.observe(dropped);
    }

    /// One evaluation shard as scheduled: the pairs it covered.
    fn observe_shard(&mut self, pairs: u64) {
        self.shard_pairs.observe(pairs);
    }

    fn emit(self, rec: &Recorder) {
        self.iteration_delta.record_into(rec);
        self.active_pairs.record_into(rec);
        self.sparse_dropped.record_into(rec);
        self.shard_pairs.record_into(rec);
    }
}

/// Closes a run's `engine.run` profiling scope, charging the deterministic
/// work counters and the logical allocation tally.
///
/// The tally charges the *logical* Jacobi state — the two dense `n1 x n2`
/// iterates every kernel maintains — rather than as-executed allocator
/// traffic, which differs between the reference and worklist kernels (and
/// with thread count) and would break the byte-identical redacted export
/// contract (see the `ems-prof` module docs).
fn finish_run_scope(scope: Option<ProfScope<'_>>, stats: &RunStats, n1: usize, n2: usize) {
    let Some(mut scope) = scope else { return };
    scope.count("iterations", stats.iterations as u64);
    scope.count("formula_evals", stats.formula_evals);
    let mut tally = AllocTally::default();
    tally.charge_elems::<f64>(n1 * n2);
    tally.charge_elems::<f64>(n1 * n2);
    scope.alloc(tally);
    scope.finish();
}

/// One pool member's private output slot: the shard's new values, its max
/// delta, and a captured panic payload re-raised on the main thread.
#[derive(Default)]
struct PoolSlot {
    buf: Vec<f64>,
    delta: f64,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Evaluates pool member `w`'s shard of the current window into `buf`,
/// returning the shard's max delta. Members beyond the window's shard
/// count have nothing to do this round.
fn eval_shard(
    ctx: &PairContext,
    labels: &LabelMatrix,
    alpha: f64,
    st: &PoolState,
    w: usize,
    buf: &mut Vec<f64>,
) -> f64 {
    let start = w * st.chunk_size;
    if w >= st.shards || start >= st.work.len() {
        buf.clear();
        return 0.0;
    }
    let end = (start + st.chunk_size).min(st.work.len());
    let eval = if st.use_dense {
        st.scratch.as_eval()
    } else if let Some(csr) = &st.csr {
        PairEval::Csr { prev_t: csr }
    } else {
        PairEval::Sparse { prev_t: &st.prev_t }
    };
    eval_chunk(
        ctx,
        st.current.data(),
        &eval,
        labels,
        alpha,
        &st.work[start..end],
        buf,
    )
}

/// One pool member's work inside an evaluation window: read-lock the
/// state, evaluate the member's shard into its slot. Panics are captured
/// into the slot instead of unwinding — a pool member that blew through a
/// barrier would deadlock the others, so the main thread re-raises the
/// payload after the window closes.
fn run_shard(
    state: &RwLock<PoolState>,
    slot: &Mutex<PoolSlot>,
    ctx: &PairContext,
    labels: &LabelMatrix,
    alpha: f64,
    w: usize,
) {
    let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
    let PoolSlot { buf, delta, panic } = &mut *guard;
    match catch_unwind(AssertUnwindSafe(|| {
        // ems-lint: allow(lock-discipline, slot->state nesting is safe: phases are barrier-separated, so the coordinator's state->slot nesting in try_run never runs concurrently with a shard)
        let st = state.read().unwrap_or_else(|e| e.into_inner());
        eval_shard(ctx, labels, alpha, &st, w, buf)
    })) {
        Ok(d) => {
            *delta = d;
            *panic = None;
        }
        Err(p) => {
            *delta = 0.0;
            *panic = Some(p);
        }
    }
}

/// One-direction similarity engine over a fixed pair of dependency graphs.
///
/// The engine owns nothing graph-shaped: it borrows the graphs and the label
/// matrix, and either builds its [`EngineSubstrate`] (the `l(v)` distances
/// and `PairContext` kernel tables) itself via [`try_new`](Self::try_new) or
/// receives a cached one via
/// [`try_with_substrate`](Self::try_with_substrate). It can then run any
/// number of times (the composite matcher runs it once per candidate).
#[derive(Debug)]
pub struct Engine<'a> {
    g1: &'a DependencyGraph,
    g2: &'a DependencyGraph,
    labels: &'a LabelMatrix,
    params: &'a EmsParams,
    direction: Direction,
    substrate: Arc<EngineSubstrate>,
    /// Dense-substrate buffers, retained across runs so repeated runs
    /// (sweeps, benchmarks) skip the 2×`L·n` allocation and page-fault
    /// cost. `try_lock` with a local fallback — concurrent runs on one
    /// engine stay correct, the loser just allocates fresh.
    scratch: Mutex<DenseScratch>,
    /// Setup time charged to this engine's runs: the substrate build time
    /// when this engine performed the build, zero when it received a cached
    /// substrate (the cache owner attributes the build once — see
    /// [`PhaseTimes::setup`]).
    charged_setup: Duration,
}

impl<'a> Engine<'a> {
    /// Creates an engine for `direction` over `g1 × g2`.
    ///
    /// # Panics
    /// If the label matrix shape does not match the graphs' real node counts
    /// or the parameters fail validation. Use
    /// [`try_new`](Self::try_new) for a fallible variant.
    #[allow(clippy::panic)] // documented contract panic; try_new is the fallible path
    pub fn new(
        g1: &'a DependencyGraph,
        g2: &'a DependencyGraph,
        labels: &'a LabelMatrix,
        params: &'a EmsParams,
        direction: Direction,
    ) -> Self {
        match Self::try_new(g1, g2, labels, params, direction) {
            Ok(engine) => engine,
            // ems-lint: allow(panic-surface, documented contract panic mirroring try_new, which is the fallible path)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new): returns
    /// [`CoreError::InvalidParams`] or [`CoreError::LabelShapeMismatch`]
    /// instead of panicking. Builds the [`EngineSubstrate`] itself and
    /// charges its build time to this engine's runs.
    pub fn try_new(
        g1: &'a DependencyGraph,
        g2: &'a DependencyGraph,
        labels: &'a LabelMatrix,
        params: &'a EmsParams,
        direction: Direction,
    ) -> Result<Self, CoreError> {
        Self::validate_inputs(g1, g2, labels, params)?;
        let substrate = Arc::new(EngineSubstrate::build(g1, g2, direction, params.c));
        let charged_setup = substrate.build_time();
        Ok(Engine {
            g1,
            g2,
            labels,
            params,
            direction,
            substrate,
            scratch: Mutex::new(DenseScratch::default()),
            charged_setup,
        })
    }

    /// Creates an engine over a cached [`EngineSubstrate`] — the session
    /// fast path. The substrate must structurally fit the run: its shape
    /// must equal the graphs' real node counts, and its direction and
    /// damping constant must match the request bit-for-bit; otherwise
    /// [`CoreError::SubstrateMismatch`] is returned. No setup time is
    /// charged to this engine's runs — the substrate owner attributes the
    /// build once (see [`PhaseTimes::setup`]).
    pub fn try_with_substrate(
        g1: &'a DependencyGraph,
        g2: &'a DependencyGraph,
        labels: &'a LabelMatrix,
        params: &'a EmsParams,
        direction: Direction,
        substrate: Arc<EngineSubstrate>,
    ) -> Result<Self, CoreError> {
        Self::validate_inputs(g1, g2, labels, params)?;
        if substrate.rows() != g1.num_real() || substrate.cols() != g2.num_real() {
            return Err(CoreError::SubstrateMismatch {
                message: format!(
                    "substrate is {}x{} but the graphs have {}x{} real nodes",
                    substrate.rows(),
                    substrate.cols(),
                    g1.num_real(),
                    g2.num_real()
                ),
            });
        }
        if substrate.direction() != direction {
            return Err(CoreError::SubstrateMismatch {
                message: format!(
                    "substrate was built for direction {:?}, run requests {:?}",
                    substrate.direction(),
                    direction
                ),
            });
        }
        if substrate.c().to_bits() != params.c.to_bits() {
            return Err(CoreError::SubstrateMismatch {
                message: format!(
                    "substrate was built with c = {}, run requests c = {}",
                    substrate.c(),
                    params.c
                ),
            });
        }
        Ok(Engine {
            g1,
            g2,
            labels,
            params,
            direction,
            substrate,
            scratch: Mutex::new(DenseScratch::default()),
            charged_setup: Duration::ZERO,
        })
    }

    fn validate_inputs(
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
        params: &EmsParams,
    ) -> Result<(), CoreError> {
        params.validate().map_err(CoreError::InvalidParams)?;
        if labels.rows() != g1.num_real() || labels.cols() != g2.num_real() {
            return Err(CoreError::LabelShapeMismatch {
                rows: labels.rows(),
                cols: labels.cols(),
                n1: g1.num_real(),
                n2: g2.num_real(),
            });
        }
        Ok(())
    }

    /// The substrate this engine runs on — shareable with further engines
    /// over the same `(g1, g2, direction)`.
    pub fn substrate(&self) -> &Arc<EngineSubstrate> {
        &self.substrate
    }

    /// The per-pair convergence bound `h = min(l(v1), l(v2))`
    /// (Proposition 2).
    pub fn pair_bound(&self, v1: usize, v2: usize) -> Distance {
        self.substrate.pair_bound(v1, v2)
    }

    /// Telemetry label for this engine's direction.
    fn engine_label(&self) -> &'static str {
        match self.direction {
            Direction::Forward => "forward",
            Direction::Backward => "backward",
        }
    }

    fn engine_attrs(&self) -> Vec<(String, String)> {
        vec![("engine".to_string(), self.engine_label().to_string())]
    }

    /// Emits the end-of-run phase spans (from the already-measured
    /// `PhaseTimes` — no clock reads here), work counters, and — when a
    /// [`RunProfile`] was accumulated — the hot-path histograms, in a fixed
    /// order. The counter values equal the `RunStats` fields, so the
    /// recorded content is identical across kernels and thread counts.
    fn record_run_summary(&self, rec: &Recorder, stats: &RunStats, profile: Option<RunProfile>) {
        let attrs = self.engine_attrs();
        rec.span_closed("phase.setup", attrs.clone(), stats.phase_times.setup);
        rec.span_closed("phase.exact", attrs.clone(), stats.phase_times.exact);
        rec.span_closed(
            "phase.estimation",
            attrs.clone(),
            stats.phase_times.estimation,
        );
        rec.counter_add("run.iterations", attrs.clone(), stats.iterations as u64);
        rec.counter_add("run.formula_evals", attrs.clone(), stats.formula_evals);
        rec.counter_add("run.pruned_evals", attrs.clone(), stats.pruned_evals);
        rec.counter_add("run.frozen_evals", attrs.clone(), stats.frozen_evals);
        rec.counter_add("run.estimated_pairs", attrs, stats.estimated_pairs);
        if let Some(profile) = profile {
            profile.emit(rec);
        }
    }

    fn neighbors(&self, side1: bool, v: NodeId) -> &[(NodeId, f64)] {
        let g = if side1 { self.g1 } else { self.g2 };
        match self.direction {
            Direction::Forward => g.pre(v),
            Direction::Backward => g.post(v),
        }
    }

    /// Evaluates the one-side similarity `s(v1, v2)` of Definition 2 against
    /// the previous iteration's matrix — the seed implementation, used only
    /// by the reference kernel.
    fn one_side(&self, prev: &SimMatrix, v1: usize, v2: usize, swap: bool) -> f64 {
        // `swap` computes s(v2, v1): outer loop over v2's neighbors.
        let x1 = self.g1.artificial();
        let x2 = self.g2.artificial();
        let (outer, inner) = if swap {
            (
                self.neighbors(false, NodeId::from_index(v2)),
                self.neighbors(true, NodeId::from_index(v1)),
            )
        } else {
            (
                self.neighbors(true, NodeId::from_index(v1)),
                self.neighbors(false, NodeId::from_index(v2)),
            )
        };
        if outer.is_empty() {
            return 0.0;
        }
        let c = self.params.c;
        let mut sum = 0.0;
        for &(op, f_o) in outer {
            let o_art = if swap { op == x2 } else { op == x1 };
            let mut best = 0.0_f64;
            for &(ip, f_i) in inner {
                let i_art = if swap { ip == x1 } else { ip == x2 };
                let s_prev = match (o_art, i_art) {
                    (true, true) => 1.0,
                    (true, false) | (false, true) => 0.0,
                    (false, false) => {
                        if swap {
                            prev.get(ip.index(), op.index())
                        } else {
                            prev.get(op.index(), ip.index())
                        }
                    }
                };
                if s_prev <= best {
                    // C ≤ c < 1, so C * s_prev < s_prev ≤ best: cannot win.
                    continue;
                }
                let compat = c * (1.0 - (f_o - f_i).abs() / (f_o + f_i));
                let cand = compat * s_prev;
                if cand > best {
                    best = cand;
                }
            }
            // ems-lint: allow(float-taint, seed-kernel arithmetic reproduced bitwise; O(deg) bounded terms in [0,1], drift immaterial)
            sum += best;
        }
        sum / outer.len() as f64
    }

    /// Validates an optional seed and materializes the initial state.
    fn initial_state(
        &self,
        options: &RunOptions,
        n1: usize,
        n2: usize,
    ) -> Result<(SimMatrix, Vec<bool>), CoreError> {
        match &options.seed {
            Some(seed) => {
                if seed.values.rows() != n1
                    || seed.values.cols() != n2
                    || seed.frozen.len() != n1 * n2
                {
                    return Err(CoreError::SeedShapeMismatch {
                        rows: seed.values.rows(),
                        cols: seed.values.cols(),
                        mask: seed.frozen.len(),
                        n1,
                        n2,
                    });
                }
                Ok((seed.values.clone(), seed.frozen.clone()))
            }
            None => Ok((SimMatrix::zeros(n1, n2), vec![false; n1 * n2])),
        }
    }

    /// The number of exact rounds the run may execute (global Section-3.4
    /// bound, capped by `max_iterations` and `estimate_after`).
    fn exact_rounds(&self) -> usize {
        let p = self.params;
        let s = &self.substrate;
        let max_l1 = s.l1.iter().copied().max().unwrap_or(Distance::Finite(0));
        let max_l2 = s.l2.iter().copied().max().unwrap_or(Distance::Finite(0));
        let global_bound = match (p.pruning, Distance::min(max_l1, max_l2)) {
            (true, Distance::Finite(h)) => (h as usize).min(p.max_iterations),
            _ => p.max_iterations,
        };
        match p.estimate_after {
            Some(i) => i.min(global_bound),
            None => global_bound,
        }
    }

    /// Runs the iteration to convergence (or through Algorithm 1's
    /// estimation when `params.estimate_after` is set).
    ///
    /// # Panics
    /// If the seed's shape does not match the run's pair space. Use
    /// [`try_run`](Self::try_run) for a fallible variant.
    #[allow(clippy::panic)] // documented contract panic; try_run is the fallible path
    pub fn run(&self, options: &RunOptions) -> RunOutput {
        match self.try_run(options) {
            Ok(out) => out,
            // ems-lint: allow(panic-surface, documented contract panic; try_run is the fallible path)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`run`](Self::run): returns
    /// [`CoreError::SeedShapeMismatch`] instead of panicking.
    ///
    /// This is the production kernel: precomputed [`PairContext`], active-
    /// pair worklist, and (for `threads > 1`) row-sharded parallel updates
    /// with results bit-identical to the serial path.
    pub fn try_run(&self, options: &RunOptions) -> Result<RunOutput, CoreError> {
        let n1 = self.g1.num_real();
        let n2 = self.g2.num_real();
        let p = self.params;
        let mut stats = RunStats {
            phase_times: PhaseTimes {
                setup: self.charged_setup,
                ..PhaseTimes::default()
            },
            ..RunStats::default()
        };
        // ems-lint: allow(wall-clock-randomness, phase timing feeds RunStats telemetry only, never similarity values)
        let started = Instant::now();

        let (current, frozen) = self.initial_state(options, n1, n2)?;
        if n1 == 0 || n2 == 0 {
            return Ok(RunOutput {
                sim: current,
                stats,
            });
        }
        let exact_rounds = self.exact_rounds();
        let mut next = current.clone();
        let alpha = p.alpha;
        let (threads, clamp) =
            resolve_threads(options.threads.unwrap_or(p.threads), options.oversubscribe);
        if let Some(c) = clamp {
            stats.thread_clamp = Some(c);
            if let Some(rec) = options.recorder.as_deref() {
                let mut attrs = self.engine_attrs();
                attrs.push(("requested".to_string(), c.requested.to_string()));
                attrs.push(("clamped_to".to_string(), c.clamped_to.to_string()));
                rec.event("threads.clamped", attrs);
            }
        }
        let track_bounds = options.abort_below.is_some();

        // Scoped profiling (observability-only, active when a recorder is
        // attached): one `engine.run` scope covering the whole run plus a
        // RunProfile of hot-path histograms emitted with the run summary.
        // Both kernels open the same scope and emit the same histograms,
        // so the redacted record stream stays byte-identical across them.
        let profiler = options
            .recorder
            .as_ref()
            .map(|r| Profiler::new(Arc::clone(r)));
        let mut run_scope = profiler.as_ref().map(|pf| pf.scope("engine.run"));
        let mut profile = options
            .recorder
            .is_some()
            .then(|| RunProfile::new(self.engine_attrs()));

        // Worklist construction: one pass over the grid classifies every
        // pair as frozen (never updated), retired (already past its
        // Proposition-2 horizon) or active. From here on, only active
        // pairs are touched per iteration — the seed kernel's per-round
        // full-grid re-tests and skip-copy pass are gone.
        let mut work: Vec<ActivePair> = Vec::new();
        let mut frozen_bounds: Vec<(u32, u32)> = Vec::new();
        let mut frozen_count = 0u64;
        let mut retired_count = 0u64;
        // Compensated running sum of retired pairs' upper bounds; a
        // retired pair's bound equals its (final) value, so the term is
        // added exactly once at retirement.
        let mut retired_sum = NeumaierSum::new();
        // Smallest horizon still in the worklist — while `i` has not
        // reached it, no pair can retire and the per-iteration retirement
        // scan is skipped entirely.
        let mut min_h = H_INFINITE;
        for v1 in 0..n1 {
            for v2 in 0..n2 {
                let k = v1 * n2 + v2;
                let h = match self.pair_bound(v1, v2) {
                    // `u32::MAX` is the infinite-horizon sentinel; a finite
                    // longest distance can never reach it on a real graph.
                    Distance::Finite(h) => h.min(H_INFINITE - 1),
                    Distance::Infinite => H_INFINITE,
                };
                if frozen[k] {
                    frozen_count += 1;
                    if track_bounds {
                        frozen_bounds.push((k as u32, h));
                    }
                } else if p.pruning && h == 0 {
                    retired_count += 1;
                    if track_bounds {
                        retired_sum.add(current.get(v1, v2));
                    }
                } else {
                    min_h = min_h.min(h);
                    work.push(ActivePair { k: k as u32, h });
                }
            }
        }

        // ems-lint: allow(wall-clock-randomness, phase timing feeds RunStats telemetry only, never similarity values)
        let exact_started = Instant::now();
        let mut exhausted = false;
        // Per-iteration evaluation substrates (see the `kernel` module
        // docs): dense inner-maxima tables while the worklist covers most
        // of the grid, a transposed `prev` copy for the sparse per-pair
        // path once retirement has thinned it. Buffers are allocated
        // lazily and reused across iterations.
        // The dense fill's branchless bit-pattern max requires every
        // operand non-negative and finite (and not `-0.0`); iterated
        // values are clamped to [0, 1], so only a user seed can violate
        // that — check it once.
        let dense_available = self.substrate.ctx.dense_available()
            && options.seed.as_ref().map_or(true, |s| {
                s.values
                    .data()
                    .iter()
                    .all(|v| v.is_finite() && v.is_sign_positive())
            });
        // Dense-substrate buffers persist on the engine across runs; a
        // concurrent run on the same engine loses the `try_lock` race and
        // works with (and discards) a fresh local set.
        let mut scratch_guard = self.scratch.try_lock();
        let scratch_taken = match scratch_guard {
            Ok(ref mut g) => std::mem::take(&mut **g),
            Err(_) => DenseScratch::default(),
        };
        // The unseeded initial matrix is all zeros, so the first fill's
        // products are all zero — the substrate can be zeroed wholesale.
        let mut prev_known_zero = options.seed.is_none();

        // Persistent worker pool, spawned once around the whole iteration
        // loop (the seed of this module respawned scoped threads every
        // iteration). Sized by the largest shard count any iteration can
        // use — worklists only shrink, so `pool` never under-provisions.
        // Protocol per parallel iteration: the main thread publishes the
        // iteration state (release the write lock), crosses the start
        // barrier, evaluates its own shard, crosses the finish barrier,
        // and re-acquires the write lock to scatter. Serial iterations
        // never touch the barriers — workers stay parked at the start
        // barrier. Shutdown raises `done` and crosses the start barrier
        // one final time.
        let pool = threads
            .min(work.len().div_ceil(PAIRS_PER_SHARD_FLOOR))
            .max(1);
        let state = RwLock::new(PoolState {
            current,
            work,
            scratch: scratch_taken,
            prev_t: Vec::new(),
            csr: None,
            use_dense: false,
            chunk_size: 0,
            shards: 1,
        });
        let slots: Vec<Mutex<PoolSlot>> =
            (0..pool).map(|_| Mutex::new(PoolSlot::default())).collect();
        let barrier = Barrier::new(pool);
        let done = AtomicBool::new(false);
        let ctx = &self.substrate.ctx;
        let labels = self.labels;

        let main_panic = std::thread::scope(|scope| {
            for (w, slot) in slots.iter().enumerate().skip(1) {
                let state = &state;
                let barrier = &barrier;
                let done = &done;
                scope.spawn(move || loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    run_shard(state, slot, ctx, labels, alpha, w);
                    barrier.wait();
                });
            }
            // Any panic escaping the loop body is caught here so the pool
            // can always be woken and shut down before it propagates —
            // a straight unwind past parked workers would deadlock the
            // scope join. Shard panics are re-raised inside the loop (in a
            // serial section), so an escaped panic always finds the
            // workers parked at the start barrier.
            let mut main_loop = || {
                for i in 1..=exact_rounds {
                    // Budget check between iterations: the previous
                    // iteration's swap has happened, so `current`/`next`
                    // are in the consistent state estimation expects.
                    if options
                        .budget
                        .exhausted(stats.iterations, stats.formula_evals, started)
                    {
                        if let Some(rec) = options.recorder.as_deref() {
                            rec.event("budget.exhausted", self.engine_attrs());
                        }
                        exhausted = true;
                        break;
                    }
                    let mut st = state.write().unwrap_or_else(|e| e.into_inner());
                    if let Some(dlt) = p.sparse_delta {
                        if dlt > 0.0 && i > p.sparse_warmup {
                            // δ-sparsification (post-warm-up): drop pairs
                            // whose score *and* Proposition-2 upper bound
                            // are both below δ to an exact zero and retire
                            // them. A dropped pair under-reports by < δ;
                            // one fixpoint step propagates at most α·c of
                            // a neighbor's error, so any score's
                            // steady-state error is bounded by δ/(1−α·c)
                            // (see the sparse-similarity module docs). The
                            // zero is synced into both Jacobi buffers and
                            // contributes nothing to the abort average —
                            // exactly its new fixed value.
                            let mut drop_scope =
                                profiler.as_ref().map(|pf| pf.scope("sparse_drop"));
                            let stm = &mut *st;
                            let before = stm.work.len();
                            let cur_data = stm.current.data_mut();
                            let next_data = next.data_mut();
                            let mut remaining_min = H_INFINITE;
                            stm.work.retain(|ap| {
                                let k = ap.k as usize;
                                let v = cur_data[k];
                                if v < dlt
                                    && pair_upper_bound(v, i - 1, distance_of(ap.h), alpha, p.c)
                                        < dlt
                                {
                                    cur_data[k] = 0.0;
                                    next_data[k] = 0.0;
                                    false
                                } else {
                                    remaining_min = remaining_min.min(ap.h);
                                    true
                                }
                            });
                            min_h = remaining_min;
                            let dropped = (before - stm.work.len()) as u64;
                            stats.sparsified_pairs += dropped;
                            if let Some(pr) = profile.as_mut() {
                                pr.observe_drop(dropped);
                            }
                            if let Some(mut s) = drop_scope.take() {
                                s.count("dropped", dropped);
                                s.count("remaining", stm.work.len() as u64);
                            }
                        }
                    }
                    let i_h = u32::try_from(i).unwrap_or(H_INFINITE);
                    if p.pruning && min_h < i_h {
                        // Retire pairs past their horizon. Both buffers
                        // must agree on a retired pair's value so the
                        // Jacobi swap never resurfaces a stale one — sync
                        // `next` once, here.
                        let stm = &mut *st;
                        let cur_data = stm.current.data();
                        let next_data = next.data_mut();
                        let mut remaining_min = H_INFINITE;
                        stm.work.retain(|ap| {
                            if ap.h < i_h {
                                next_data[ap.k as usize] = cur_data[ap.k as usize];
                                retired_count += 1;
                                if track_bounds {
                                    retired_sum.add(cur_data[ap.k as usize]);
                                }
                                false
                            } else {
                                remaining_min = remaining_min.min(ap.h);
                                true
                            }
                        });
                        min_h = remaining_min;
                    }
                    // Same per-iteration accounting as the seed kernel's
                    // full-grid scans, without the scans.
                    stats.pruned_evals += retired_count;
                    stats.frozen_evals += frozen_count;
                    stats.formula_evals += st.work.len() as u64;

                    // Pick the substrate: materializing the dense inner
                    // maxima costs one full candidate sweep, so it only
                    // pays while the worklist still covers a sizable
                    // fraction of the grid.
                    {
                        let stm = &mut *st;
                        let sparse_mode = p.sparse_delta.is_some() && i > p.sparse_warmup;
                        if sparse_mode {
                            // Post-warm-up CSR substrate: the dropped
                            // pairs are exact zeros in `current`, so the
                            // δ=0 build is a lossless compression — the
                            // evaluation stays bit-identical to the dense
                            // transpose while the working set shrinks to
                            // O(nnz).
                            let csr = SparseSim::from_dense_transposed(&stm.current, 0.0);
                            stm.csr = Some(csr);
                            stm.use_dense = false;
                        } else if dense_available && stm.work.len() * 4 >= n1 * n2 {
                            if prev_known_zero {
                                ctx.dense_fill_zero(&mut stm.scratch);
                            } else {
                                ctx.dense_fill(stm.current.data(), &mut stm.scratch);
                            }
                            stm.use_dense = true;
                            stm.csr = None;
                        } else {
                            stm.prev_t.resize(n1 * n2, 0.0);
                            transpose_into(stm.current.data(), n1, n2, &mut stm.prev_t);
                            stm.use_dense = false;
                            stm.csr = None;
                        }
                        // Size-aware shard granularity: never split below
                        // the pairs-per-shard floor.
                        let shards = pool
                            .min(stm.work.len().div_ceil(PAIRS_PER_SHARD_FLOOR))
                            .max(1);
                        stm.shards = shards;
                        stm.chunk_size = stm.work.len().div_ceil(shards).max(1);
                        if let Some(pr) = profile.as_mut() {
                            // As-scheduled shard layout — thread-count
                            // dependent, hence the exec histogram class.
                            let len = stm.work.len();
                            for w in 0..shards {
                                let start = w * stm.chunk_size;
                                let end = (start + stm.chunk_size).min(len);
                                pr.observe_shard((end - start) as u64);
                            }
                        }
                    }
                    let shards = st.shards;
                    let chunk_size = st.chunk_size;
                    stats.pool_shards = stats.pool_shards.max(shards as u64);
                    let delta = if shards <= 1 {
                        // Serial window under the write lock: the whole
                        // worklist is shard 0 of a one-shard layout.
                        // ems-lint: allow(lock-discipline, state->slot nesting is safe: workers are parked at the barrier during the coordinator's serial window, so run_shard's slot->state nesting cannot interleave)
                        let mut guard0 = slots[0].lock().unwrap_or_else(|e| e.into_inner());
                        let PoolSlot { buf, .. } = &mut *guard0;
                        let d = eval_shard(ctx, labels, alpha, &st, 0, buf);
                        let next_data = next.data_mut();
                        for (ap, &value) in st.work.iter().zip(buf.iter()) {
                            next_data[ap.k as usize] = value;
                        }
                        d
                    } else {
                        // Parallel window. Each member writes a private
                        // slot; the scatter below is serial, so no two
                        // members ever share a destination. Determinism:
                        // per-pair values depend only on `prev`, and the
                        // delta reduction is an exact max.
                        drop(st);
                        barrier.wait();
                        run_shard(&state, &slots[0], ctx, labels, alpha, 0);
                        barrier.wait();
                        st = state.write().unwrap_or_else(|e| e.into_inner());
                        let next_data = next.data_mut();
                        let mut delta = 0.0_f64;
                        for (w, slot) in slots.iter().take(shards).enumerate() {
                            let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
                            if let Some(payload) = guard.panic.take() {
                                resume_unwind(payload);
                            }
                            delta = delta.max(guard.delta);
                            let start = w * chunk_size;
                            let end = (start + chunk_size).min(st.work.len());
                            for (ap, &value) in st.work[start..end].iter().zip(guard.buf.iter()) {
                                next_data[ap.k as usize] = value;
                            }
                        }
                        delta
                    };

                    std::mem::swap(&mut st.current, &mut next);
                    stats.iterations = i;
                    prev_known_zero = false;

                    if let Some(rec) = options.recorder.as_deref() {
                        // After the swap `next` holds the previous iterate
                        // for every active pair (retired pairs were synced
                        // at retirement), so the mean delta can be taken
                        // here without touching the hot loop. Summation
                        // runs over the worklist in ascending pair order
                        // with Neumaier compensation — the same order and
                        // arithmetic the reference kernel's scan uses, so
                        // the value is bit-identical across kernels and
                        // thread counts.
                        let cur_data = st.current.data();
                        let prev_data = next.data();
                        let mut delta_sum = NeumaierSum::new();
                        for ap in &st.work {
                            delta_sum
                                .add((cur_data[ap.k as usize] - prev_data[ap.k as usize]).abs());
                        }
                        let mean_delta = if st.work.is_empty() {
                            0.0
                        } else {
                            delta_sum.value() / st.work.len() as f64
                        };
                        rec.iteration(IterationRecord {
                            engine: self.engine_label().to_string(),
                            iteration: i,
                            max_delta: delta,
                            mean_delta,
                            active_pairs: st.work.len(),
                            retired_pairs: retired_count,
                            frozen_pairs: frozen_count,
                            formula_evals: stats.formula_evals,
                        });
                        if let Some(pr) = profile.as_mut() {
                            pr.observe_iteration(delta, st.work.len());
                        }
                    }

                    if let Some(threshold) = options.abort_below {
                        // Incremental upper-bound average: retired pairs
                        // carry their (constant) value via `retired_sum`;
                        // only frozen and active pairs need fresh bound
                        // terms each round.
                        let mut acc = retired_sum;
                        let cur_data = st.current.data();
                        for &(k, h) in &frozen_bounds {
                            acc.add(pair_upper_bound(
                                cur_data[k as usize],
                                i,
                                distance_of(h),
                                alpha,
                                p.c,
                            ));
                        }
                        for ap in &st.work {
                            acc.add(pair_upper_bound(
                                cur_data[ap.k as usize],
                                i,
                                distance_of(ap.h),
                                alpha,
                                p.c,
                            ));
                        }
                        let upper_avg = acc.value() / (n1 * n2) as f64;
                        if upper_avg < threshold {
                            stats.aborted = true;
                            break;
                        }
                    }

                    if delta < p.epsilon {
                        break;
                    }
                }
                stats.phase_times.exact = exact_started.elapsed();
            };
            let result = catch_unwind(AssertUnwindSafe(&mut main_loop));
            done.store(true, Ordering::Release);
            barrier.wait();
            result.err()
        });
        if let Some(payload) = main_panic {
            resume_unwind(payload);
        }
        let PoolState {
            mut current,
            scratch: scratch_back,
            ..
        } = state.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Ok(ref mut g) = scratch_guard {
            **g = scratch_back;
        }

        if stats.aborted {
            if let Some(rec) = options.recorder.as_deref() {
                rec.event("run.aborted", self.engine_attrs());
                self.record_run_summary(rec, &stats, profile.take());
            }
            finish_run_scope(run_scope.take(), &stats, n1, n2);
            return Ok(RunOutput {
                sim: current,
                stats,
            });
        }

        stats.degraded = exhausted;
        let recorder = options.recorder.as_deref();
        if exhausted {
            if let Some(rec) = recorder {
                rec.event("run.degraded", self.engine_attrs());
            }
        }
        // ems-lint: allow(wall-clock-randomness, phase timing feeds RunStats telemetry only, never similarity values)
        let est_started = Instant::now();
        self.estimation_phase(
            &mut stats,
            &mut current,
            &next,
            &frozen,
            exhausted,
            n1,
            n2,
            recorder,
        );
        stats.phase_times.estimation = est_started.elapsed();
        if let Some(rec) = recorder {
            self.record_run_summary(rec, &stats, profile.take());
        }
        finish_run_scope(run_scope.take(), &stats, n1, n2);

        Ok(RunOutput {
            sim: current,
            stats,
        })
    }

    /// Estimation phase (Algorithm 1, lines 6-8). Only pairs that were
    /// still moving at iteration I are extrapolated: a pair whose value
    /// already stopped changing is its own best estimate, and the crude
    /// recurrence model would only disturb it. A budget-exhausted run
    /// enters this phase even without `estimate_after`: the closed-form
    /// extrapolation finishes the pairs the budget cut off.
    #[allow(clippy::too_many_arguments)]
    fn estimation_phase(
        &self,
        stats: &mut RunStats,
        current: &mut SimMatrix,
        next: &SimMatrix,
        frozen: &[bool],
        exhausted: bool,
        n1: usize,
        n2: usize,
        recorder: Option<&Recorder>,
    ) {
        let p = self.params;
        let estimation_cap = match (p.estimate_after, exhausted) {
            (Some(cap), _) => Some(cap),
            (None, true) => Some(stats.iterations),
            (None, false) => None,
        };
        let Some(cap) = estimation_cap else {
            return;
        };
        let i_done = stats.iterations.min(cap);
        if let Some(rec) = recorder {
            let mut attrs = self.engine_attrs();
            attrs.push(("after_iteration".to_string(), i_done.to_string()));
            rec.event("estimation.start", attrs);
        }
        for v1 in 0..n1 {
            for v2 in 0..n2 {
                if frozen[v1 * n2 + v2] {
                    continue;
                }
                if i_done > 0 && (current.get(v1, v2) - next.get(v1, v2)).abs() < p.epsilon {
                    // `next` holds the previous iteration's values after
                    // the final swap: the pair has converged numerically.
                    continue;
                }
                let h = self.pair_bound(v1, v2);
                let needs = match h {
                    Distance::Finite(h) => i_done < h as usize,
                    Distance::Infinite => true,
                };
                if !needs {
                    continue;
                }
                let (a_deg, b_deg) = match self.direction {
                    Direction::Forward => (
                        self.g1.pre(NodeId::from_index(v1)).len(),
                        self.g2.pre(NodeId::from_index(v2)).len(),
                    ),
                    Direction::Backward => (
                        self.g1.post(NodeId::from_index(v1)).len(),
                        self.g2.post(NodeId::from_index(v2)).len(),
                    ),
                };
                if a_deg == 0 || b_deg == 0 {
                    continue; // zero-frequency node: similarity stays 0
                }
                let f1 = self.g1.node_frequency(NodeId::from_index(v1));
                let f2 = self.g2.node_frequency(NodeId::from_index(v2));
                let s_prev = if i_done >= 1 {
                    Some(next.get(v1, v2))
                } else {
                    None
                };
                let est = extrapolate(
                    current.get(v1, v2),
                    s_prev,
                    i_done,
                    h,
                    a_deg,
                    b_deg,
                    f1,
                    f2,
                    self.labels.get(v1, v2),
                    p,
                );
                // Exact similarities only grow (Theorem 1): never let the
                // estimate fall below the exact value already computed.
                let est = est.clamp(current.get(v1, v2), 1.0);
                current.set(v1, v2, est);
                stats.estimated_pairs += 1;
            }
        }
    }

    /// As [`run`](Self::run), on the reference (seed) kernel.
    ///
    /// # Panics
    /// If the seed's shape does not match the run's pair space.
    #[allow(clippy::panic)] // documented contract panic, mirrors `run`
    pub fn run_reference(&self, options: &RunOptions) -> RunOutput {
        match self.try_run_reference(options) {
            Ok(out) => out,
            // ems-lint: allow(panic-surface, documented contract panic; try_run_reference is the fallible path)
            Err(e) => panic!("{e}"),
        }
    }

    /// The original single-threaded fixpoint, preserved verbatim from the
    /// seed implementation: full-grid scans, per-round re-derivation of the
    /// compatibility factor and pair bounds, naive upper-bound summation.
    /// Kept as the differential-testing oracle for [`try_run`](Self::try_run)
    /// and as the benchmark baseline; it ignores the `threads` knobs.
    pub fn try_run_reference(&self, options: &RunOptions) -> Result<RunOutput, CoreError> {
        let n1 = self.g1.num_real();
        let n2 = self.g2.num_real();
        let p = self.params;
        let mut stats = RunStats::default();
        // ems-lint: allow(wall-clock-randomness, phase timing feeds RunStats telemetry only, never similarity values)
        let started = Instant::now();

        let (mut current, frozen) = self.initial_state(options, n1, n2)?;
        if n1 == 0 || n2 == 0 {
            return Ok(RunOutput {
                sim: current,
                stats,
            });
        }
        let exact_rounds = self.exact_rounds();
        let mut next = current.clone();
        let alpha = p.alpha;
        let recorder = options.recorder.as_deref();
        // Mirror of the production kernel's profiling scope and histogram
        // set, so the redacted record streams of both kernels line up.
        let profiler = options
            .recorder
            .as_ref()
            .map(|r| Profiler::new(Arc::clone(r)));
        let mut run_scope = profiler.as_ref().map(|pf| pf.scope("engine.run"));
        let mut profile = options
            .recorder
            .is_some()
            .then(|| RunProfile::new(self.engine_attrs()));
        let mut exhausted = false;
        for i in 1..=exact_rounds {
            if options
                .budget
                .exhausted(stats.iterations, stats.formula_evals, started)
            {
                if let Some(rec) = recorder {
                    rec.event("budget.exhausted", self.engine_attrs());
                }
                exhausted = true;
                break;
            }
            let mut delta = 0.0_f64;
            // Per-round telemetry tallies (only consumed when a recorder
            // is attached): the scan visits pairs in ascending pair order,
            // matching the worklist kernel's summation order exactly.
            let mut round_evals = 0u64;
            let mut round_pruned = 0u64;
            let mut round_frozen = 0u64;
            let mut delta_sum = NeumaierSum::new();
            for v1 in 0..n1 {
                for v2 in 0..n2 {
                    let k = v1 * n2 + v2;
                    if frozen[k] {
                        stats.frozen_evals += 1;
                        round_frozen += 1;
                        continue;
                    }
                    if p.pruning {
                        if let Distance::Finite(h) = self.pair_bound(v1, v2) {
                            if i > h as usize {
                                stats.pruned_evals += 1;
                                round_pruned += 1;
                                continue;
                            }
                        }
                    }
                    stats.formula_evals += 1;
                    round_evals += 1;
                    let s12 = self.one_side(&current, v1, v2, false);
                    let s21 = self.one_side(&current, v1, v2, true);
                    let mut value =
                        alpha * (s12 + s21) / 2.0 + (1.0 - alpha) * self.labels.get(v1, v2);
                    // Numerical safety: theory guarantees [0,1].
                    value = value.clamp(0.0, 1.0);
                    delta = delta.max((value - current.get(v1, v2)).abs());
                    if recorder.is_some() {
                        delta_sum.add((value - current.get(v1, v2)).abs());
                    }
                    next.set(v1, v2, value);
                }
            }
            // Pairs skipped this round keep their previous values.
            for v1 in 0..n1 {
                for v2 in 0..n2 {
                    let k = v1 * n2 + v2;
                    let skipped = frozen[k]
                        || (p.pruning
                            && matches!(self.pair_bound(v1, v2), Distance::Finite(h) if i > h as usize));
                    if skipped {
                        let v = current.get(v1, v2);
                        next.set(v1, v2, v);
                    }
                }
            }
            std::mem::swap(&mut current, &mut next);
            stats.iterations = i;

            if let Some(rec) = recorder {
                let mean_delta = if round_evals == 0 {
                    0.0
                } else {
                    delta_sum.value() / round_evals as f64
                };
                rec.iteration(IterationRecord {
                    engine: self.engine_label().to_string(),
                    iteration: i,
                    max_delta: delta,
                    mean_delta,
                    active_pairs: round_evals as usize,
                    retired_pairs: round_pruned,
                    frozen_pairs: round_frozen,
                    formula_evals: stats.formula_evals,
                });
                if let Some(pr) = profile.as_mut() {
                    pr.observe_iteration(delta, round_evals as usize);
                    // The reference kernel evaluates the round as a single
                    // serial shard.
                    pr.observe_shard(round_evals);
                }
            }

            if let Some(threshold) = options.abort_below {
                let mut upper_sum = 0.0;
                for v1 in 0..n1 {
                    for v2 in 0..n2 {
                        upper_sum += pair_upper_bound(
                            current.get(v1, v2),
                            i,
                            self.pair_bound(v1, v2),
                            alpha,
                            p.c,
                        );
                    }
                }
                let upper_avg = upper_sum / (n1 * n2) as f64;
                if upper_avg < threshold {
                    stats.aborted = true;
                    if let Some(rec) = recorder {
                        rec.event("run.aborted", self.engine_attrs());
                        self.record_run_summary(rec, &stats, profile.take());
                    }
                    finish_run_scope(run_scope.take(), &stats, n1, n2);
                    return Ok(RunOutput {
                        sim: current,
                        stats,
                    });
                }
            }

            if delta < p.epsilon {
                break;
            }
        }

        stats.degraded = exhausted;
        if exhausted {
            if let Some(rec) = recorder {
                rec.event("run.degraded", self.engine_attrs());
            }
        }
        self.estimation_phase(
            &mut stats,
            &mut current,
            &next,
            &frozen,
            exhausted,
            n1,
            n2,
            recorder,
        );
        if let Some(rec) = recorder {
            self.record_run_summary(rec, &stats, profile.take());
        }
        finish_run_scope(run_scope.take(), &stats, n1, n2);

        Ok(RunOutput {
            sim: current,
            stats,
        })
    }
}

/// Decodes the worklist's horizon encoding back into a [`Distance`].
fn distance_of(h: u32) -> Distance {
    if h == H_INFINITE {
        Distance::Infinite
    } else {
        Distance::Finite(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_labels::LabelMatrix;

    /// G1 of Figure 2(a): only the pieces relevant to Example 4 need exact
    /// frequencies; remaining edges follow the figure's structure.
    fn figure2_g1() -> DependencyGraph {
        DependencyGraph::from_parts(
            vec![
                "A".into(),
                "B".into(),
                "C".into(),
                "D".into(),
                "E".into(),
                "F".into(),
            ],
            vec![0.4, 0.6, 1.0, 1.0, 1.0, 1.0],
            &[
                (0, 2, 0.4), // A -> C
                (1, 2, 0.6), // B -> C
                (2, 3, 1.0), // C -> D
                (3, 4, 0.6), // D -> E
                (3, 5, 0.4), // D -> F
                (4, 5, 0.6), // E -> F
                (5, 4, 0.4), // F -> E
            ],
        )
    }

    /// G2 of Figure 2(b).
    fn figure2_g2() -> DependencyGraph {
        DependencyGraph::from_parts(
            vec![
                "1".into(),
                "2".into(),
                "3".into(),
                "4".into(),
                "5".into(),
                "6".into(),
            ],
            vec![1.0, 0.4, 0.6, 1.0, 1.0, 1.0],
            &[
                (0, 1, 0.4), // 1 -> 2
                (0, 2, 0.6), // 1 -> 3
                (1, 3, 0.4), // 2 -> 4
                (2, 3, 0.6), // 3 -> 4
                (3, 4, 1.0), // 4 -> 5
                (4, 5, 0.6), // 5 -> 6
                (5, 4, 0.4), // 6 -> 5 (5 and 6 interleave)
            ],
        )
    }

    fn structural_engine_run(
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        params: &EmsParams,
    ) -> RunOutput {
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let engine = Engine::new(g1, g2, &labels, params, Direction::Forward);
        engine.run(&RunOptions::default())
    }

    /// Reproduces Example 4's first-iteration values S¹(A,1) = 0.457 and
    /// S¹(A,2) = 0.6 with α = 1, c = 0.8.
    #[test]
    fn example4_first_iteration_values() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let mut params = EmsParams::structural();
        params.estimate_after = None;
        params.max_iterations = 1; // stop after iteration 1
        params.pruning = false;
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        // S¹(A,1): C(v^X,A,v^X,1)·1 = 0.8·(1 - 0.6/1.4) = 0.457...
        let s_a1 = out.sim.get(0, 0);
        assert!((s_a1 - 0.45714285).abs() < 1e-6, "S1(A,1) = {s_a1}");
        // S¹(A,2) = 0.5·(0.8 + 0.4) = 0.6.
        let s_a2 = out.sim.get(0, 1);
        assert!((s_a2 - 0.6).abs() < 1e-9, "S1(A,2) = {s_a2}");
        // Dislocated pair (A,2) beats the local-looking pair (A,1).
        assert!(s_a2 > s_a1);
    }

    #[test]
    fn similarity_is_monotone_across_iterations() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let mut prev = SimMatrix::zeros(6, 6);
        for rounds in 1..=6 {
            let mut params = EmsParams::structural().without_pruning();
            params.max_iterations = rounds;
            let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
            let out = engine.run(&RunOptions::default());
            for v1 in 0..6 {
                for v2 in 0..6 {
                    assert!(
                        out.sim.get(v1, v2) + 1e-12 >= prev.get(v1, v2),
                        "monotonicity violated at ({v1},{v2}) round {rounds}"
                    );
                    assert!(out.sim.get(v1, v2) <= 1.0 + 1e-12);
                }
            }
            prev = out.sim;
        }
    }

    #[test]
    fn pruned_and_unpruned_agree() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let with = structural_engine_run(&g1, &g2, &EmsParams::structural());
        let without = structural_engine_run(&g1, &g2, &EmsParams::structural().without_pruning());
        assert!(
            with.sim.max_abs_diff(&without.sim) < 1e-6,
            "pruning changed results by {}",
            with.sim.max_abs_diff(&without.sim)
        );
        assert!(with.stats.formula_evals < without.stats.formula_evals);
        assert!(with.stats.pruned_evals > 0);
    }

    #[test]
    fn backward_direction_runs_and_differs() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let fwd =
            Engine::new(&g1, &g2, &labels, &params, Direction::Forward).run(&RunOptions::default());
        let bwd = Engine::new(&g1, &g2, &labels, &params, Direction::Backward)
            .run(&RunOptions::default());
        assert!(fwd.sim.max_abs_diff(&bwd.sim) > 1e-3);
    }

    #[test]
    fn estimation_with_zero_iterations_is_cheap_and_bounded() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let params = EmsParams::structural().estimated(0);
        let out = structural_engine_run(&g1, &g2, &params);
        assert_eq!(out.stats.iterations, 0);
        assert!(out.stats.estimated_pairs > 0);
        for (_, _, v) in out.sim.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn estimation_converges_to_exact_with_large_i() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let exact = structural_engine_run(&g1, &g2, &EmsParams::structural());
        let estimated = structural_engine_run(&g1, &g2, &EmsParams::structural().estimated(50));
        // With I beyond every finite pair bound, estimation only touches
        // infinite-h pairs; finite pairs are exact.
        for v1 in 0..4 {
            for v2 in 0..4 {
                assert!(
                    (exact.sim.get(v1, v2) - estimated.sim.get(v1, v2)).abs() < 1e-6,
                    "pair ({v1},{v2})"
                );
            }
        }
    }

    #[test]
    fn estimation_error_shrinks_with_more_exact_iterations() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let exact = structural_engine_run(&g1, &g2, &EmsParams::structural());
        let err = |i: usize| {
            let est = structural_engine_run(&g1, &g2, &EmsParams::structural().estimated(i));
            est.sim.max_abs_diff(&exact.sim)
        };
        let e0 = err(0);
        let e3 = err(3);
        assert!(e3 <= e0 + 1e-9, "I=3 error {e3} vs I=0 error {e0}");
    }

    #[test]
    fn frozen_pairs_keep_their_values() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let base = engine.run(&RunOptions::default());
        // Freeze the entire matrix at the fixpoint: run must return it as-is.
        let seed = Seed {
            values: base.sim.clone(),
            frozen: vec![true; 36],
        };
        let out = engine.run(&RunOptions {
            seed: Some(seed),
            abort_below: None,
            ..Default::default()
        });
        assert_eq!(out.stats.formula_evals, 0);
        assert!(out.sim.max_abs_diff(&base.sim) < 1e-15);
    }

    #[test]
    fn partially_frozen_run_matches_full_run() {
        // Freezing pairs at their true fixpoint values must not change the
        // other pairs' fixpoints (this is what Proposition 4 relies on).
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let base = engine.run(&RunOptions::default());
        let mut frozen = vec![false; 36];
        let mut values = SimMatrix::zeros(6, 6);
        // Freeze rows of A and B (sources) at their converged values.
        for v1 in 0..2 {
            for v2 in 0..6 {
                frozen[v1 * 6 + v2] = true;
                values.set(v1, v2, base.sim.get(v1, v2));
            }
        }
        let out = engine.run(&RunOptions {
            seed: Some(Seed { values, frozen }),
            abort_below: None,
            ..Default::default()
        });
        // Agreement is up to the convergence threshold: freezing rows at
        // their fixpoint changes the iteration trajectory, not the limit.
        assert!(
            out.sim.max_abs_diff(&base.sim) < 1e-3,
            "diff {}",
            out.sim.max_abs_diff(&base.sim)
        );
    }

    #[test]
    fn abort_below_stops_early() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions {
            seed: None,
            abort_below: Some(0.99), // unreachable average
            ..Default::default()
        });
        assert!(out.stats.aborted);
        assert!(out.stats.iterations <= 3);
    }

    #[test]
    fn abort_threshold_zero_never_aborts() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions {
            seed: None,
            abort_below: Some(0.0),
            ..Default::default()
        });
        assert!(!out.stats.aborted);
    }

    #[test]
    fn label_similarity_is_blended() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        // Label matrix that marks (A,2) as typographically identical.
        let mut raw = vec![0.0; 36];
        raw[1] = 1.0; // (A, 2)
        let labels = LabelMatrix::from_raw(6, 6, raw);
        let params = EmsParams::with_labels(0.5);
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        let zero_labels = LabelMatrix::zeros(6, 6);
        let engine0 = Engine::new(&g1, &g2, &zero_labels, &params, Direction::Forward);
        let out0 = engine0.run(&RunOptions::default());
        assert!(out.sim.get(0, 1) > out0.sim.get(0, 1) + 0.2);
    }

    #[test]
    fn empty_graphs_yield_empty_matrix() {
        let g = DependencyGraph::from_parts(vec![], vec![], &[]);
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(0, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        assert_eq!(out.sim.rows(), 0);
        assert_eq!(out.stats.iterations, 0);
    }

    fn budget_run(budget: Budget) -> RunOutput {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        engine.run(&RunOptions {
            budget,
            ..Default::default()
        })
    }

    #[test]
    fn unlimited_budget_never_degrades() {
        let out = budget_run(Budget::unlimited());
        assert!(!out.stats.degraded);
        assert!(Budget::default().is_unlimited());
    }

    #[test]
    fn zero_iteration_budget_still_returns_usable_estimates() {
        let out = budget_run(Budget {
            max_iterations: Some(0),
            ..Default::default()
        });
        assert!(out.stats.degraded);
        assert_eq!(out.stats.iterations, 0);
        assert!(out.stats.estimated_pairs > 0);
        for (_, _, v) in out.sim.iter() {
            assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn iteration_budget_matches_explicit_estimation() {
        // A budget of I iterations must land exactly where `estimated(I)`
        // lands: same exact prefix, same closed-form tail.
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let budgeted = budget_run(Budget {
            max_iterations: Some(2),
            ..Default::default()
        });
        let explicit = structural_engine_run(&g1, &g2, &EmsParams::structural().estimated(2));
        assert!(budgeted.stats.degraded);
        assert!(!explicit.stats.degraded);
        assert_eq!(budgeted.stats.iterations, 2);
        assert!(budgeted.sim.max_abs_diff(&explicit.sim) < 1e-12);
    }

    #[test]
    fn formula_eval_budget_trips_and_degrades() {
        let out = budget_run(Budget {
            max_formula_evals: Some(1),
            ..Default::default()
        });
        assert!(out.stats.degraded);
        // The check is between iterations: one full iteration may complete.
        assert!(out.stats.iterations <= 1);
        for (_, _, v) in out.sim.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn zero_wall_clock_budget_degrades_immediately() {
        let out = budget_run(Budget {
            wall_clock: Some(std::time::Duration::ZERO),
            ..Default::default()
        });
        assert!(out.stats.degraded);
        assert_eq!(out.stats.iterations, 0);
        assert!(out.stats.estimated_pairs > 0);
    }

    #[test]
    fn try_new_reports_bad_params_and_shapes() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let mut bad = EmsParams::structural();
        bad.c = 2.0;
        assert!(matches!(
            Engine::try_new(&g1, &g2, &labels, &bad, Direction::Forward),
            Err(crate::CoreError::InvalidParams(_))
        ));
        let params = EmsParams::structural();
        let small = LabelMatrix::zeros(2, 6);
        assert!(matches!(
            Engine::try_new(&g1, &g2, &small, &params, Direction::Forward),
            Err(crate::CoreError::LabelShapeMismatch { rows: 2, .. })
        ));
    }

    #[test]
    fn try_with_substrate_validates_fit_and_charges_no_setup() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let sub = Arc::new(EngineSubstrate::build(
            &g1,
            &g2,
            Direction::Forward,
            params.c,
        ));

        // Wrong direction.
        assert!(matches!(
            Engine::try_with_substrate(
                &g1,
                &g2,
                &labels,
                &params,
                Direction::Backward,
                Arc::clone(&sub)
            ),
            Err(crate::CoreError::SubstrateMismatch { .. })
        ));
        // Wrong damping constant (bit-exact comparison).
        let mut other_c = params.clone();
        other_c.c = params.c * 0.5;
        assert!(matches!(
            Engine::try_with_substrate(
                &g1,
                &g2,
                &labels,
                &other_c,
                Direction::Forward,
                Arc::clone(&sub)
            ),
            Err(crate::CoreError::SubstrateMismatch { .. })
        ));
        // Wrong shape: substrate over a smaller graph pair.
        let mut small_log = ems_events::EventLog::new();
        small_log.push_trace(["a", "b"]);
        let small = DependencyGraph::from_log(&small_log);
        let small_sub = Arc::new(EngineSubstrate::build(
            &small,
            &g2,
            Direction::Forward,
            params.c,
        ));
        assert!(matches!(
            Engine::try_with_substrate(&g1, &g2, &labels, &params, Direction::Forward, small_sub),
            Err(crate::CoreError::SubstrateMismatch { .. })
        ));

        // A fitting substrate runs bit-identically to a self-built engine
        // and charges zero setup (the cache owner attributes the build).
        let owned = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let injected =
            Engine::try_with_substrate(&g1, &g2, &labels, &params, Direction::Forward, sub)
                .unwrap();
        let a = owned.run(&RunOptions::default());
        let b = injected.run(&RunOptions::default());
        assert_bit_identical(&a.sim, &b.sim);
        assert!(owned.run(&RunOptions::default()).stats.phase_times.setup > Duration::ZERO);
        assert_eq!(b.stats.phase_times.setup, Duration::ZERO);
    }

    #[test]
    fn try_run_reports_seed_shape_mismatch() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let seed = Seed {
            values: SimMatrix::zeros(6, 6),
            frozen: vec![false; 7], // wrong mask length
        };
        let err = engine
            .try_run(&RunOptions {
                seed: Some(seed),
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(
            err,
            crate::CoreError::SeedShapeMismatch { mask: 7, .. }
        ));
    }

    /// Compares every counter of two runs except the wall-clock phase times.
    fn assert_same_work(a: &RunStats, b: &RunStats) {
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.formula_evals, b.formula_evals);
        assert_eq!(a.pruned_evals, b.pruned_evals);
        assert_eq!(a.frozen_evals, b.frozen_evals);
        assert_eq!(a.estimated_pairs, b.estimated_pairs);
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.degraded, b.degraded);
    }

    fn assert_bit_identical(a: &SimMatrix, b: &SimMatrix) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "values differ: {x} vs {y}");
        }
    }

    #[test]
    fn kernel_is_bit_identical_to_reference() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        for params in [
            EmsParams::structural(),
            EmsParams::structural().without_pruning(),
            EmsParams::structural().estimated(2),
        ] {
            for direction in [Direction::Forward, Direction::Backward] {
                let engine = Engine::new(&g1, &g2, &labels, &params, direction);
                let opts = RunOptions::default();
                let reference = engine.run_reference(&opts);
                let kernel = engine.run(&opts);
                assert_bit_identical(&reference.sim, &kernel.sim);
                assert_same_work(&reference.stats, &kernel.stats);
            }
        }
    }

    /// Satellite regression for the removed full-grid re-scan: the
    /// worklist's arithmetic `pruned_evals` accounting must match both the
    /// reference kernel and the closed form
    /// `Σ_{i=1..I} |{pairs : h < i}|` derived from the pair bounds.
    #[test]
    fn pruned_evals_accounting_matches_closed_form() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        let reference = engine.run_reference(&RunOptions::default());
        assert_eq!(out.stats.pruned_evals, reference.stats.pruned_evals);
        let mut expected = 0u64;
        for i in 1..=out.stats.iterations {
            for v1 in 0..6 {
                for v2 in 0..6 {
                    if let Distance::Finite(h) = engine.pair_bound(v1, v2) {
                        if (h as usize) < i {
                            expected += 1;
                        }
                    }
                }
            }
        }
        assert!(out.stats.pruned_evals > 0);
        assert_eq!(out.stats.pruned_evals, expected);
    }

    #[test]
    fn frozen_and_pruned_mix_matches_reference() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let base = engine.run(&RunOptions::default());
        let mut frozen = vec![false; 36];
        let mut values = SimMatrix::zeros(6, 6);
        for v2 in 0..6 {
            frozen[2 * 6 + v2] = true; // freeze row C
            values.set(2, v2, base.sim.get(2, v2));
        }
        let opts = RunOptions {
            seed: Some(Seed { values, frozen }),
            ..Default::default()
        };
        let reference = engine.run_reference(&opts);
        let kernel = engine.run(&opts);
        assert_bit_identical(&reference.sim, &kernel.sim);
        assert_same_work(&reference.stats, &kernel.stats);
        assert!(kernel.stats.frozen_evals > 0);
    }

    #[test]
    fn forced_parallel_path_matches_serial_on_small_grid() {
        // PAIRS_PER_SHARD_FLOOR keeps tiny grids serial; bypass the floor by
        // checking the two thread knobs still agree end to end.
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let serial = engine.run(&RunOptions {
            threads: Some(1),
            ..Default::default()
        });
        let parallel = engine.run(&RunOptions {
            threads: Some(4),
            oversubscribe: true,
            ..Default::default()
        });
        assert_bit_identical(&serial.sim, &parallel.sim);
        assert_same_work(&serial.stats, &parallel.stats);
    }

    /// An explicit thread request above host parallelism clamps to the
    /// host width and records the decision, instead of oversubscribing the
    /// pool; the `oversubscribe` escape hatch restores the old behavior.
    /// Either way the similarities are bit-identical — the clamp is a
    /// scheduling decision, never a results decision.
    #[test]
    fn oversized_thread_request_clamps_and_records_warning() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let over = host + 3;
        let clamped = engine.run(&RunOptions {
            threads: Some(over),
            ..Default::default()
        });
        assert_eq!(
            clamped.stats.thread_clamp,
            Some(ThreadClamp {
                requested: over,
                clamped_to: host,
            })
        );
        let honored = engine.run(&RunOptions {
            threads: Some(over),
            oversubscribe: true,
            ..Default::default()
        });
        assert_eq!(honored.stats.thread_clamp, None);
        assert_bit_identical(&clamped.sim, &honored.sim);
        // Requests within the host's width never warn.
        let within = engine.run(&RunOptions {
            threads: Some(1),
            ..Default::default()
        });
        assert_eq!(within.stats.thread_clamp, None);
    }

    #[test]
    fn abort_matches_reference_decision() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        for threshold in [0.0, 0.3, 0.99] {
            let opts = RunOptions {
                abort_below: Some(threshold),
                ..Default::default()
            };
            let reference = engine.run_reference(&opts);
            let kernel = engine.run(&opts);
            assert_eq!(reference.stats.aborted, kernel.stats.aborted);
            assert_eq!(reference.stats.iterations, kernel.stats.iterations);
            assert_bit_identical(&reference.sim, &kernel.sim);
        }
    }

    /// Pins the documented `PhaseTimes` merge-by-sum semantics: merging
    /// two reports that share one engine's setup counts that setup twice.
    /// The merged value is "total reported time", not "distinct work" —
    /// callers aggregating runs of a single engine must subtract the
    /// duplicated setup themselves if they want wall-clock-like numbers.
    #[test]
    fn merge_sums_phase_times_documenting_double_count() {
        let mut a = RunStats {
            phase_times: PhaseTimes {
                setup: Duration::from_micros(100),
                exact: Duration::from_micros(10),
                estimation: Duration::from_micros(1),
            },
            ..RunStats::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.phase_times.setup, Duration::from_micros(200));
        assert_eq!(a.phase_times.exact, Duration::from_micros(20));
        assert_eq!(a.phase_times.estimation, Duration::from_micros(2));
    }

    /// The recorded telemetry (everything except span durations) must be
    /// identical across the reference kernel, the serial worklist kernel
    /// and the parallel kernel — the trace is part of the determinism
    /// contract, not a best-effort diagnostic.
    #[test]
    fn telemetry_is_identical_across_kernels_and_threads() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        for direction in [Direction::Forward, Direction::Backward] {
            let engine = Engine::new(&g1, &g2, &labels, &params, direction);
            let trace_of = |kernel: &str, threads: usize| {
                let rec = Arc::new(Recorder::new());
                let opts = RunOptions {
                    recorder: Some(Arc::clone(&rec)),
                    threads: Some(threads),
                    oversubscribe: true,
                    ..Default::default()
                };
                if kernel == "reference" {
                    engine.run_reference(&opts);
                } else {
                    engine.run(&opts);
                }
                ems_obs::jsonl::write_redacted(&rec.records())
            };
            let reference = trace_of("reference", 1);
            let serial = trace_of("worklist", 1);
            let parallel = trace_of("worklist", 4);
            assert_eq!(reference, serial, "reference vs serial trace");
            assert_eq!(serial, parallel, "serial vs parallel trace");
            assert!(serial.contains("\"type\":\"iteration\""));
        }
    }

    /// A budget-exhausted run narrates its degradation through events.
    #[test]
    fn budget_exhaustion_emits_events() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let rec = Arc::new(Recorder::new());
        let out = engine.run(&RunOptions {
            budget: Budget {
                max_iterations: Some(1),
                ..Default::default()
            },
            recorder: Some(Arc::clone(&rec)),
            ..Default::default()
        });
        assert!(out.stats.degraded);
        let names: Vec<String> = rec
            .records()
            .iter()
            .filter_map(|r| match r {
                ems_obs::Record::Event { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"budget.exhausted".to_string()), "{names:?}");
        assert!(names.contains(&"run.degraded".to_string()), "{names:?}");
        assert!(names.contains(&"estimation.start".to_string()), "{names:?}");
    }

    #[test]
    fn phase_times_are_reported() {
        let g1 = figure2_g1();
        let g2 = figure2_g2();
        let labels = LabelMatrix::zeros(6, 6);
        let params = EmsParams::structural();
        let engine = Engine::new(&g1, &g2, &labels, &params, Direction::Forward);
        let out = engine.run(&RunOptions::default());
        // Setup covers the CSR + table build and is reported per run; the
        // exact phase ran at least one iteration so its timer advanced.
        assert!(out.stats.iterations > 0);
        assert!(out.stats.phase_times.exact > Duration::ZERO);
        let mut merged = out.stats.clone();
        merged.merge(&out.stats);
        assert_eq!(merged.phase_times.setup, out.stats.phase_times.setup * 2);
    }
}
