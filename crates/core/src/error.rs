//! Typed errors for the core matcher.

use std::fmt;

/// Errors returned by the fallible (`try_*`) core APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Parameter validation failed (see [`crate::EmsParams::validate`]).
    InvalidParams(String),
    /// A label matrix does not match the graphs' real node counts.
    LabelShapeMismatch {
        /// Label matrix rows.
        rows: usize,
        /// Label matrix columns.
        cols: usize,
        /// Real nodes of graph 1.
        n1: usize,
        /// Real nodes of graph 2.
        n2: usize,
    },
    /// A cached [`crate::substrate::EngineSubstrate`] does not fit the
    /// graphs/parameters it was asked to serve.
    SubstrateMismatch {
        /// What disagreed (shape, direction or damping constant).
        message: String,
    },
    /// A [`crate::session::LogHandle`] does not belong to the session.
    UnknownLog {
        /// The offending handle's index.
        handle: u32,
        /// Number of logs the session has ingested.
        logs: usize,
    },
    /// A durable snapshot's payload failed structural validation while
    /// being rehydrated (the envelope checksum passed, the content did
    /// not) — the entry must be quarantined and rebuilt from source.
    SnapshotDecode {
        /// What failed to decode.
        message: String,
    },
    /// A deterministic fault-injection plan fired a terminal fault at a
    /// pipeline stage boundary (chaos testing only; never in production).
    FaultInjected {
        /// The fault site's name.
        site: String,
        /// The fault kind's name.
        kind: String,
    },
    /// A [`crate::engine::Seed`] does not match the run's pair space.
    SeedShapeMismatch {
        /// Seed matrix rows.
        rows: usize,
        /// Seed matrix columns.
        cols: usize,
        /// Freeze mask length.
        mask: usize,
        /// Real nodes of graph 1.
        n1: usize,
        /// Real nodes of graph 2.
        n2: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParams(m) => write!(f, "invalid EMS parameters: {m}"),
            CoreError::LabelShapeMismatch { rows, cols, n1, n2 } => write!(
                f,
                "label matrix is {rows}x{cols} but the graphs have {n1}x{n2} real nodes"
            ),
            CoreError::SubstrateMismatch { message } => {
                write!(f, "cached substrate does not fit this run: {message}")
            }
            CoreError::UnknownLog { handle, logs } => {
                write!(
                    f,
                    "log handle {handle} is unknown (session has {logs} logs)"
                )
            }
            CoreError::SnapshotDecode { message } => {
                write!(f, "snapshot payload failed validation: {message}")
            }
            CoreError::FaultInjected { site, kind } => {
                write!(f, "injected {kind} fault at {site}")
            }
            CoreError::SeedShapeMismatch {
                rows,
                cols,
                mask,
                n1,
                n2,
            } => write!(
                f,
                "seed is {rows}x{cols} with a {mask}-pair freeze mask but the run is {n1}x{n2}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<CoreError> for ems_error::EmsError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::InvalidParams(message) => ems_error::EmsError::Params { message },
            e @ CoreError::SnapshotDecode { .. } => ems_error::EmsError::StoreCorrupt {
                path: String::new(),
                message: e.to_string(),
            },
            e @ CoreError::FaultInjected { .. } => ems_error::EmsError::Io {
                path: String::new(),
                message: e.to_string(),
            },
            e @ (CoreError::LabelShapeMismatch { .. }
            | CoreError::SeedShapeMismatch { .. }
            | CoreError::SubstrateMismatch { .. }
            | CoreError::UnknownLog { .. }) => ems_error::EmsError::Input {
                message: e.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_error::EmsError;

    #[test]
    fn display_and_conversion() {
        let e = CoreError::InvalidParams("c must be in (0,1)".into());
        assert!(e.to_string().contains("c must be in (0,1)"));
        assert!(matches!(EmsError::from(e), EmsError::Params { .. }));
        let e = CoreError::LabelShapeMismatch {
            rows: 2,
            cols: 3,
            n1: 4,
            n2: 5,
        };
        assert!(e.to_string().contains("2x3"));
        assert!(matches!(EmsError::from(e), EmsError::Input { .. }));
        let e = CoreError::SeedShapeMismatch {
            rows: 1,
            cols: 1,
            mask: 2,
            n1: 1,
            n2: 1,
        };
        assert!(e.to_string().contains("freeze mask"));
        assert!(matches!(EmsError::from(e), EmsError::Input { .. }));
    }
}
