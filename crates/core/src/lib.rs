#![forbid(unsafe_code)]
//! Event Matching Similarity (EMS) — the core contribution of *Matching
//! Heterogeneous Event Data* (SIGMOD 2014).
//!
//! EMS is a SimRank-style structural similarity between the events of two
//! heterogeneous event logs, built to survive **opaque names** (no usable
//! labels), **dislocated traces** (only parts of traces correspond) and
//! **composite events** (m:n correspondences):
//!
//! * [`engine`] — the iterative fixpoint computation of the forward/backward
//!   similarity of Definition 2 (formula (1)), with early-convergence pruning
//!   (Proposition 2) and per-pair freezing for composite-step reuse
//!   (Proposition 4);
//! * [`estimate`] — the closed-form geometric estimation of Section 3.5
//!   (Algorithm 1), trading accuracy for an `O(|V1||V2|)` similarity at
//!   `I = 0`;
//! * [`bounds`] — similarity upper bounds (Lemma 5, Proposition 6,
//!   Corollary 7) that let the composite matcher abort hopeless candidates;
//! * `matcher` — the user-facing [`Ems`] API aggregating forward and
//!   backward similarities (Section 3.6);
//! * [`session`] — the staged, reusable pipeline: a [`MatchSession`] interns
//!   labels once, caches dependency graphs and [`substrate`] products by
//!   content fingerprint, and warm-starts re-matches from prior fixpoints
//!   (Theorem 1);
//! * [`composite`] — SEQ-pattern candidate discovery and the greedy composite
//!   matcher of Algorithm 2 with both pruning techniques (Section 4);
//! * [`diagnostics`] — empirical estimation-error bounds, the investigation
//!   the paper's conclusion proposes as future work.
//!
//! # Quickstart
//!
//! ```
//! use ems_events::EventLog;
//! use ems_core::{Ems, EmsParams};
//!
//! let mut l1 = EventLog::new();
//! l1.push_trace(["Paid", "Check", "Ship"]);
//! l1.push_trace(["Paid", "Check", "Ship"]);
//! let mut l2 = EventLog::new();
//! // Same process, dislocated: an extra first step, opaque names.
//! l2.push_trace(["e0", "e1", "e2", "e3"]);
//!
//! let ems = Ems::new(EmsParams::structural());
//! let result = ems.match_logs(&l1, &l2);
//! let sim = &result.similarity;
//! // "Check" (2nd of 3) aligns best with "e2" (3rd of 4) structurally.
//! let check = l1.id_of("Check").unwrap().index();
//! assert!(sim.get(check, 2) >= sim.get(check, 1));
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod bounds;
pub mod composite;
pub mod diagnostics;
pub mod engine;
mod error;
pub mod estimate;
mod kernel;
mod matcher;
pub mod numeric;
mod params;
pub mod persist;
pub mod session;
pub mod shared;
mod sim;
mod sim_sparse;
mod stats;
pub mod substrate;

pub use engine::{Budget, PhaseTimes, RunOptions, RunStats, ThreadClamp};
pub use error::CoreError;
pub use matcher::{Ems, MatchOutcome};
pub use params::{Aggregation, Direction, EmsParams, LabelMeasure, LabelSpace};
pub use session::{LogHandle, MatchSession, SessionOptions, SessionStats};
pub use shared::{SharedSession, SharedStats};
pub use sim::SimMatrix;
pub use sim_sparse::{CsrError, SparseSim};
pub use substrate::EngineSubstrate;
