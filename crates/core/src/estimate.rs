//! Closed-form similarity estimation (Section 3.5, formula (2)).
//!
//! The derivation rewrites formula (1) by keeping the artificial-edge term
//! `C(v^X, v1, v^X, v2) · S(v^X, v^X)` exact, approximating every real
//! neighbor's compatibility by its maximum `c`, and substituting the pair's
//! own previous value for its neighbors' values. That turns the iteration
//! into the linear recurrence `S^n = q·S^{n-1} + a` with
//!
//! ```text
//! q = αc(2AB - A - B) / (2AB)
//! a = α(A + B) / (2AB) · C_x + (1 - α) S^L
//! ```
//!
//! where `A = |•v1|`, `B = |•v2|`, and `C_x` is the exact artificial-edge
//! compatibility. Unrolling from `I` exact iterations to the horizon `h`
//! gives `S_es^h = q^{h-I} S^I + a (1 - q^{h-I}) / (1 - q)`.

use crate::params::EmsParams;
use ems_depgraph::Distance;

/// The recurrence coefficients `(q, a)` for a pair with in-degrees
/// `a_deg`/`b_deg`, node frequencies `f1`/`f2` and label similarity `label`.
///
/// # Panics
/// If either degree is zero (the engine filters those out: a zero-frequency
/// node has no artificial edge and its similarity stays 0).
pub fn coefficients(
    a_deg: usize,
    b_deg: usize,
    f1: f64,
    f2: f64,
    label: f64,
    params: &EmsParams,
) -> (f64, f64) {
    assert!(a_deg > 0 && b_deg > 0, "estimation needs positive degrees");
    let (a_deg, b_deg) = (a_deg as f64, b_deg as f64);
    let alpha = params.alpha;
    let c = params.c;
    // Exact compatibility of the artificial edges (v^X, v1) and (v^X, v2):
    // their frequencies are the node frequencies.
    let cx = if f1 + f2 > 0.0 {
        c * (1.0 - (f1 - f2).abs() / (f1 + f2))
    } else {
        0.0
    };
    let q = alpha * c * (2.0 * a_deg * b_deg - a_deg - b_deg) / (2.0 * a_deg * b_deg);
    let a = alpha * (a_deg + b_deg) / (2.0 * a_deg * b_deg) * cx + (1.0 - alpha) * label;
    (q, a)
}

/// Extrapolates a pair's similarity from its exact value `s_i` after `i`
/// iterations to its horizon `h` (formula (2)); `h = ∞` takes the limit
/// `a / (1 - q)`.
///
/// When the previous iteration's value `s_prev` is available (`i ≥ 1`), the
/// additive constant is calibrated from the observed step instead of the
/// closed-form `a`: the recurrence `S^n = q S^{n-1} + a` implies
/// `a = S^I - q S^{I-1}`, which fits the *pair's own* trajectory — same `q`,
/// same unrolling as formula (2), but the constant no longer relies on the
/// crude all-neighbors-at-max-compatibility assumption. At `i = 0` there is
/// no observed step and the paper's closed-form `a` is used as is.
#[allow(clippy::too_many_arguments)]
pub fn extrapolate(
    s_i: f64,
    s_prev: Option<f64>,
    i: usize,
    h: Distance,
    a_deg: usize,
    b_deg: usize,
    f1: f64,
    f2: f64,
    label: f64,
    params: &EmsParams,
) -> f64 {
    let (q, a_closed) = coefficients(a_deg, b_deg, f1, f2, label, params);
    debug_assert!((0.0..1.0).contains(&q), "q must be in [0,1), got {q}");
    let a = match s_prev {
        Some(prev) if i >= 1 => {
            let raw = s_i - q * prev;
            if raw > 0.0 {
                raw
            } else {
                0.0
            }
        }
        _ => a_closed,
    };
    match h {
        Distance::Finite(h) => {
            let h = h as usize;
            if h <= i {
                return s_i; // already exact at the horizon
            }
            let qn = q.powi((h - i) as i32);
            qn * s_i + a * (1.0 - qn) / (1.0 - q)
        }
        Distance::Infinite => {
            // q < 1, so q^{h-I} -> 0 as h -> infinity.
            q.powi(32) * s_i + a * (1.0 - q.powi(32)) / (1.0 - q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EmsParams {
        EmsParams::structural()
    }

    /// Example 6: with I = 0 and α = 1, S_es¹(A,1) = C(v^X,A,v^X,1)·c... the
    /// paper evaluates the pair (A,1) with A = B = 1 (single predecessor
    /// v^X): q = 0 and a = C_x, so the estimate equals C_x — the exact S(A,1).
    #[test]
    fn example6_single_predecessor_pair_is_exact() {
        // f(A) = 0.4, f(1) = 1.0: C_x = 0.8 (1 - 0.6/1.4) = 0.45714...
        let est = extrapolate(
            0.0,
            None,
            0,
            Distance::Finite(1),
            1,
            1,
            0.4,
            1.0,
            0.0,
            &params(),
        );
        assert!((est - 0.45714285).abs() < 1e-6, "got {est}");
    }

    #[test]
    fn q_is_zero_for_degree_one_pairs() {
        let (q, a) = coefficients(1, 1, 0.5, 0.5, 0.0, &params());
        assert_eq!(q, 0.0);
        assert!((a - 0.8).abs() < 1e-12); // Cx = c when frequencies equal
    }

    #[test]
    fn q_grows_with_degrees_but_stays_below_alpha_c() {
        let (q2, _) = coefficients(2, 2, 1.0, 1.0, 0.0, &params());
        let (q5, _) = coefficients(5, 5, 1.0, 1.0, 0.0, &params());
        assert!(q2 < q5);
        assert!(q5 < 0.8);
        assert!(q2 > 0.0);
    }

    #[test]
    fn horizon_at_or_below_i_returns_exact_value() {
        let est = extrapolate(
            0.42,
            Some(0.40),
            5,
            Distance::Finite(3),
            3,
            3,
            1.0,
            1.0,
            0.0,
            &params(),
        );
        assert_eq!(est, 0.42);
    }

    #[test]
    fn infinite_horizon_uses_fixed_point() {
        let (q, a) = coefficients(3, 4, 1.0, 1.0, 0.0, &params());
        let est = extrapolate(
            0.1,
            None,
            2,
            Distance::Infinite,
            3,
            4,
            1.0,
            1.0,
            0.0,
            &params(),
        );
        // With no observed step the closed-form constant drives the limit.
        assert!((est - (q.powi(32) * 0.1 + a * (1.0 - q.powi(32)) / (1.0 - q))).abs() < 1e-12);
    }

    #[test]
    fn estimate_increases_toward_horizon() {
        // Starting below the fixed point, more remaining iterations
        // (larger h) must give larger estimates.
        let e = |h: u32| {
            extrapolate(
                0.0,
                None,
                0,
                Distance::Finite(h),
                3,
                3,
                1.0,
                1.0,
                0.0,
                &params(),
            )
        };
        assert!(e(1) < e(2));
        assert!(e(2) < e(10));
    }

    #[test]
    fn calibrated_constant_tracks_observed_growth() {
        // A pair that stopped growing extrapolates to (nearly) itself.
        let est = extrapolate(
            0.5,
            Some(0.5),
            4,
            Distance::Infinite,
            3,
            3,
            1.0,
            1.0,
            0.0,
            &params(),
        );
        assert!((est - 0.5).abs() < 0.01, "got {est}");
        // A still-growing pair extrapolates above its current value.
        let est = extrapolate(
            0.5,
            Some(0.4),
            4,
            Distance::Infinite,
            3,
            3,
            1.0,
            1.0,
            0.0,
            &params(),
        );
        assert!(est > 0.5, "got {est}");
    }

    #[test]
    fn labels_contribute_when_alpha_below_one() {
        let p = EmsParams::with_labels(0.5);
        let (_, a0) = coefficients(2, 2, 1.0, 1.0, 0.0, &p);
        let (_, a1) = coefficients(2, 2, 1.0, 1.0, 1.0, &p);
        assert!((a1 - a0 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive degrees")]
    fn zero_degree_panics() {
        let _ = coefficients(0, 1, 1.0, 1.0, 0.0, &params());
    }
}
