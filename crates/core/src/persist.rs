//! Binary payload codecs for durable catalog snapshots.
//!
//! The store layer (`ems-store`) handles envelopes — checksums, kinds,
//! keys, atomic commits — and treats payloads as opaque bytes. This
//! module is the other half: it encodes the pipeline's cacheable
//! artifacts (event logs, dependency graphs, engine substrates, label
//! matrices) into those payloads and rehydrates them with full
//! structural re-validation. Every decoder is bounds-checked and returns
//! [`CoreError::SnapshotDecode`] on any inconsistency — a corrupted
//! payload can cost a rebuild, never a panic and never a wrong answer.
//!
//! Determinism contract: `decode(encode(x))` reproduces `x` exactly —
//! graph decodes are checked against an embedded fingerprint, substrate
//! kernel tables are re-derived from the persisted CSR columns (bit-equal
//! inputs give bit-equal tables), and all floats travel as IEEE-754 bit
//! patterns, so a match served from disk scores byte-identically to one
//! served from memory.
//!
//! All integers are little-endian; lengths are `u64`.

use crate::error::CoreError;
use crate::params::{Direction, LabelSpace};
use crate::sim_sparse::SparseSim;
use crate::substrate::EngineSubstrate;
use ems_depgraph::{CsrParts, DependencyGraph, Distance, GraphSketch, NeighborCsr, VertexProfile};
use ems_events::{EventId, EventLog, Fnv1a, SymbolTable, Trace};
use ems_labels::LabelMatrix;

/// Version of the event-log payload codec.
pub const LOG_PAYLOAD_VERSION: u32 = 1;
/// Version of the dependency-graph payload codec.
pub const GRAPH_PAYLOAD_VERSION: u32 = 1;
/// Version of the engine-substrate payload codec.
pub const SUBSTRATE_PAYLOAD_VERSION: u32 = 1;
/// Version of the label-matrix payload codec.
pub const LABELS_PAYLOAD_VERSION: u32 = 1;
/// Version of the sparse-similarity payload codec.
pub const SPARSE_SIM_PAYLOAD_VERSION: u32 = 1;
/// Version of the graph-sketch payload codec. Version 2 added the exact
/// sorted label-hash set backing the sketch-level label bound.
pub const SKETCH_PAYLOAD_VERSION: u32 = 2;

// ---------------------------------------------------------------------
// Store keys
// ---------------------------------------------------------------------
//
// Each artifact kind derives its store key from the fingerprints and
// parameters that determine its content, domain-separated by a literal
// tag so e.g. a graph and a log of the same source can never collide.

/// Store key of an ingested log snapshot.
pub fn log_store_key(log_fingerprint: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"log");
    h.write_u64(log_fingerprint);
    h.finish()
}

/// Store key of a graph snapshot: the source log plus the edge filter.
pub fn graph_store_key(log_fingerprint: u64, min_frequency: f64) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"graph");
    h.write_u64(log_fingerprint);
    h.write_u64(min_frequency.to_bits());
    h.finish()
}

/// Store key of a substrate snapshot: both graph fingerprints, the
/// direction, and the damping constant.
pub fn substrate_store_key(fp1: u64, fp2: u64, direction: Direction, c: f64) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"substrate");
    h.write_u64(fp1);
    h.write_u64(fp2);
    h.write(&[direction_tag(direction)]);
    h.write_u64(c.to_bits());
    h.finish()
}

/// Store key of a label-matrix snapshot: both log fingerprints plus the
/// label space the parameters induce (which measure fills the matrix, or
/// the zero matrix at `alpha = 1`). [`LabelSpace::tag`] keeps the bytes of
/// the pre-measure-knob scheme for the structural and q-gram spaces, so
/// existing stores stay valid.
pub fn labels_store_key(log_fingerprint1: u64, log_fingerprint2: u64, space: LabelSpace) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"labels");
    h.write_u64(log_fingerprint1);
    h.write_u64(log_fingerprint2);
    h.write(&[space.tag()]);
    h.finish()
}

/// Store key of a converged similarity prior: both log fingerprints.
/// Orientation matters (`prior(a, b) ≠ prior(b, a)`), so the fingerprints
/// are hashed in order.
pub fn prior_store_key(log_fingerprint1: u64, log_fingerprint2: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"prior");
    h.write_u64(log_fingerprint1);
    h.write_u64(log_fingerprint2);
    h.finish()
}

/// Store key of a graph-sketch snapshot: the sketched graph's
/// fingerprint. The sketch is a pure function of the graph content, so
/// the graph fingerprint fully determines it.
pub fn sketch_store_key(graph_fingerprint: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"sketch");
    h.write_u64(graph_fingerprint);
    h.finish()
}

fn direction_tag(direction: Direction) -> u8 {
    match direction {
        Direction::Forward => 0,
        Direction::Backward => 1,
    }
}

fn direction_from_tag(tag: u8) -> Result<Direction, CoreError> {
    match tag {
        0 => Ok(Direction::Forward),
        1 => Ok(Direction::Backward),
        other => Err(decode_err(format!("unknown direction tag {other}"))),
    }
}

// ---------------------------------------------------------------------
// Primitive writer / bounds-checked reader
// ---------------------------------------------------------------------

fn decode_err(message: impl Into<String>) -> CoreError {
    CoreError::SnapshotDecode {
        message: message.into(),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, len: usize) {
    put_u64(out, len as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_distance(out: &mut Vec<u8>, d: Distance) {
    match d {
        Distance::Finite(v) => put_u64(out, u64::from(v)),
        Distance::Infinite => put_u64(out, u64::MAX),
    }
}

fn put_u32_slice(out: &mut Vec<u8>, vs: &[u32]) {
    put_len(out, vs.len());
    for &v in vs {
        put_u32(out, v);
    }
}

fn put_f64_slice(out: &mut Vec<u8>, vs: &[f64]) {
    put_len(out, vs.len());
    for &v in vs {
        put_f64(out, v);
    }
}

/// Cursor over a payload; every read is bounds-checked and every length
/// is sanity-checked against the remaining bytes before allocation.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.remaining() < n {
            return Err(decode_err(format!(
                "payload truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, CoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length prefix, validated against the minimum bytes each of its
    /// items must still occupy — rejects absurd lengths before allocating.
    fn len(&mut self, item_bytes: usize) -> Result<usize, CoreError> {
        let len = self.u64()?;
        let len =
            usize::try_from(len).map_err(|_| decode_err(format!("length {len} overflows")))?;
        if len.saturating_mul(item_bytes) > self.remaining() {
            return Err(decode_err(format!(
                "declared length {len} exceeds remaining payload"
            )));
        }
        Ok(len)
    }

    fn str(&mut self) -> Result<&'a str, CoreError> {
        let len = self.len(1)?;
        std::str::from_utf8(self.take(len)?).map_err(|e| decode_err(format!("invalid UTF-8: {e}")))
    }

    fn distance(&mut self) -> Result<Distance, CoreError> {
        let raw = self.u64()?;
        if raw == u64::MAX {
            Ok(Distance::Infinite)
        } else {
            let v = u32::try_from(raw)
                .map_err(|_| decode_err(format!("distance {raw} overflows u32")))?;
            Ok(Distance::Finite(v))
        }
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, CoreError> {
        let len = self.len(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, CoreError> {
        let len = self.len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), CoreError> {
        if self.pos != self.bytes.len() {
            return Err(decode_err(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Event logs
// ---------------------------------------------------------------------

/// Encodes an event log: optional name, the full alphabet in id order
/// (ghost entries — interned but never occurring — included), and every
/// trace as a sequence of event ids.
pub fn encode_log(log: &EventLog) -> Vec<u8> {
    let mut out = Vec::new();
    match log.name() {
        Some(name) => {
            out.push(1);
            put_str(&mut out, name);
        }
        None => out.push(0),
    }
    let n = log.alphabet_size();
    put_len(&mut out, n);
    for i in 0..n {
        put_str(&mut out, log.name_of(EventId::from_index(i)));
    }
    put_len(&mut out, log.num_traces());
    for trace in log.traces() {
        put_len(&mut out, trace.len());
        for &id in trace.events() {
            put_u32(&mut out, id.0);
        }
    }
    out
}

/// Decodes an event log, validating alphabet references.
pub fn decode_log(bytes: &[u8]) -> Result<EventLog, CoreError> {
    let mut r = Reader::new(bytes);
    let mut log = match r.u8()? {
        0 => EventLog::new(),
        1 => EventLog::with_name(r.str()?),
        other => return Err(decode_err(format!("bad log name flag {other}"))),
    };
    let n = r.len(8)?;
    for i in 0..n {
        let name = r.str()?;
        let id = log.intern(name);
        if id.index() != i {
            return Err(decode_err(format!(
                "duplicate alphabet entry {name:?} at index {i}"
            )));
        }
    }
    let traces = r.len(8)?;
    for _ in 0..traces {
        let len = r.len(4)?;
        let mut ids = Vec::with_capacity(len);
        for _ in 0..len {
            let id = r.u32()?;
            if id as usize >= n {
                return Err(decode_err(format!(
                    "trace references event id {id}, alphabet has {n} entries"
                )));
            }
            ids.push(EventId(id));
        }
        log.push_trace_ids(Trace::from_ids(ids));
    }
    r.finish()?;
    Ok(log)
}

// ---------------------------------------------------------------------
// Dependency graphs
// ---------------------------------------------------------------------

/// Encodes a graph as its construction parts — names, node frequencies,
/// real edges — plus its content fingerprint. Artificial edges are not
/// persisted; `from_parts` re-derives them, and the embedded fingerprint
/// (which covers the full adjacency) proves the re-derivation exact.
pub fn encode_graph(g: &DependencyGraph) -> Vec<u8> {
    let mut out = Vec::new();
    let n = g.num_real();
    put_len(&mut out, n);
    for v in g.real_nodes() {
        put_str(&mut out, g.name(v));
        put_f64(&mut out, g.node_frequency(v));
    }
    let edges = g.real_edges();
    put_len(&mut out, edges.len());
    for (a, b, f) in edges {
        put_u32(&mut out, a.0);
        put_u32(&mut out, b.0);
        put_f64(&mut out, f);
    }
    put_u64(&mut out, g.fingerprint());
    out
}

/// Decodes a graph, interning labels into the shared session `table`,
/// and verifies the rebuilt graph's fingerprint against the embedded one
/// — any silent divergence between codec and constructor is caught here.
pub fn decode_graph_in(
    bytes: &[u8],
    table: &mut SymbolTable,
) -> Result<DependencyGraph, CoreError> {
    let mut r = Reader::new(bytes);
    let n = r.len(16)?;
    let mut names = Vec::with_capacity(n);
    let mut freqs = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(r.str()?.to_owned());
        freqs.push(r.f64()?);
    }
    let num_edges = r.len(16)?;
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let a = r.u32()? as usize;
        let b = r.u32()? as usize;
        let f = r.f64()?;
        edges.push((a, b, f));
    }
    let expected_fingerprint = r.u64()?;
    r.finish()?;
    let g = DependencyGraph::try_from_parts_in(names, freqs, &edges, table)
        .map_err(|e| decode_err(format!("graph parts rejected: {e}")))?;
    let actual = g.fingerprint();
    if actual != expected_fingerprint {
        return Err(decode_err(format!(
            "graph fingerprint mismatch: rebuilt {actual:016x}, snapshot says {expected_fingerprint:016x}"
        )));
    }
    Ok(g)
}

// ---------------------------------------------------------------------
// Engine substrates
// ---------------------------------------------------------------------

/// Encodes a substrate as its direction, damping constant, shape, longest
/// distances, and the two direction-resolved CSR exports. The kernel's
/// compatibility tables are *not* persisted: they are pure functions of
/// the CSRs and `c`, re-derived bit-identically on decode.
pub fn encode_substrate(sub: &EngineSubstrate) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(direction_tag(sub.direction()));
    put_f64(&mut out, sub.c());
    put_len(&mut out, sub.rows());
    put_len(&mut out, sub.cols());
    put_len(&mut out, sub.l1.len());
    for &d in &sub.l1 {
        put_distance(&mut out, d);
    }
    put_len(&mut out, sub.l2.len());
    for &d in &sub.l2 {
        put_distance(&mut out, d);
    }
    let (csr1, csr2) = sub.ctx.csrs();
    for csr in [csr1, csr2] {
        let parts = csr.to_parts();
        put_u32_slice(&mut out, &parts.off);
        put_u32_slice(&mut out, &parts.ent_lane);
        put_u32_slice(&mut out, &parts.lane_off);
        put_u32_slice(&mut out, &parts.lane_src);
        put_f64_slice(&mut out, &parts.lane_freq);
        put_f64_slice(&mut out, &parts.art_freq);
    }
    out
}

fn read_csr(r: &mut Reader<'_>) -> Result<NeighborCsr, CoreError> {
    let parts = CsrParts {
        off: r.u32_vec()?,
        ent_lane: r.u32_vec()?,
        lane_off: r.u32_vec()?,
        lane_src: r.u32_vec()?,
        lane_freq: r.f64_vec()?,
        art_freq: r.f64_vec()?,
    };
    NeighborCsr::try_from_parts(parts).map_err(|e| decode_err(e.to_string()))
}

/// Decodes a substrate and cross-checks it against the direction and
/// damping constant the caller expects to serve.
pub fn decode_substrate(
    bytes: &[u8],
    expected_direction: Direction,
    expected_c: f64,
) -> Result<EngineSubstrate, CoreError> {
    let mut r = Reader::new(bytes);
    let direction = direction_from_tag(r.u8()?)?;
    let c = r.f64()?;
    if direction != expected_direction {
        return Err(decode_err(format!(
            "substrate direction {direction:?} does not match requested {expected_direction:?}"
        )));
    }
    if c.to_bits() != expected_c.to_bits() {
        return Err(decode_err(format!(
            "substrate damping constant {c} does not match requested {expected_c}"
        )));
    }
    let n1 = r.len(1)?;
    let n2 = r.len(1)?;
    let l1_len = r.len(8)?;
    let mut l1 = Vec::with_capacity(l1_len);
    for _ in 0..l1_len {
        l1.push(r.distance()?);
    }
    let l2_len = r.len(8)?;
    let mut l2 = Vec::with_capacity(l2_len);
    for _ in 0..l2_len {
        l2.push(r.distance()?);
    }
    let csr1 = read_csr(&mut r)?;
    let csr2 = read_csr(&mut r)?;
    r.finish()?;
    EngineSubstrate::from_saved_parts(direction, c, n1, n2, l1, l2, csr1, csr2)
}

// ---------------------------------------------------------------------
// Label matrices
// ---------------------------------------------------------------------

/// Encodes a label matrix: shape plus row-major IEEE-754 bit patterns.
pub fn encode_labels(m: &LabelMatrix) -> Vec<u8> {
    let mut out = Vec::new();
    put_len(&mut out, m.rows());
    put_len(&mut out, m.cols());
    put_f64_slice(&mut out, m.data());
    out
}

/// Decodes a label matrix, validating shape consistency.
pub fn decode_labels(bytes: &[u8]) -> Result<LabelMatrix, CoreError> {
    let mut r = Reader::new(bytes);
    let rows = r.len(1)?;
    let cols = r.len(1)?;
    let data = r.f64_vec()?;
    r.finish()?;
    LabelMatrix::try_from_raw(rows, cols, data).map_err(|e| decode_err(e.to_string()))
}

// ---------------------------------------------------------------------
// Sparse similarity matrices
// ---------------------------------------------------------------------

/// Encodes a sparse similarity matrix: shape plus raw CSR columns. Values
/// travel as IEEE-754 bit patterns, so a δ=0 snapshot of a converged
/// matrix rehydrates bit-identically.
pub fn encode_sparse_sim(m: &SparseSim) -> Vec<u8> {
    let (rows, cols, row_off, col_idx, vals) = m.parts();
    let mut out = Vec::new();
    put_len(&mut out, rows);
    put_len(&mut out, cols);
    put_len(&mut out, row_off.len());
    for &o in row_off {
        put_u64(&mut out, o as u64);
    }
    put_u32_slice(&mut out, col_idx);
    put_f64_slice(&mut out, vals);
    out
}

/// Decodes a sparse similarity matrix, re-validating every CSR invariant
/// (offset monotonicity, column bounds and per-row ordering) — a corrupted
/// payload is rejected, never served.
pub fn decode_sparse_sim(bytes: &[u8]) -> Result<SparseSim, CoreError> {
    let mut r = Reader::new(bytes);
    let rows = r.len(1)?;
    let cols = r.len(1)?;
    let off_len = r.len(8)?;
    let mut row_off = Vec::with_capacity(off_len);
    for _ in 0..off_len {
        let o = r.u64()?;
        let o = usize::try_from(o).map_err(|_| decode_err(format!("offset {o} overflows")))?;
        row_off.push(o);
    }
    let col_idx = r.u32_vec()?;
    let vals = r.f64_vec()?;
    r.finish()?;
    SparseSim::from_parts(rows, cols, row_off, col_idx, vals)
        .map_err(|e| decode_err(format!("sparse similarity CSR rejected: {e}")))
}

// ---------------------------------------------------------------------
// Graph sketches
// ---------------------------------------------------------------------

/// Encodes a graph sketch: identity header, frequency class table,
/// deduplicated vertex profiles with multiplicities, minhash lanes, and
/// the sorted set of exact label hashes (payload version 2).
pub fn encode_sketch(sketch: &GraphSketch) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, sketch.fingerprint());
    put_u32(&mut out, sketch.num_real() as u32);
    put_u64(&mut out, sketch.num_edges());
    put_f64_slice(&mut out, sketch.classes());
    put_len(&mut out, sketch.profiles().len());
    for p in sketch.profiles() {
        put_u32(&mut out, p.freq_class);
        put_u32_slice(&mut out, &p.pre_classes);
        put_u32_slice(&mut out, &p.post_classes);
    }
    put_u32_slice(&mut out, sketch.counts());
    put_len(&mut out, sketch.minhash().len());
    for &lane in sketch.minhash() {
        put_u64(&mut out, lane);
    }
    put_len(&mut out, sketch.label_hashes().len());
    for &h in sketch.label_hashes() {
        put_u64(&mut out, h);
    }
    out
}

/// Decodes a graph sketch, re-validating every structural invariant via
/// [`GraphSketch::try_from_parts`] — a corrupted payload is rejected,
/// never served into pruning decisions.
pub fn decode_sketch(bytes: &[u8]) -> Result<GraphSketch, CoreError> {
    let mut r = Reader::new(bytes);
    let fingerprint = r.u64()?;
    let num_real = r.u32()?;
    let num_edges = r.u64()?;
    let classes = r.f64_vec()?;
    let num_profiles = r.len(12)?;
    let mut profiles = Vec::with_capacity(num_profiles);
    for _ in 0..num_profiles {
        let freq_class = r.u32()?;
        let pre_classes = r.u32_vec()?;
        let post_classes = r.u32_vec()?;
        profiles.push(VertexProfile {
            freq_class,
            pre_classes,
            post_classes,
        });
    }
    let counts = r.u32_vec()?;
    let lanes = r.len(8)?;
    let mut minhash = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        minhash.push(r.u64()?);
    }
    let num_hashes = r.len(8)?;
    let mut label_hashes = Vec::with_capacity(num_hashes);
    for _ in 0..num_hashes {
        label_hashes.push(r.u64()?);
    }
    r.finish()?;
    GraphSketch::try_from_parts(
        fingerprint,
        num_real,
        num_edges,
        classes,
        profiles,
        counts,
        minhash,
        label_hashes,
    )
    .map_err(|e| decode_err(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EmsParams;
    use crate::sim::SimMatrix;
    use ems_events::fingerprint_log;

    fn sample_log() -> EventLog {
        let mut log = EventLog::with_name("sample");
        let _ghost = log.intern("ghost");
        log.push_trace(["A", "C", "D", "E"]);
        log.push_trace(["B", "C", "D"]);
        log.push_trace(["A", "C", "E"]);
        log
    }

    #[test]
    fn log_round_trips_with_fingerprint() {
        let log = sample_log();
        let decoded = decode_log(&encode_log(&log)).unwrap();
        assert_eq!(decoded.name(), Some("sample"));
        assert_eq!(decoded.alphabet_size(), log.alphabet_size());
        assert_eq!(decoded.num_traces(), log.num_traces());
        assert_eq!(fingerprint_log(&decoded), fingerprint_log(&log));
        // Ghost alphabet entries survive.
        assert!(decoded.id_of("ghost").is_some());

        let unnamed = {
            let mut l = EventLog::new();
            l.push_trace(["x"]);
            l
        };
        let decoded = decode_log(&encode_log(&unnamed)).unwrap();
        assert_eq!(decoded.name(), None);
        assert_eq!(fingerprint_log(&decoded), fingerprint_log(&unnamed));
    }

    #[test]
    fn graph_round_trips_bit_identically() {
        let g = DependencyGraph::from_log(&sample_log());
        let mut table = SymbolTable::new();
        table.intern("session-noise");
        let decoded = decode_graph_in(&encode_graph(&g), &mut table).unwrap();
        assert_eq!(decoded, g);
        assert_eq!(decoded.fingerprint(), g.fingerprint());
    }

    #[test]
    fn graph_decode_rejects_fingerprint_mismatch() {
        let g = DependencyGraph::from_log(&sample_log());
        let mut bytes = encode_graph(&g);
        // The fingerprint is the trailing u64.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = decode_graph_in(&bytes, &mut SymbolTable::new()).unwrap_err();
        assert!(matches!(err, CoreError::SnapshotDecode { .. }), "{err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn substrate_round_trips_to_identical_bytes() {
        let log1 = sample_log();
        let mut log2 = EventLog::new();
        log2.push_trace(["e0", "e1", "e2"]);
        log2.push_trace(["e0", "e2"]);
        let g1 = DependencyGraph::from_log(&log1);
        let g2 = DependencyGraph::from_log(&log2);
        let params = EmsParams::structural();
        for direction in [Direction::Forward, Direction::Backward] {
            let sub = EngineSubstrate::build(&g1, &g2, direction, params.c);
            let bytes = encode_substrate(&sub);
            let decoded = decode_substrate(&bytes, direction, params.c).unwrap();
            assert_eq!(decoded.direction(), direction);
            assert_eq!(decoded.rows(), sub.rows());
            assert_eq!(decoded.cols(), sub.cols());
            // Re-encoding the rehydrated substrate must be byte-identical:
            // distances, CSR columns, and the re-derived kernel inputs all
            // round-trip exactly.
            assert_eq!(encode_substrate(&decoded), bytes);
        }
    }

    #[test]
    fn substrate_decode_rejects_wrong_parameters() {
        let g = DependencyGraph::from_log(&sample_log());
        let sub = EngineSubstrate::build(&g, &g, Direction::Forward, 0.8);
        let bytes = encode_substrate(&sub);
        assert!(decode_substrate(&bytes, Direction::Backward, 0.8).is_err());
        assert!(decode_substrate(&bytes, Direction::Forward, 0.7).is_err());
        assert!(decode_substrate(&bytes, Direction::Forward, 0.8).is_ok());
    }

    #[test]
    fn labels_round_trip() {
        let m = LabelMatrix::from_raw(2, 3, vec![0.0, 0.5, 1.0, 0.25, 0.125, 0.75]);
        let decoded = decode_labels(&encode_labels(&m)).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn truncated_payloads_error_without_panicking() {
        let log_bytes = encode_log(&sample_log());
        let g = DependencyGraph::from_log(&sample_log());
        let graph_bytes = encode_graph(&g);
        let sub_bytes = encode_substrate(&EngineSubstrate::build(&g, &g, Direction::Forward, 0.8));
        let label_bytes = encode_labels(&LabelMatrix::zeros(2, 2));
        for n in 0..log_bytes.len() {
            assert!(decode_log(&log_bytes[..n]).is_err());
        }
        for n in 0..graph_bytes.len() {
            assert!(decode_graph_in(&graph_bytes[..n], &mut SymbolTable::new()).is_err());
        }
        for n in (0..sub_bytes.len()).step_by(7) {
            assert!(decode_substrate(&sub_bytes[..n], Direction::Forward, 0.8).is_err());
        }
        for n in 0..label_bytes.len() {
            assert!(decode_labels(&label_bytes[..n]).is_err());
        }
    }

    #[test]
    fn sparse_sim_round_trips_bit_identically() {
        let dense = SimMatrix::from_raw(
            3,
            4,
            vec![
                0.9, 0.0, 0.004, 0.5, //
                0.0, 0.02, 0.0, 0.0, //
                0.1, 0.0, 0.0, 0.7,
            ],
        );
        for delta in [0.0, 0.05] {
            let sparse = SparseSim::from_dense(&dense, delta);
            let bytes = encode_sparse_sim(&sparse);
            let decoded = decode_sparse_sim(&bytes).unwrap();
            assert_eq!(decoded, sparse);
            assert_eq!(encode_sparse_sim(&decoded), bytes);
        }
        // δ=0 survives the full dense → sparse → bytes → sparse → dense
        // trip bit-for-bit.
        let back = decode_sparse_sim(&encode_sparse_sim(&SparseSim::from_dense(&dense, 0.0)))
            .unwrap()
            .to_dense();
        for (a, b) in dense.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sparse_sim_decode_rejects_corruption() {
        let dense = SimMatrix::from_raw(2, 2, vec![0.5, 0.0, 0.25, 1.0]);
        let bytes = encode_sparse_sim(&SparseSim::from_dense(&dense, 0.0));
        for n in 0..bytes.len() {
            assert!(decode_sparse_sim(&bytes[..n]).is_err());
        }
        // Flip a column id out of range: CSR validation must catch it.
        let mut bad = bytes.clone();
        // Layout: rows u64, cols u64, off_len u64, 3 offsets, col-idx len
        // u64, then the first u32 column id.
        let col0 = 8 * 6 + 8;
        bad[col0] = 0xEE;
        assert!(decode_sparse_sim(&bad).is_err());
    }

    #[test]
    fn sketch_round_trips_and_rejects_corruption() {
        let g = DependencyGraph::from_log(&sample_log());
        let sketch = GraphSketch::of(&g);
        let bytes = encode_sketch(&sketch);
        let decoded = decode_sketch(&bytes).unwrap();
        assert_eq!(decoded, sketch);
        assert_eq!(encode_sketch(&decoded), bytes);
        for n in 0..bytes.len() {
            assert!(decode_sketch(&bytes[..n]).is_err());
        }
        // Flip the vertex count: the multiplicity-sum invariant must
        // catch it (bytes 8..12 hold num_real).
        let mut bad = bytes.clone();
        bad[8] ^= 0x01;
        assert!(decode_sketch(&bad).is_err());
    }

    #[test]
    fn store_keys_are_domain_separated() {
        let keys = [
            log_store_key(1),
            graph_store_key(1, 0.0),
            graph_store_key(1, 0.5),
            substrate_store_key(1, 2, Direction::Forward, 0.8),
            substrate_store_key(1, 2, Direction::Backward, 0.8),
            substrate_store_key(2, 1, Direction::Forward, 0.8),
            labels_store_key(1, 2, LabelSpace::QgramCosine),
            labels_store_key(1, 2, LabelSpace::ExactName),
            labels_store_key(1, 2, LabelSpace::Structural),
            prior_store_key(1, 2),
            prior_store_key(2, 1),
            sketch_store_key(1),
            sketch_store_key(2),
        ];
        let mut dedup = keys.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "store keys collide: {keys:?}");
        assert_eq!(log_store_key(1), log_store_key(1));
    }
}
