//! Similarity upper bounds (Lemma 5, Proposition 6, Corollary 7) used by the
//! composite matcher to abort candidates that can no longer win.
//!
//! Lemma 5 bounds the per-iteration growth: `S^n - S^{n-1} ≤ (αc)^n`.
//! Summing the geometric tail gives Proposition 6's general bound
//! `S ≤ S^k + (αc)^k / (1 - αc)`, and Corollary 7 tightens it for pairs
//! whose convergence horizon `h = min(l(v1), l(v2))` is finite:
//! `S ≤ S^k + ((αc)^k - (αc)^h) / (1 - αc)`.

use ems_depgraph::Distance;

/// The general upper bound of Proposition 6: the limit similarity of a pair
/// whose value after `k` iterations is `s_k`, under decay `αc`.
///
/// Clamped to `[s_k, 1]` — similarities never exceed 1.
pub fn general_upper_bound(s_k: f64, k: usize, alpha: f64, c: f64) -> f64 {
    let ac = alpha * c;
    if ac >= 1.0 {
        return 1.0; // degenerate parameters: only the trivial bound holds
    }
    let bound = s_k + ac.powi(k as i32) / (1.0 - ac);
    if bound > 1.0 {
        1.0
    } else {
        bound
    }
}

/// The horizon-aware bound of Corollary 7 for a pair with finite convergence
/// horizon `h ≥ k`; for `h ≤ k` the pair has converged and the bound is
/// `s_k` itself.
pub fn horizon_upper_bound(s_k: f64, k: usize, h: u32, alpha: f64, c: f64) -> f64 {
    let h = h as usize;
    if h <= k {
        return s_k;
    }
    let ac = alpha * c;
    if ac >= 1.0 {
        return 1.0;
    }
    let bound = s_k + (ac.powi(k as i32) - ac.powi(h as i32)) / (1.0 - ac);
    if bound > 1.0 {
        1.0
    } else {
        bound
    }
}

/// Dispatches to the tightest applicable bound for a pair with horizon `h`.
pub fn pair_upper_bound(s_k: f64, k: usize, h: Distance, alpha: f64, c: f64) -> f64 {
    match h {
        Distance::Finite(h) => horizon_upper_bound(s_k, k, h, alpha, c),
        Distance::Infinite => general_upper_bound(s_k, k, alpha, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_bound_decreases_with_k() {
        // With αc = 0.4 the geometric tail is below the clamp.
        let b1 = general_upper_bound(0.3, 1, 0.5, 0.8);
        let b5 = general_upper_bound(0.3, 5, 0.5, 0.8);
        assert!(b5 < b1, "b5={b5} b1={b1}");
        assert!(b5 >= 0.3);
    }

    #[test]
    fn general_bound_is_never_above_one() {
        assert_eq!(general_upper_bound(0.9, 0, 1.0, 0.8), 1.0);
        assert!(general_upper_bound(0.1, 10, 1.0, 0.8) <= 1.0);
    }

    #[test]
    fn horizon_bound_tightens_general() {
        let general = general_upper_bound(0.3, 2, 1.0, 0.8);
        let horizon = horizon_upper_bound(0.3, 2, 5, 1.0, 0.8);
        assert!(horizon <= general);
        assert!(horizon >= 0.3);
    }

    #[test]
    fn converged_pair_bound_is_its_value() {
        assert_eq!(horizon_upper_bound(0.42, 7, 5, 1.0, 0.8), 0.42);
        assert_eq!(horizon_upper_bound(0.42, 5, 5, 1.0, 0.8), 0.42);
    }

    #[test]
    fn dispatch_matches_variants() {
        let s = 0.2;
        assert_eq!(
            pair_upper_bound(s, 3, Distance::Infinite, 1.0, 0.8),
            general_upper_bound(s, 3, 1.0, 0.8)
        );
        assert_eq!(
            pair_upper_bound(s, 3, Distance::Finite(9), 1.0, 0.8),
            horizon_upper_bound(s, 3, 9, 1.0, 0.8)
        );
    }

    #[test]
    fn lemma5_growth_bound_holds_empirically() {
        // Check S^n - S^{n-1} <= (αc)^n on the Figure 2 graphs.
        use crate::engine::{Engine, RunOptions};
        use crate::params::{Direction, EmsParams};
        use ems_depgraph::DependencyGraph;
        use ems_labels::LabelMatrix;
        let g1 = DependencyGraph::from_parts(
            vec!["A".into(), "B".into(), "C".into()],
            vec![0.4, 0.6, 1.0],
            &[(0, 2, 0.4), (1, 2, 0.6)],
        );
        let g2 = DependencyGraph::from_parts(
            vec!["1".into(), "2".into(), "3".into()],
            vec![1.0, 0.4, 0.6],
            &[(0, 1, 0.4), (0, 2, 0.6)],
        );
        let labels = LabelMatrix::zeros(3, 3);
        let mut prev = crate::sim::SimMatrix::zeros(3, 3);
        for n in 1..=5usize {
            let mut params = EmsParams::structural().without_pruning();
            params.max_iterations = n;
            params.epsilon = 1e-12;
            let out = Engine::new(&g1, &g2, &labels, &params, Direction::Forward)
                .run(&RunOptions::default());
            let bound = 0.8f64.powi(n as i32);
            for v1 in 0..3 {
                for v2 in 0..3 {
                    let growth = out.sim.get(v1, v2) - prev.get(v1, v2);
                    assert!(
                        growth <= bound + 1e-9,
                        "iteration {n}: growth {growth} > bound {bound}"
                    );
                }
            }
            prev = out.sim;
        }
    }
}
