//! Estimation-error diagnostics — the paper's stated future work.
//!
//! Section 7 closes with: *"thus far, we do not get any theoretical bound of
//! estimation. It is interesting to investigate the bound of estimation as a
//! future study."* This module provides the empirical instrumentation for
//! that investigation: per-pair signed errors of the Section-3.5 estimation
//! against the exact fixpoint, aggregated over a sweep of exact-iteration
//! counts `I`, together with the fitted constant of a geometric error model
//! `|error| ≤ K · (αc)^I` — the natural candidate bound, since the exact
//! iteration's own tail is geometric (Lemma 5).

use crate::engine::{Engine, RunOptions};
use crate::matcher::Ems;
use crate::params::{Direction, EmsParams};
use crate::sim::SimMatrix;
use ems_depgraph::DependencyGraph;
use ems_labels::LabelMatrix;

/// Error statistics of one estimation configuration against the exact
/// fixpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimationReport {
    /// The number of exact iterations `I` the estimation ran.
    pub exact_iterations: usize,
    /// Largest absolute per-pair error.
    pub max_error: f64,
    /// Mean absolute error over all pairs.
    pub mean_error: f64,
    /// Root-mean-square error over all pairs.
    pub rmse: f64,
    /// Fraction of pairs whose estimate agrees with the exact value up to
    /// the configured convergence threshold `epsilon` (both computations
    /// stop at that resolution, so agreement below it is indistinguishable
    /// from exactness).
    pub exact_fraction: f64,
    /// Largest *positive* error (over-estimation) — relevant because the
    /// exact iteration only grows (Theorem 1), so over-estimation is the
    /// estimation model's own contribution.
    pub max_overestimate: f64,
    /// Largest *negative* error (under-estimation).
    pub max_underestimate: f64,
    /// The fitted constant `K` of the geometric model `|err| ≤ K · (αc)^I`
    /// for this `I` (i.e. `max_error / (αc)^I`).
    pub geometric_constant: f64,
}

/// Computes the per-pair signed error matrix (estimate − exact) of the
/// estimation with `i` exact iterations, in one direction.
pub fn estimation_error_matrix(
    g1: &DependencyGraph,
    g2: &DependencyGraph,
    labels: &LabelMatrix,
    base: &EmsParams,
    i: usize,
    direction: Direction,
) -> SimMatrix {
    let mut exact_params = base.clone();
    exact_params.estimate_after = None;
    let mut est_params = base.clone();
    est_params.estimate_after = Some(i);
    let exact = Engine::new(g1, g2, labels, &exact_params, direction)
        .run(&RunOptions::default())
        .sim;
    let est = Engine::new(g1, g2, labels, &est_params, direction)
        .run(&RunOptions::default())
        .sim;
    let mut out = SimMatrix::zeros(exact.rows(), exact.cols());
    for (r, c, v) in est.iter() {
        out.set(r, c, v - exact.get(r, c));
    }
    out
}

/// Sweeps `i_values` and reports the aggregated error statistics of the
/// combined (forward+backward averaged) estimation against the exact EMS.
pub fn estimation_sweep(
    l1: &ems_events::EventLog,
    l2: &ems_events::EventLog,
    base: &EmsParams,
    i_values: &[usize],
) -> Vec<EstimationReport> {
    let mut exact_params = base.clone();
    exact_params.estimate_after = None;
    let exact = Ems::new(exact_params).match_logs(l1, l2).similarity;
    let ac = base.alpha * base.c;
    i_values
        .iter()
        .map(|&i| {
            let mut est_params = base.clone();
            est_params.estimate_after = Some(i);
            let est = Ems::new(est_params).match_logs(l1, l2).similarity;
            let mut max_error = 0.0f64;
            let mut max_over = 0.0f64;
            let mut max_under = 0.0f64;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            let mut exact_count = 0usize;
            let mut n = 0usize;
            for (r, c, v) in est.iter() {
                let err = v - exact.get(r, c);
                max_error = max_error.max(err.abs());
                max_over = max_over.max(err);
                max_under = max_under.max(-err);
                sum += err.abs();
                sum_sq += err * err;
                if err.abs() < base.epsilon {
                    exact_count += 1;
                }
                n += 1;
            }
            let n = n.max(1) as f64;
            EstimationReport {
                exact_iterations: i,
                max_error,
                mean_error: sum / n,
                rmse: (sum_sq / n).sqrt(),
                exact_fraction: exact_count as f64 / n,
                max_overestimate: max_over,
                max_underestimate: max_under,
                geometric_constant: if ac > 0.0 && ac < 1.0 {
                    max_error / ac.powi(i as i32)
                } else {
                    f64::NAN
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn logs() -> (EventLog, EventLog) {
        let mut l1 = EventLog::new();
        for _ in 0..2 {
            l1.push_trace(["a", "b", "c", "d", "e"]);
        }
        for _ in 0..3 {
            l1.push_trace(["a", "b", "c", "e", "d"]);
        }
        let mut l2 = EventLog::new();
        for _ in 0..2 {
            l2.push_trace(["u", "v", "w", "x", "y"]);
        }
        for _ in 0..3 {
            l2.push_trace(["u", "v", "w", "y", "x"]);
        }
        (l1, l2)
    }

    #[test]
    fn error_shrinks_with_more_exact_iterations() {
        let (l1, l2) = logs();
        let reports = estimation_sweep(&l1, &l2, &EmsParams::structural(), &[0, 2, 5, 10]);
        assert_eq!(reports.len(), 4);
        // Mean error at I=10 must not exceed mean error at I=0.
        assert!(reports[3].mean_error <= reports[0].mean_error + 1e-12);
        // Large I: most pairs exact.
        assert!(reports[3].exact_fraction > 0.8, "{:?}", reports[3]);
    }

    #[test]
    fn signed_error_matrix_matches_sweep_max() {
        let (l1, l2) = logs();
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
        let errs = estimation_error_matrix(
            &g1,
            &g2,
            &labels,
            &EmsParams::structural(),
            0,
            Direction::Forward,
        );
        let max = errs.iter().map(|(_, _, v)| v.abs()).fold(0.0, f64::max);
        assert!(max < 1.0);
        assert_eq!(errs.rows(), g1.num_real());
    }

    #[test]
    fn reports_carry_consistent_aggregates() {
        let (l1, l2) = logs();
        let reports = estimation_sweep(&l1, &l2, &EmsParams::structural(), &[1]);
        let r = &reports[0];
        assert!(r.mean_error <= r.max_error + 1e-12);
        assert!(r.rmse <= r.max_error + 1e-12);
        assert!(r.mean_error <= r.rmse + 1e-12); // AM-QM inequality
        assert!(r.max_error <= r.max_overestimate.max(r.max_underestimate) + 1e-12);
        assert!((0.0..=1.0).contains(&r.exact_fraction));
        assert!(r.geometric_constant.is_finite());
    }
}
