//! SEQ-pattern discovery of composite-event candidates.
//!
//! The paper obtains candidates "by grouping singleton events that always
//! appear consecutively, following the convention of SEQ pattern in CEP".
//! [`discover_candidates`] finds maximal runs of events that (nearly) always
//! occur as an uninterrupted sequence and emits every contiguous sub-run as
//! a candidate.

use ems_events::{EventId, EventLog};
use std::collections::BTreeMap;

/// A composite-event candidate: an ordered run of singleton events that may
/// be merged into one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The original (singleton) event names, in sequence order.
    pub parts: Vec<String>,
}

impl Candidate {
    /// Creates a candidate from part names.
    pub fn new<I, S>(parts: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let parts: Vec<String> = parts.into_iter().map(Into::into).collect();
        assert!(parts.len() >= 2, "a composite needs at least two parts");
        Candidate { parts }
    }

    /// The display name of the merged event: parts joined with `"+"`.
    pub fn merged_name(&self) -> String {
        self.parts.join("+")
    }

    /// Resolves the parts to event ids in `log`, or `None` if any part is no
    /// longer in the log's alphabet (e.g. it was consumed by an earlier
    /// merge).
    pub fn resolve(&self, log: &EventLog) -> Option<Vec<EventId>> {
        self.parts.iter().map(|p| log.id_of(p)).collect()
    }

    /// Whether this candidate shares a part with `other`.
    pub fn overlaps(&self, other: &Candidate) -> bool {
        self.parts.iter().any(|p| other.parts.contains(p))
    }
}

/// Tuning knobs for candidate discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateConfig {
    /// Minimum fraction of occurrences that must be consecutive, for both
    /// members of a pair: `follows(a,b)/occ(a)` and `follows(a,b)/occ(b)`
    /// must reach this ratio. `1.0` = "always appear consecutively".
    pub min_ratio: f64,
    /// Longest composite run emitted.
    pub max_len: usize,
    /// Cap on the number of candidates returned (highest-support first).
    pub max_candidates: usize,
}

impl Default for CandidateConfig {
    fn default() -> Self {
        CandidateConfig {
            min_ratio: 1.0,
            max_len: 4,
            max_candidates: 64,
        }
    }
}

/// Discovers composite candidates in `log` per `config`.
///
/// A pair `(a, b)` qualifies when at least `min_ratio` of `a`'s occurrences
/// are immediately followed by `b` *and* at least `min_ratio` of `b`'s
/// occurrences are immediately preceded by `a`. Qualifying pairs are chained
/// into runs; every contiguous sub-run of length ≥ 2 (up to `max_len`)
/// becomes a candidate. Candidates are ordered by decreasing support
/// (occurrence count of the pair chain's weakest link) and truncated to
/// `max_candidates`.
pub fn discover_candidates(log: &EventLog, config: &CandidateConfig) -> Vec<Candidate> {
    let n = log.alphabet_size();
    if n == 0 {
        return Vec::new();
    }
    // Occurrence counts and immediate-follow counts.
    let mut occ = vec![0u32; n];
    let mut follows: BTreeMap<(usize, usize), u32> = BTreeMap::new();
    for trace in log.traces() {
        for &e in trace.events() {
            occ[e.index()] += 1;
        }
        for (a, b) in trace.consecutive_pairs() {
            *follows.entry((a.index(), b.index())).or_insert(0) += 1;
        }
    }
    // Qualifying pairs. Self-pairs are excluded: merging an event with
    // itself is a loop, not a composite.
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut pair_support: BTreeMap<(usize, usize), u32> = BTreeMap::new();
    for (&(a, b), &cnt) in &follows {
        if a == b || occ[a] == 0 || occ[b] == 0 {
            continue;
        }
        let fa = cnt as f64 / occ[a] as f64;
        let fb = cnt as f64 / occ[b] as f64;
        if fa >= config.min_ratio && fb >= config.min_ratio {
            // An event can only chain deterministically: keep the strongest
            // qualifying successor/predecessor.
            let better_next = match next[a] {
                Some(old) => cnt > *follows.get(&(a, old)).unwrap_or(&0),
                None => true,
            };
            if better_next {
                next[a] = Some(b);
            }
            let better_prev = match prev[b] {
                Some(old) => cnt > *follows.get(&(old, b)).unwrap_or(&0),
                None => true,
            };
            if better_prev {
                prev[b] = Some(a);
            }
            pair_support.insert((a, b), cnt);
        }
    }
    // Keep only mutual links (a's chosen next is b and b's chosen prev is a).
    for (a, slot) in next.iter_mut().enumerate() {
        if let Some(b) = *slot {
            if prev[b] != Some(a) {
                *slot = None;
            }
        }
    }
    for (b, slot) in prev.iter_mut().enumerate() {
        if let Some(a) = *slot {
            if next[a] != Some(b) {
                *slot = None;
            }
        }
    }
    // Walk maximal chains from their heads.
    let name = |i: usize| log.name_of(EventId::from_index(i)).to_owned();
    let mut out: Vec<(u32, Candidate)> = Vec::new();
    for head in 0..n {
        if prev[head].is_some() || next[head].is_none() {
            continue;
        }
        let mut run = vec![head];
        let mut cur = head;
        while let Some(nx) = next[cur] {
            if run.contains(&nx) {
                break; // defensive: cycles cannot chain forever
            }
            run.push(nx);
            cur = nx;
        }
        // Emit contiguous sub-runs.
        for start in 0..run.len() {
            for end in (start + 2)..=run.len().min(start + config.max_len) {
                let sub = &run[start..end];
                let support = sub
                    .windows(2)
                    .map(|w| *pair_support.get(&(w[0], w[1])).unwrap_or(&0))
                    .min()
                    .unwrap_or(0);
                out.push((
                    support,
                    Candidate {
                        parts: sub.iter().map(|&i| name(i)).collect(),
                    },
                ));
            }
        }
    }
    out.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.parts.cmp(&b.1.parts)));
    out.truncate(config.max_candidates);
    out.into_iter().map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_consecutive_pair_is_found() {
        let mut log = EventLog::new();
        log.push_trace(["a", "c", "d", "e"]);
        log.push_trace(["b", "c", "d", "f"]);
        let cands = discover_candidates(&log, &CandidateConfig::default());
        assert!(cands.iter().any(|c| c.parts == ["c", "d"]));
        // "a" is not always followed by "c" occurrence-wise? It is (1/1),
        // but "c" is preceded by "a" only half the time: excluded.
        assert!(!cands.iter().any(|c| c.parts == ["a", "c"]));
    }

    #[test]
    fn chains_extend_to_runs() {
        let mut log = EventLog::new();
        log.push_trace(["x", "y", "z"]);
        log.push_trace(["x", "y", "z"]);
        let cands = discover_candidates(&log, &CandidateConfig::default());
        let parts: Vec<_> = cands.iter().map(|c| c.parts.clone()).collect();
        assert!(parts.contains(&vec!["x".into(), "y".into()]));
        assert!(parts.contains(&vec!["y".into(), "z".into()]));
        assert!(parts.contains(&vec!["x".into(), "y".into(), "z".into()]));
    }

    #[test]
    fn relaxed_ratio_admits_more_candidates() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b"]);
        log.push_trace(["a", "c"]);
        let strict = discover_candidates(&log, &CandidateConfig::default());
        assert!(strict.is_empty());
        let relaxed = discover_candidates(
            &log,
            &CandidateConfig {
                min_ratio: 0.4,
                ..CandidateConfig::default()
            },
        );
        assert!(!relaxed.is_empty());
    }

    #[test]
    fn max_candidates_caps_output() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c", "d", "e", "f"]);
        let config = CandidateConfig {
            max_candidates: 3,
            ..CandidateConfig::default()
        };
        let cands = discover_candidates(&log, &config);
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn self_loops_are_not_candidates() {
        let mut log = EventLog::new();
        log.push_trace(["a", "a", "a"]);
        let cands = discover_candidates(&log, &CandidateConfig::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn candidate_helpers() {
        let c = Candidate::new(["c", "d"]);
        assert_eq!(c.merged_name(), "c+d");
        assert!(c.overlaps(&Candidate::new(["d", "e"])));
        assert!(!c.overlaps(&Candidate::new(["e", "f"])));
        let mut log = EventLog::new();
        log.push_trace(["c", "d"]);
        assert!(c.resolve(&log).is_some());
        assert!(Candidate::new(["c", "zz"]).resolve(&log).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two parts")]
    fn single_part_candidate_rejected() {
        let _ = Candidate::new(["only"]);
    }

    #[test]
    fn empty_log_yields_no_candidates() {
        let log = EventLog::new();
        assert!(discover_candidates(&log, &CandidateConfig::default()).is_empty());
    }
}
