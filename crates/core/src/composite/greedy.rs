//! The greedy composite-event matcher (Algorithm 2) with both pruning
//! techniques: unchanged-similarity freezing (Proposition 4) and
//! upper-bound abort (Section 4.3).

use crate::composite::candidates::Candidate;
use crate::engine::{RunOptions, RunStats, Seed};
use crate::matcher::{Ems, MatchOutcome};
use crate::sim::SimMatrix;
use ems_depgraph::{ancestor_sets, descendant_sets, DependencyGraph};
use ems_events::{merge_composite, EventLog, LabelSym, SymbolTable};
use ems_obs::Recorder;
use std::collections::HashMap;

/// New-index → old-index remap between two graphs sharing one
/// [`SymbolTable`]: a symbol-keyed lookup, so re-matching events across a
/// tentative merge never compares strings (the parse edge interned them
/// once).
fn remap_by_symbol(new_g: &DependencyGraph, old_g: &DependencyGraph) -> Vec<Option<usize>> {
    let old_index: HashMap<LabelSym, usize> = old_g
        .syms()
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    new_g
        .syms()
        .iter()
        .map(|s| old_index.get(s).copied())
        .collect()
}

/// Configuration of the greedy composite search.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeConfig {
    /// Minimum improvement `δ` of the average similarity required to accept
    /// a merge (Algorithm 2, line 9). Larger values accept fewer composites;
    /// the paper finds a moderately large `δ` (≈ 0.10) most accurate.
    pub delta: f64,
    /// Apply the unchanged-similarity pruning `Uc` (Proposition 4): freeze
    /// pairs whose ancestors/descendants are disjoint from the merged
    /// composite instead of recomputing them.
    pub unchanged_pruning: bool,
    /// Apply the upper-bound pruning `Bd` (Section 4.3): abort a candidate's
    /// similarity computation once its optimistic average cannot beat the
    /// round's incumbent.
    pub upper_bound_pruning: bool,
    /// Safety cap on greedy rounds.
    pub max_rounds: usize,
}

impl Default for CompositeConfig {
    fn default() -> Self {
        CompositeConfig {
            delta: 0.005,
            unchanged_pruning: true,
            upper_bound_pruning: true,
            max_rounds: 16,
        }
    }
}

/// A merge accepted by the greedy search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedMerge {
    /// Which log the composite was merged into (1 or 2).
    pub side: u8,
    /// The merged candidate.
    pub candidate: Candidate,
}

/// The outcome of composite matching.
#[derive(Debug, Clone)]
pub struct CompositeOutcome {
    /// Log 1 after all accepted merges (composites appear as single events
    /// named `part1+part2+...`).
    pub log1: EventLog,
    /// Log 2 after all accepted merges.
    pub log2: EventLog,
    /// Final aggregated similarity over the transformed alphabets.
    pub similarity: SimMatrix,
    /// Accepted merges in acceptance order.
    pub merges: Vec<AcceptedMerge>,
    /// Greedy rounds executed (accepted merges + the final rejected round).
    pub rounds: usize,
    /// Candidate evaluations performed across all rounds.
    pub candidates_evaluated: usize,
    /// Candidate evaluations stopped early by upper-bound pruning.
    pub candidates_aborted: usize,
    /// Aggregated engine work counters across every similarity computation.
    pub stats: RunStats,
    /// The final average similarity `avg(S)`.
    pub average: f64,
}

/// Greedy composite-event matcher (Algorithm 2).
///
/// In each round, every still-applicable candidate from either log is merged
/// tentatively, the pairwise similarity of the reconstructed graphs is
/// computed, and the candidate with the highest average similarity is
/// accepted if it improves on the incumbent by more than `δ`; otherwise the
/// search stops.
#[derive(Debug, Clone)]
pub struct CompositeMatcher {
    ems: Ems,
    config: CompositeConfig,
}

struct State {
    log1: EventLog,
    log2: EventLog,
    g1: DependencyGraph,
    g2: DependencyGraph,
    outcome: MatchOutcome,
}

impl CompositeMatcher {
    /// Creates a matcher around an [`Ems`] configuration.
    pub fn new(ems: Ems, config: CompositeConfig) -> Self {
        CompositeMatcher { ems, config }
    }

    /// Runs the greedy search over `cands1` (composites of log 1) and
    /// `cands2` (composites of log 2).
    pub fn match_logs(
        &self,
        l1: &EventLog,
        l2: &EventLog,
        cands1: &[Candidate],
        cands2: &[Candidate],
    ) -> CompositeOutcome {
        self.match_logs_recorded(l1, l2, cands1, cands2, None)
    }

    /// As [`match_logs`](Self::match_logs), additionally reporting search
    /// telemetry to `recorder`: accepted-merge events and round/candidate
    /// tallies. The inner per-candidate engine runs are intentionally
    /// *not* traced — a composite search performs dozens of throwaway
    /// similarity computations, and iteration-level records for each would
    /// drown the trace in discarded work; the aggregated engine counters
    /// are still available via [`CompositeOutcome::stats`].
    pub fn match_logs_recorded(
        &self,
        l1: &EventLog,
        l2: &EventLog,
        cands1: &[Candidate],
        cands2: &[Candidate],
        recorder: Option<&Recorder>,
    ) -> CompositeOutcome {
        // One symbol table spans the whole search: every tentative merge's
        // graph shares it, so cross-graph event identity is a `u32` compare.
        let mut table = SymbolTable::new();
        let g1 = DependencyGraph::from_log_in(l1, &mut table);
        let g2 = DependencyGraph::from_log_in(l2, &mut table);
        let labels = self.ems.label_matrix(l1, l2);
        let outcome = self.ems.match_graphs(&g1, &g2, &labels);
        let mut stats = outcome.stats.clone();
        let mut state = State {
            log1: l1.clone(),
            log2: l2.clone(),
            g1,
            g2,
            outcome,
        };
        let mut remaining1: Vec<Candidate> = cands1.to_vec();
        let mut remaining2: Vec<Candidate> = cands2.to_vec();
        let mut merges = Vec::new();
        let mut rounds = 0usize;
        let mut evaluated = 0usize;
        let mut aborted = 0usize;

        while rounds < self.config.max_rounds {
            rounds += 1;
            let current_avg = state.outcome.similarity.average();
            let mut best: Option<(usize, bool, State)> = None; // (cand idx, side1, state)
            let mut best_avg = current_avg + self.config.delta;
            for (side1, cands) in [(true, &remaining1), (false, &remaining2)] {
                for (idx, cand) in cands.iter().enumerate() {
                    let target = if self.config.upper_bound_pruning {
                        Some(best_avg)
                    } else {
                        None
                    };
                    match self.evaluate(&state, side1, cand, target, &mut stats, &mut table) {
                        Evaluation::Skipped => {}
                        Evaluation::Aborted => {
                            evaluated += 1;
                            aborted += 1;
                        }
                        Evaluation::Done(next) => {
                            evaluated += 1;
                            let avg = next.outcome.similarity.average();
                            if avg > best_avg {
                                best_avg = avg;
                                best = Some((idx, side1, *next));
                            }
                        }
                    }
                }
            }
            match best {
                Some((idx, side1, next)) => {
                    let cand = if side1 {
                        remaining1.remove(idx)
                    } else {
                        remaining2.remove(idx)
                    };
                    merges.push(AcceptedMerge {
                        side: if side1 { 1 } else { 2 },
                        candidate: cand,
                    });
                    state = next;
                }
                None => break,
            }
        }

        let average = state.outcome.similarity.average();
        if let Some(rec) = recorder {
            for m in &merges {
                rec.event(
                    "composite.merge",
                    vec![
                        ("side".to_string(), m.side.to_string()),
                        ("name".to_string(), m.candidate.merged_name()),
                    ],
                );
            }
            rec.counter_add("composite.rounds", vec![], rounds as u64);
            rec.counter_add("composite.candidates_evaluated", vec![], evaluated as u64);
            rec.counter_add("composite.candidates_aborted", vec![], aborted as u64);
            rec.counter_add("composite.merges", vec![], merges.len() as u64);
            rec.gauge_set("composite.average", vec![], average);
        }

        CompositeOutcome {
            average,
            similarity: state.outcome.similarity,
            log1: state.log1,
            log2: state.log2,
            merges,
            rounds,
            candidates_evaluated: evaluated,
            candidates_aborted: aborted,
            stats,
        }
    }
}

enum Evaluation {
    /// The candidate no longer applies (parts consumed, or never occurs).
    Skipped,
    /// Upper-bound pruning stopped the computation early.
    Aborted,
    /// Full evaluation (boxed: `State` is much larger than the other arms).
    Done(Box<State>),
}

impl CompositeMatcher {
    /// Tentatively merges `cand` into one side and recomputes similarities,
    /// threading the two pruning techniques through the engine.
    fn evaluate(
        &self,
        state: &State,
        side1: bool,
        cand: &Candidate,
        abort_target: Option<f64>,
        stats: &mut RunStats,
        table: &mut SymbolTable,
    ) -> Evaluation {
        let (merge_log, old_graph) = if side1 {
            (&state.log1, &state.g1)
        } else {
            (&state.log2, &state.g2)
        };
        let Some(part_ids) = cand.resolve(merge_log) else {
            return Evaluation::Skipped;
        };
        let merged_name = cand.merged_name();
        if merge_log.id_of(&merged_name).is_some() {
            // Already merged earlier (leftover part occurrences kept the
            // names alive): nothing new to do.
            return Evaluation::Skipped;
        }
        let (new_log, merged_id) = merge_composite(merge_log, &part_ids, &merged_name);
        if merged_id.is_none() {
            return Evaluation::Skipped; // the run never occurs consecutively
        }
        let (new_log, _) = new_log.compact();
        let new_graph = DependencyGraph::from_log_in(&new_log, table);
        let (l1, l2, g1, g2) = if side1 {
            (&new_log, &state.log2, &new_graph, &state.g2)
        } else {
            (&state.log1, &new_log, &state.g1, &new_graph)
        };
        let labels = self.ems.label_matrix(l1, l2);

        // Unchanged-similarity pruning (Proposition 4): freeze rows/columns
        // of nodes whose ancestors (forward) / descendants (backward) are
        // disjoint from the merged parts and that are not parts themselves.
        let (fwd_seed, bwd_seed) = if self.config.unchanged_pruning {
            let parts: Vec<_> = part_ids.iter().map(|&e| e.index()).collect();
            let an = ancestor_sets(old_graph);
            let dn = descendant_sets(old_graph);
            // All graphs in the search share one symbol table, so the
            // merged-side remap (new node index → old node index) is a
            // symbol lookup; the composite's symbol is the only new one.
            let merged_sym = new_graph.symbols().get(&merged_name);
            let to_old = remap_by_symbol(&new_graph, old_graph);
            let frozen_for = |sets: &[Vec<ems_depgraph::NodeId>]| -> Vec<bool> {
                new_graph
                    .real_nodes()
                    .map(|v_new| {
                        if merged_sym == Some(new_graph.sym(v_new)) {
                            return false;
                        }
                        let Some(old_id) = to_old[v_new.index()] else {
                            return false;
                        };
                        if parts.contains(&old_id) {
                            return false;
                        }
                        !sets[old_id].iter().any(|a| parts.contains(&a.index()))
                    })
                    .collect()
            };
            let fwd_rows = frozen_for(&an);
            let bwd_rows = frozen_for(&dn);
            // Map new indices to old matrix indices on the merged side; the
            // other side is untouched, but indices may still shift after
            // compaction, so remap both by symbol.
            let to_old1 = remap_by_symbol(g1, &state.g1);
            let to_old2 = remap_by_symbol(g2, &state.g2);
            let build_seed = |rows: &[bool], prev: &SimMatrix| -> Seed {
                let n1 = g1.num_real();
                let n2 = g2.num_real();
                let mut values = SimMatrix::zeros(n1, n2);
                let mut frozen = vec![false; n1 * n2];
                for i in 0..n1 {
                    for j in 0..n2 {
                        let node_frozen = if side1 { rows[i] } else { rows[j] };
                        if !node_frozen {
                            continue;
                        }
                        if let (Some(oi), Some(oj)) = (to_old1[i], to_old2[j]) {
                            values.set(i, j, prev.get(oi, oj));
                            frozen[i * n2 + j] = true;
                        }
                    }
                }
                Seed { values, frozen }
            };
            (
                Some(build_seed(&fwd_rows, &state.outcome.forward)),
                Some(build_seed(&bwd_rows, &state.outcome.backward)),
            )
        } else {
            (None, None)
        };

        // Upper-bound pruning (Section 4.3): the combined similarity is the
        // mean of forward and backward. If even an all-ones backward cannot
        // lift the forward's optimistic average above the target, abort.
        let fwd_abort = abort_target.map(|t| 2.0 * t - 1.0).filter(|&t| t > 0.0);
        let fwd_opts = RunOptions {
            seed: fwd_seed,
            abort_below: fwd_abort,
            ..Default::default()
        };
        let fwd = crate::engine::Engine::new(
            g1,
            g2,
            &labels,
            self.ems.params(),
            crate::params::Direction::Forward,
        )
        .run(&fwd_opts);
        stats.merge2(&fwd.stats);
        if fwd.stats.aborted {
            return Evaluation::Aborted;
        }
        let bwd_abort = abort_target
            .map(|t| 2.0 * t - fwd.sim.average())
            .filter(|&t| t > 0.0);
        let bwd_opts = RunOptions {
            seed: bwd_seed,
            abort_below: bwd_abort,
            ..Default::default()
        };
        let bwd = crate::engine::Engine::new(
            g1,
            g2,
            &labels,
            self.ems.params(),
            crate::params::Direction::Backward,
        )
        .run(&bwd_opts);
        stats.merge2(&bwd.stats);
        if bwd.stats.aborted {
            return Evaluation::Aborted;
        }

        let mut run_stats = fwd.stats.clone();
        run_stats.merge(&bwd.stats);
        let outcome = MatchOutcome {
            similarity: fwd.sim.mean_with(&bwd.sim),
            forward: fwd.sim,
            backward: bwd.sim,
            stats: run_stats,
        };
        let next = if side1 {
            State {
                log1: new_log,
                log2: state.log2.clone(),
                g1: new_graph,
                g2: state.g2.clone(),
                outcome,
            }
        } else {
            State {
                log1: state.log1.clone(),
                log2: new_log,
                g1: state.g1.clone(),
                g2: new_graph,
                outcome,
            }
        };
        Evaluation::Done(Box::new(next))
    }
}

impl RunStats {
    /// Adds another run's counters without taking the max of iterations —
    /// used when accumulating across many candidate evaluations.
    fn merge2(&mut self, other: &RunStats) {
        self.iterations += other.iterations;
        self.formula_evals += other.formula_evals;
        self.pruned_evals += other.pruned_evals;
        self.frozen_evals += other.frozen_evals;
        self.estimated_pairs += other.estimated_pairs;
        self.aborted |= other.aborted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::EmsParams;

    /// The Figure 1 log pair: log 1 keeps C and D separate; log 2 has the
    /// composite "Inventory Checking & Validation" as the single event `4`.
    /// Ground truth merges {C, D} in log 1 — this is exactly Example 7,
    /// where avg(S) rises from 0.502 to 0.508 on accepting {C, D} and falls
    /// for {E, F}.
    fn composite_pair() -> (EventLog, EventLog) {
        let mut l1 = EventLog::new();
        for _ in 0..2 {
            l1.push_trace(["A", "C", "D", "E", "F"]);
        }
        for _ in 0..3 {
            l1.push_trace(["B", "C", "D", "F", "E"]);
        }
        let mut l2 = EventLog::new();
        for _ in 0..2 {
            l2.push_trace(["1", "2", "4", "5", "6"]);
        }
        for _ in 0..3 {
            l2.push_trace(["1", "3", "4", "6", "5"]);
        }
        (l1, l2)
    }

    fn matcher(config: CompositeConfig) -> CompositeMatcher {
        CompositeMatcher::new(Ems::new(EmsParams::structural()), config)
    }

    #[test]
    fn merges_the_true_composite() {
        let (l1, l2) = composite_pair();
        let cands = vec![Candidate::new(["C", "D"]), Candidate::new(["E", "F"])];
        let out = matcher(CompositeConfig::default()).match_logs(&l1, &l2, &cands, &[]);
        assert!(
            out.merges
                .iter()
                .any(|m| m.side == 1 && m.candidate.parts == ["C", "D"]),
            "merges: {:?}",
            out.merges
        );
        // The merged log contains the composite event.
        assert!(out.log1.id_of("C+D").is_some());
        // Average similarity improved over the singleton matching.
        let base = Ems::new(EmsParams::structural())
            .match_logs(&l1, &l2)
            .similarity
            .average();
        assert!(out.average > base);
    }

    #[test]
    fn high_delta_rejects_all_merges() {
        let (l1, l2) = composite_pair();
        let cands = vec![Candidate::new(["C", "D"])];
        let config = CompositeConfig {
            delta: 0.9,
            ..CompositeConfig::default()
        };
        let out = matcher(config).match_logs(&l1, &l2, &cands, &[]);
        assert!(out.merges.is_empty());
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn pruning_modes_agree_on_accepted_merges() {
        let (l1, l2) = composite_pair();
        let cands = vec![Candidate::new(["C", "D"]), Candidate::new(["E", "F"])];
        let run = |uc: bool, bd: bool| {
            let config = CompositeConfig {
                unchanged_pruning: uc,
                upper_bound_pruning: bd,
                ..CompositeConfig::default()
            };
            matcher(config).match_logs(&l1, &l2, &cands, &[])
        };
        let plain = run(false, false);
        let uc = run(true, false);
        let bd = run(false, true);
        let both = run(true, true);
        let key = |o: &CompositeOutcome| {
            let mut v: Vec<_> = o
                .merges
                .iter()
                .map(|m| (m.side, m.candidate.parts.clone()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&plain), key(&uc));
        assert_eq!(key(&plain), key(&bd));
        assert_eq!(key(&plain), key(&both));
        // Averages agree up to convergence-threshold noise: freezing pairs
        // at their fixpoints changes the trajectory, not the limit.
        assert!((plain.average - both.average).abs() < 1e-3);
        // Uc does strictly less formula work.
        assert!(uc.stats.formula_evals <= plain.stats.formula_evals);
    }

    #[test]
    fn inapplicable_candidates_are_skipped() {
        let (l1, l2) = composite_pair();
        let cands = vec![
            Candidate::new(["zz", "qq"]), // unknown events
            Candidate::new(["C", "F"]),   // never consecutive
        ];
        let out = matcher(CompositeConfig::default()).match_logs(&l1, &l2, &cands, &[]);
        assert!(out.merges.is_empty());
        assert_eq!(out.candidates_evaluated, 0);
    }

    #[test]
    fn candidates_on_both_sides_compete() {
        let (l1, l2) = composite_pair();
        let cands1 = vec![Candidate::new(["C", "D"])];
        let cands2 = vec![Candidate::new(["5", "6"])];
        let out = matcher(CompositeConfig::default()).match_logs(&l1, &l2, &cands1, &cands2);
        // The true composite on side 1 must be among the accepted merges,
        // and must have been accepted first (highest improvement).
        assert!(!out.merges.is_empty());
        assert_eq!(out.merges[0].side, 1);
        assert_eq!(out.merges[0].candidate.parts, vec!["C", "D"]);
    }

    #[test]
    fn empty_candidate_sets_return_base_matching() {
        let (l1, l2) = composite_pair();
        let out = matcher(CompositeConfig::default()).match_logs(&l1, &l2, &[], &[]);
        assert!(out.merges.is_empty());
        let base = Ems::new(EmsParams::structural()).match_logs(&l1, &l2);
        assert!((out.average - base.similarity.average()).abs() < 1e-12);
    }
}
