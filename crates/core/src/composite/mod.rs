//! Composite-event matching (Section 4).
//!
//! One event in a log may correspond to several events in another — a
//! *composite event*. Finding the optimal non-overlapping selection of
//! composite candidates that maximizes the average pairwise similarity is
//! NP-hard (Theorem 3, by reduction from maximum set packing), so this
//! module implements the paper's greedy strategy (Algorithm 2) together with
//! its two pruning techniques:
//!
//! * **Unchanged similarities** (`Uc`, Proposition 4): after merging a
//!   composite `U`, pairs whose ancestors are disjoint from `U` keep their
//!   similarities and are frozen instead of recomputed;
//! * **Upper-bound abort** (`Bd`, Section 4.3): a candidate evaluation is
//!   stopped as soon as the optimistic upper bound of its average similarity
//!   falls below the best average already found.
//!
//! Candidates are discovered with the SEQ-pattern heuristic used in the
//! paper's evaluation: "grouping singleton events that always appear
//! consecutively" ([`discover_candidates`]).

mod candidates;
mod greedy;

pub use candidates::{discover_candidates, Candidate, CandidateConfig};
pub use greedy::{AcceptedMerge, CompositeConfig, CompositeMatcher, CompositeOutcome};
