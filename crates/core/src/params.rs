//! Tunable parameters of the EMS similarity.

/// Which neighbor direction a similarity run walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Propagate from predecessors (pre-sets) — the *forward similarity* of
    /// Definition 2.
    Forward,
    /// Propagate from successors (post-sets) — the *backward similarity* of
    /// Section 3.6.
    Backward,
}

/// How the forward and backward similarities are combined into the final
/// EMS similarity. The paper prescribes aggregation "e.g., by average"
/// (Section 3.6); the alternatives are exposed for ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// Arithmetic mean of forward and backward (the paper's choice).
    Average,
    /// Elementwise minimum: a pair must look similar from *both* ends.
    Min,
    /// Elementwise maximum: either end suffices.
    Max,
    /// Weighted mean: `w · forward + (1-w) · backward`.
    Weighted(f64),
    /// Forward similarity only (BHV-style single direction).
    ForwardOnly,
    /// Backward similarity only.
    BackwardOnly,
}

impl Aggregation {
    /// Combines one forward/backward value pair.
    pub fn combine(&self, fwd: f64, bwd: f64) -> f64 {
        match *self {
            Aggregation::Average => (fwd + bwd) / 2.0,
            Aggregation::Min => fwd.min(bwd),
            Aggregation::Max => fwd.max(bwd),
            Aggregation::Weighted(w) => w * fwd + (1.0 - w) * bwd,
            Aggregation::ForwardOnly => fwd,
            Aggregation::BackwardOnly => bwd,
        }
    }

    /// Validates parameters (the weight must be a probability).
    pub fn validate(&self) -> Result<(), String> {
        if let Aggregation::Weighted(w) = self {
            if !(0.0..=1.0).contains(w) {
                return Err(format!("aggregation weight must be in [0,1], got {w}"));
            }
        }
        Ok(())
    }
}

/// Which string measure fills the label matrix `S^L` when `alpha < 1`
/// (Section 3.4). Irrelevant at `alpha = 1` — the label term has weight 0
/// and the matrix is all zeros regardless of the measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelMeasure {
    /// Cosine similarity over q-gram multisets — the paper's choice for
    /// the Figure 4 experiments, and the default here.
    #[default]
    QgramCosine,
    /// Strict string equality: `1` iff the names are byte-identical. The
    /// only measure under which the catalog's sketch-level label bound is
    /// sound (name-set overlap caps the label term; see
    /// `ems_depgraph::sketch`).
    ExactName,
}

/// The effective label configuration a parameter set induces — what the
/// persistence layer keys label matrices by. Two parameter sets that map
/// to the same `LabelSpace` produce bit-identical label matrices for any
/// input pair, so they may share cached/persisted matrices; any change
/// that breaks that invariant must add a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSpace {
    /// `alpha = 1`: the matrix is all zeros.
    Structural,
    /// `alpha < 1` with [`LabelMeasure::QgramCosine`].
    QgramCosine,
    /// `alpha < 1` with [`LabelMeasure::ExactName`].
    ExactName,
}

impl LabelSpace {
    /// A stable one-byte tag for persistence keys. `Structural = 0` and
    /// `QgramCosine = 1` deliberately coincide with the former boolean
    /// `labeled` byte, so stores written before the measure knob existed
    /// keep their keys.
    pub fn tag(self) -> u8 {
        match self {
            LabelSpace::Structural => 0,
            LabelSpace::QgramCosine => 1,
            LabelSpace::ExactName => 2,
        }
    }
}

/// Parameters of the EMS similarity function (Definition 2).
#[derive(Debug, Clone, PartialEq)]
pub struct EmsParams {
    /// Weight `α ∈ [0, 1]` of the structural part; `1 - α` weighs the label
    /// similarity. `α = 1` matches on structure alone (opaque names).
    pub alpha: f64,
    /// Similarity decay `c ∈ (0, 1)` across edges — the upper bound of the
    /// edge-compatibility factor `C`. The paper's examples use `c = 0.8`.
    pub c: f64,
    /// Convergence threshold: iteration stops when no pair changes by more
    /// than `epsilon`.
    pub epsilon: f64,
    /// Hard cap on iterations (safety net for cyclic graphs where the
    /// `l(v)`-based bound is infinite).
    pub max_iterations: usize,
    /// Whether early-convergence pruning (Proposition 2) is applied.
    pub pruning: bool,
    /// `Some(I)`: run `I` exact iterations then extrapolate with the
    /// closed-form estimation of Section 3.5 (Algorithm 1). `None`: exact.
    pub estimate_after: Option<usize>,
    /// How forward and backward similarities are aggregated (Section 3.6).
    pub aggregation: Aggregation,
    /// String measure for the label matrix when `alpha < 1` (Section 3.4).
    pub label_measure: LabelMeasure,
    /// Worker threads for the fixpoint iteration: `0` uses all available
    /// parallelism, `1` forces the exact serial path. Results are
    /// bit-identical for every value — the knob trades wall-clock time
    /// only. Overridable per run via `RunOptions::threads`.
    pub threads: usize,
    /// δ-thresholded sparsification. `None` keeps the dense substrates
    /// throughout. `Some(0.0)` is the **exact** sparse mode: after
    /// [`EmsParams::sparse_warmup`] iterations the kernel evaluates
    /// through a CSR of the previous matrix — bit-identical results at
    /// lower memory. `Some(δ)` with `δ > 0` additionally drops pairs
    /// whose score *and* Proposition-2 upper bound are below `δ` to an
    /// exact zero; any score's steady-state error is then bounded by
    /// `δ / (1 − α·c)` (see the sparse-similarity module docs).
    pub sparse_delta: Option<f64>,
    /// Exact warm-up iterations before sparsification engages — lets
    /// genuinely similar pairs rise above `δ` before the drop test runs.
    /// Ignored unless [`EmsParams::sparse_delta`] is set.
    pub sparse_warmup: usize,
}

impl EmsParams {
    /// Structure-only matching (`α = 1`), the configuration of Figure 3.
    pub fn structural() -> Self {
        EmsParams {
            alpha: 1.0,
            ..Self::default()
        }
    }

    /// Structure combined with typographic similarity at the given weight
    /// `alpha` for structure (Figure 4 uses labels with `α = 0.5`).
    pub fn with_labels(alpha: f64) -> Self {
        EmsParams {
            alpha,
            ..Self::default()
        }
    }

    /// Structure combined with *exact-equality* label similarity — the
    /// configuration the catalog's sketch-level label bound requires.
    pub fn with_exact_labels(alpha: f64) -> Self {
        EmsParams {
            alpha,
            label_measure: LabelMeasure::ExactName,
            ..Self::default()
        }
    }

    /// The label space these parameters match in — the cache/persistence
    /// identity of the label matrices they produce.
    pub fn label_space(&self) -> LabelSpace {
        if self.alpha >= 1.0 {
            LabelSpace::Structural
        } else {
            match self.label_measure {
                LabelMeasure::QgramCosine => LabelSpace::QgramCosine,
                LabelMeasure::ExactName => LabelSpace::ExactName,
            }
        }
    }

    /// Switches on estimation after `i` exact iterations (`EMS+es`).
    pub fn estimated(mut self, i: usize) -> Self {
        self.estimate_after = Some(i);
        self
    }

    /// Disables early-convergence pruning (for the Figure 6 ablation).
    pub fn without_pruning(mut self) -> Self {
        self.pruning = false;
        self
    }

    /// Sets the worker-thread knob (`0` = all available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables δ-thresholded sparsification after `warmup` exact
    /// iterations (`delta = 0.0` is the exact CSR mode).
    pub fn with_sparse(mut self, delta: f64, warmup: usize) -> Self {
        self.sparse_delta = Some(delta);
        self.sparse_warmup = warmup;
        self
    }

    /// Validates the parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(format!("alpha must be in [0,1], got {}", self.alpha));
        }
        if !(self.c > 0.0 && self.c < 1.0) {
            return Err(format!("c must be in (0,1), got {}", self.c));
        }
        if self.epsilon.is_nan() || self.epsilon <= 0.0 {
            return Err(format!("epsilon must be positive, got {}", self.epsilon));
        }
        if self.max_iterations == 0 {
            return Err("max_iterations must be at least 1".into());
        }
        if let Some(d) = self.sparse_delta {
            if !(d.is_finite() && (0.0..1.0).contains(&d)) {
                return Err(format!("sparse_delta must be in [0,1), got {d}"));
            }
        }
        self.aggregation.validate()?;
        Ok(())
    }
}

impl Default for EmsParams {
    fn default() -> Self {
        EmsParams {
            alpha: 1.0,
            c: 0.8,
            epsilon: 1e-4,
            max_iterations: 100,
            pruning: true,
            estimate_after: None,
            aggregation: Aggregation::Average,
            label_measure: LabelMeasure::default(),
            threads: 0,
            sparse_delta: None,
            sparse_warmup: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_examples() {
        let p = EmsParams::default();
        assert_eq!(p.alpha, 1.0);
        assert_eq!(p.c, 0.8);
        assert!(p.pruning);
        assert!(p.estimate_after.is_none());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let p = EmsParams::with_labels(0.5)
            .estimated(5)
            .without_pruning()
            .with_threads(2);
        assert_eq!(p.alpha, 0.5);
        assert_eq!(p.estimate_after, Some(5));
        assert!(!p.pruning);
        assert_eq!(p.threads, 2);
        assert_eq!(EmsParams::default().threads, 0);
    }

    #[test]
    fn aggregation_combines_as_documented() {
        assert_eq!(Aggregation::Average.combine(0.2, 0.6), 0.4);
        assert_eq!(Aggregation::Min.combine(0.2, 0.6), 0.2);
        assert_eq!(Aggregation::Max.combine(0.2, 0.6), 0.6);
        assert!((Aggregation::Weighted(0.75).combine(0.2, 0.6) - 0.3).abs() < 1e-12);
        assert_eq!(Aggregation::ForwardOnly.combine(0.2, 0.6), 0.2);
        assert_eq!(Aggregation::BackwardOnly.combine(0.2, 0.6), 0.6);
        assert!(Aggregation::Weighted(2.0).validate().is_err());
        assert!(Aggregation::Weighted(0.5).validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let base = EmsParams::default();
        for p in [
            EmsParams {
                alpha: 1.5,
                ..base.clone()
            },
            EmsParams {
                c: 1.0,
                ..base.clone()
            },
            EmsParams {
                epsilon: 0.0,
                ..base.clone()
            },
            EmsParams {
                max_iterations: 0,
                ..base.clone()
            },
            EmsParams {
                sparse_delta: Some(1.0),
                ..base.clone()
            },
            EmsParams {
                sparse_delta: Some(-0.1),
                ..base.clone()
            },
            EmsParams {
                sparse_delta: Some(f64::NAN),
                ..base
            },
        ] {
            assert!(p.validate().is_err());
        }
        assert!(EmsParams::default().with_sparse(0.0, 0).validate().is_ok());
        assert!(EmsParams::default().with_sparse(0.01, 3).validate().is_ok());
    }
}
