//! The precomputation-backed fixpoint kernel: `PairContext`, the
//! active-pair worklist, and the sharded parallel update.
//!
//! The seed implementation of formula (1) re-derived everything inside the
//! innermost loop: neighbor lists were walked through `NodeId` indirection,
//! the edge-compatibility factor `C = c·(1 − |Δf|/(f_o + f_i))` was
//! recomputed for every (outer, inner) neighbor pair on every iteration,
//! and three full `n1 × n2` grid scans ran per round. This module replaces
//! that hot path with three layers:
//!
//! 1. **[`PairContext`]** — a one-time substrate per engine: both graphs'
//!    direction-resolved neighbor lists flattened to CSR arrays
//!    ([`NeighborCsr`]), plus the `C`-factors precomputed per *frequency
//!    class*. Edge frequencies are trace-count fractions, so a graph has
//!    few distinct values; deduplicating them collapses the `C`-table from
//!    `O(E1·E2)` lane pairs to a cache-resident `classes1 × classes2`
//!    grid (two copies, one per scan orientation).
//! 2. **Per-iteration evaluation substrates** chosen by worklist density:
//!    - *Dense* ([`DenseScratch`]): when most pairs are still active, the
//!      per-outer-lane inner maxima `T[lane][node] = max C·S_prev` are
//!      materialized in two streaming passes (each keeps one `prev` row
//!      and the class table cache-hot), and a pair evaluation collapses
//!      to summing `deg` table lookups. Total candidate count is the same
//!      as the pairwise scan — the win is locality, every access hits a
//!      recently-touched line.
//!    - *Sparse*: when retirement has thinned the worklist, pairs are
//!      evaluated individually; a transposed copy of `prev` keeps the
//!      swapped scan orientation stride-1.
//! 3. **Active-pair worklist** (owned by the engine): pairs past their
//!    Proposition-2 horizon or frozen by Proposition 4 are retired *once*
//!    instead of being re-tested by full-grid scans every round, and
//!    [`eval_chunk`] shards the surviving pairs across threads. A chunk
//!    reads only the previous iteration's matrix (Jacobi step) and writes
//!    a private output buffer, so the update is order-independent.
//!
//! Determinism argument, in full: the compatibility factors are computed
//! by the same expression on the same inputs whether tabulated or derived
//! on the fly; the candidate set of each inner `max` is identical across
//! substrates (candidates with `S_prev ≤ best` cannot alter the max
//! because `C < 1`, so the seed's skip-guard is equivalence-preserving),
//! and the candidates are compared in the same adjacency order; the
//! per-outer-neighbor summation order follows the original adjacency order
//! preserved by the CSR; the transposed matrix holds exact copies; and the
//! artificial-event candidate joins the max commutatively. Every
//! floating-point operation therefore sees bit-identical operands in
//! bit-identical order regardless of substrate or sharding, so results are
//! bit-identical for every thread count and density threshold.

use crate::sim_sparse::SparseSim;
use crate::stats::ThreadClamp;
use ems_depgraph::{NeighborCsr, ARTIFICIAL_ENTRY};
use ems_labels::LabelMatrix;
use std::collections::HashMap;

/// Cap on precomputed compatibility-table entries *per table*. Frequency
/// classes keep real tables thousands of entries at most; the cap only
/// guards pathological inputs where every edge frequency is distinct.
/// Beyond it the kernel derives `C` on the fly — bit-identical results.
const MAX_COMPAT_ENTRIES: usize = 16 << 20;

/// Cap on total dense-substrate entries (`L1·n2 + n1·L2` similarity
/// maxima, 8 bytes each — 32 M entries is 256 MB). Grids too large for
/// the dense substrate use the sparse per-pair path at every density.
const MAX_DENSE_ENTRIES: usize = 32 << 20;

/// Fixed unroll width of the kernel's vector lanes: `[f64; 8]` blocks are
/// one or two SIMD registers on every mainstream target, wide enough to
/// saturate the autovectorizer without spilling.
const LANE_WIDTH: usize = 8;

/// Row-tile width of the dense consume: a run of consecutive pairs is
/// capped at this many columns so the accumulator tile plus the `t12`
/// rows it streams stay L1-resident across the whole `ents1` walk.
/// Splitting a run changes no per-pair arithmetic — each column's sum
/// sees the same terms in the same order — so tiling is bit-invisible.
const DENSE_TILE: usize = 256;

/// Elementwise `acc[i] += src[i]` in [`LANE_WIDTH`] blocks. The adds are
/// independent per index (no cross-lane reduction), so the unrolled form
/// performs the exact scalar operations and stays bit-identical.
#[inline]
fn add_assign_lanes(acc: &mut [f64], src: &[f64]) {
    debug_assert_eq!(acc.len(), src.len());
    let mut a = acc.chunks_exact_mut(LANE_WIDTH);
    let mut s = src.chunks_exact(LANE_WIDTH);
    for (ab, sb) in (&mut a).zip(&mut s) {
        for (x, &y) in ab.iter_mut().zip(sb) {
            *x += y;
        }
    }
    for (x, &y) in a.into_remainder().iter_mut().zip(s.remainder()) {
        *x += y;
    }
}

/// Horizontal max of non-negative finite doubles as a `u64` bit pattern,
/// reduced over [`LANE_WIDTH`] independent accumulators. For strictly
/// non-negative finite IEEE doubles unsigned bit order equals value
/// order, and a max fold is order-independent, so the lane-blocked
/// reduction returns exactly the bit pattern a sequential scan would.
#[inline]
fn max_bits_lanes(vals: &[f64]) -> u64 {
    let mut lanes = [0u64; LANE_WIDTH];
    let mut chunks = vals.chunks_exact(LANE_WIDTH);
    for ch in &mut chunks {
        for (l, &v) in lanes.iter_mut().zip(ch) {
            *l = (*l).max(v.to_bits());
        }
    }
    let mut best = 0u64;
    for &v in chunks.remainder() {
        best = best.max(v.to_bits());
    }
    for l in lanes {
        best = best.max(l);
    }
    best
}

/// The edge-compatibility factor `C(e1, e2) = c·(1 − |Δf|/(f_o + f_i))`
/// of Definition 2 — the exact expression of the seed kernel, kept in one
/// place so tabulated and on-the-fly values are bit-identical.
#[inline]
fn compat(c: f64, f_o: f64, f_i: f64) -> f64 {
    c * (1.0 - (f_o - f_i).abs() / (f_o + f_i))
}

/// One live entry of the engine's worklist: a pair index `k = v1·n2 + v2`
/// and its Proposition-2 horizon (`u32::MAX` = infinite).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActivePair {
    /// Row-major pair index.
    pub k: u32,
    /// `h = min(l(v1), l(v2))`; `u32::MAX` when infinite.
    pub h: u32,
}

/// Horizon sentinel for pairs that never converge by Proposition 2.
pub(crate) const H_INFINITE: u32 = u32::MAX;

/// Deduplicates lane frequencies into dense class ids (first-seen order)
/// and returns the per-lane class plus the distinct values per class.
fn frequency_classes(freqs: &[f64]) -> (Vec<u32>, Vec<f64>) {
    let mut by_bits: HashMap<u64, u32> = HashMap::new();
    let mut classes = Vec::new();
    let lanes = freqs
        .iter()
        .map(|&f| {
            *by_bits.entry(f.to_bits()).or_insert_with(|| {
                classes.push(f);
                (classes.len() - 1) as u32
            })
        })
        .collect();
    (lanes, classes)
}

/// Reusable buffers of the dense evaluation substrate: the inner maxima
/// per (outer lane, opposite node), refreshed from `prev` each iteration.
#[derive(Debug, Default)]
pub(crate) struct DenseScratch {
    /// `t12[e1 · n2 + v2] = max over inner lanes i of v2 of
    /// C(f(e1), f(i)) · S_prev(src(e1), src(i))` — the per-outer-lane best
    /// for the `s(v1, v2)` orientation, laid out so a row-major pair walk
    /// streams each lane row sequentially.
    t12: Vec<f64>,
    /// `t21[v1 · L2 + e2]` — the swapped orientation, laid out so all
    /// lanes consumed while `v1` is fixed live in one contiguous row.
    t21: Vec<f64>,
    /// One `prev` row gathered through side 2's lane sources — shared by
    /// every side-1 lane with the same source node.
    gather: Vec<f64>,
    /// One lane's candidate products `C · g`, staged so the segmented
    /// `t12` max reduces over a contiguous buffer in lane blocks.
    prod: Vec<f64>,
    /// Whether a `t21` row has been written this fill — the first lane of
    /// a node stores instead of max-accumulating, so rows never need
    /// zeroing.
    row_written: Vec<bool>,
    /// Whether the last fill produced all-zero tables (an all-zero
    /// `prev`) — lets the consumer skip reading them: adding `0.0` to a
    /// non-negative accumulator is the bitwise identity.
    zero: bool,
}

impl DenseScratch {
    /// Borrows the filled substrate as a [`PairEval`].
    pub fn as_eval(&self) -> PairEval<'_> {
        PairEval::Dense {
            t12: &self.t12,
            t21: &self.t21,
            zero: self.zero,
        }
    }
}

/// Which per-iteration substrate a pair evaluation reads. Both produce
/// bit-identical values; the engine picks per iteration by worklist
/// density.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PairEval<'a> {
    /// Per-pair scans over `prev` and its transpose.
    Sparse {
        /// Transpose of the previous matrix (`n2 × n1` row-major).
        prev_t: &'a [f64],
    },
    /// Lookups into the materialized inner maxima.
    Dense {
        /// See [`DenseScratch::t12`].
        t12: &'a [f64],
        /// See [`DenseScratch::t21`].
        t21: &'a [f64],
        /// See [`DenseScratch::zero`].
        zero: bool,
    },
    /// Per-pair scans with the swapped orientation reading a CSR of the
    /// transposed previous matrix instead of a dense transpose. Built at
    /// `δ = 0` from the (already-sparsified) `prev`, absent entries are
    /// exact `+0.0` — values the `s_prev <= best` guard skips in every
    /// substrate — so this path is bit-identical to the others.
    Csr {
        /// CSR of the previous matrix's transpose (`n2` rows, `n1` cols).
        prev_t: &'a SparseSim,
    },
}

/// Precomputed per-run substrate of the similarity kernel.
#[derive(Debug)]
pub(crate) struct PairContext {
    /// CSR neighbors of graph 1 (pre-sets forward, post-sets backward).
    csr1: NeighborCsr,
    /// CSR neighbors of graph 2, same direction resolution.
    csr2: NeighborCsr,
    /// Frequency class per lane of `csr1` / `csr2`.
    cls1: Vec<u32>,
    cls2: Vec<u32>,
    /// Distinct-class counts of each side.
    nc1: usize,
    nc2: usize,
    /// `C`-factors for the `s(v1, v2)` scan: `[class1 * nc2 + class2]`.
    compat12: Option<Vec<f64>>,
    /// `C`-factors for the `s(v2, v1)` scan: `[class2 * nc1 + class1]`.
    compat21: Option<Vec<f64>>,
    /// `C`-factors expanded per (side-1 class, side-2 lane):
    /// `[class1 * L2 + lane2] = compat12[class1][cls2[lane2]]`. Because `C`
    /// is symmetric in its frequency arguments this one array serves both
    /// scan orientations of the dense fill, whose inner loops then zip
    /// sequential slices with no per-candidate table indexing.
    expand: Option<Vec<f64>>,
    /// Side-1 lanes grouped by source node: `by_src1_lane[by_src1_off[u]..
    /// by_src1_off[u + 1]]` are the lanes whose source is node `u`. Lanes
    /// sharing a source read the same `prev` row, so the dense fill
    /// gathers that row once per source instead of once per lane.
    by_src1_off: Vec<u32>,
    by_src1_lane: Vec<u32>,
    /// Owning node of each side-1 lane (inverse of `csr1.lane_range`).
    owner1: Vec<u32>,
    /// Artificial-neighbor factors tabulated per (side-1 node class,
    /// side-2 node class); absent when the class product exceeds the cap.
    art: Option<ArtTable>,
    /// Decay parameter `c`, for on-the-fly fallback and artificial lanes.
    c: f64,
}

/// Tabulated artificial-event compatibility: node-level frequency classes
/// per side and the `C` value per class pair (0.0 where either side has
/// no artificial neighbor) — the exact values [`compat`] would produce,
/// computed once instead of per pair evaluation.
#[derive(Debug)]
struct ArtTable {
    cls1: Vec<u32>,
    cls2: Vec<u32>,
    nc2: usize,
    tab: Vec<f64>,
}

impl PairContext {
    /// Builds the substrate from direction-resolved CSR exports.
    pub fn new(csr1: NeighborCsr, csr2: NeighborCsr, c: f64) -> Self {
        Self::with_cap(csr1, csr2, c, MAX_COMPAT_ENTRIES)
    }

    /// The direction-resolved CSR exports this context was built from
    /// (serialization edge: everything else in the context is derived
    /// deterministically from these plus `c`).
    pub(crate) fn csrs(&self) -> (&NeighborCsr, &NeighborCsr) {
        (&self.csr1, &self.csr2)
    }

    /// Builder with an explicit table cap — exposed for tests that force
    /// the on-the-fly fallback path.
    pub fn with_cap(csr1: NeighborCsr, csr2: NeighborCsr, c: f64, cap: usize) -> Self {
        let (cls1, vals1) = frequency_classes(csr1.lane_freq());
        let (cls2, vals2) = frequency_classes(csr2.lane_freq());
        let (nc1, nc2) = (vals1.len(), vals2.len());
        let tabulate = nc1 != 0 && nc2 != 0 && nc1.saturating_mul(nc2) <= cap;
        let (compat12, compat21) = if tabulate {
            let mut t12 = Vec::with_capacity(nc1 * nc2);
            for &fo in &vals1 {
                for &fi in &vals2 {
                    t12.push(compat(c, fo, fi));
                }
            }
            let mut t21 = Vec::with_capacity(nc1 * nc2);
            for &fo in &vals2 {
                for &fi in &vals1 {
                    t21.push(compat(c, fo, fi));
                }
            }
            (Some(t12), Some(t21))
        } else {
            (None, None)
        };
        let expand = match &compat12 {
            Some(t12) if nc1.saturating_mul(csr2.num_lanes()) <= cap => {
                let l2 = csr2.num_lanes();
                let mut ex = Vec::with_capacity(nc1 * l2);
                for a in 0..nc1 {
                    let row = &t12[a * nc2..][..nc2];
                    // Exact copies of the tabulated factors — the expanded
                    // array introduces no new rounding.
                    ex.extend(cls2.iter().map(|&b| row[b as usize]));
                }
                // The dense fill folds its maxima over `u64` bit patterns,
                // which matches `f64` ordering only for strictly
                // non-negative finite values (`-0.0` and `inf`/NaN bit
                // patterns would misorder or poison the fold). Real
                // frequencies always yield factors in `[0, c]`; an
                // anomalous input disables the dense substrate instead of
                // risking a divergent max.
                if ex.iter().all(|v| v.is_finite() && v.is_sign_positive()) {
                    Some(ex)
                } else {
                    None
                }
            }
            _ => None,
        };
        // Group side-1 lanes by source node (counting sort, one pass) and
        // record each lane's owner — both O(L1 + n1), used by the dense
        // fill to share gathered rows and scatter `t21` accumulations.
        let n1 = csr1.num_nodes();
        let src1 = csr1.lane_src();
        let mut by_src1_off = vec![0u32; n1 + 1];
        for &u in src1 {
            by_src1_off[u as usize + 1] += 1;
        }
        for u in 0..n1 {
            by_src1_off[u + 1] += by_src1_off[u];
        }
        let mut cursor = by_src1_off.clone();
        let mut by_src1_lane = vec![0u32; src1.len()];
        for (e1, &u) in src1.iter().enumerate() {
            let slot = &mut cursor[u as usize];
            by_src1_lane[*slot as usize] = e1 as u32;
            *slot += 1;
        }
        let mut owner1 = vec![0u32; csr1.num_lanes()];
        for v1 in 0..n1 {
            for e1 in csr1.lane_range(v1) {
                owner1[e1] = v1 as u32;
            }
        }
        // Node-level artificial-frequency classes, sharing the lane-class
        // machinery: `NaN` (no artificial neighbor) dedups to its own
        // class and tabulates to a 0.0 factor, exactly what the on-the-fly
        // expression yields.
        let af1: Vec<f64> = (0..n1).map(|v| csr1.art_freq(v)).collect();
        let af2: Vec<f64> = (0..csr2.num_nodes()).map(|v| csr2.art_freq(v)).collect();
        let (acls1, avals1) = frequency_classes(&af1);
        let (acls2, avals2) = frequency_classes(&af2);
        let art = if avals1.len().saturating_mul(avals2.len()) <= cap {
            let mut tab = Vec::with_capacity(avals1.len() * avals2.len());
            for &a1 in &avals1 {
                for &a2 in &avals2 {
                    tab.push(if a1.is_nan() || a2.is_nan() {
                        0.0
                    } else {
                        compat(c, a1, a2)
                    });
                }
            }
            Some(ArtTable {
                cls1: acls1,
                cls2: acls2,
                nc2: avals2.len(),
                tab,
            })
        } else {
            None
        };
        PairContext {
            csr1,
            csr2,
            cls1,
            cls2,
            nc1,
            nc2,
            compat12,
            compat21,
            expand,
            by_src1_off,
            by_src1_lane,
            owner1,
            art,
            c,
        }
    }

    /// Whether the `C`-tables were precomputed (vs on-the-fly fallback).
    #[cfg(test)]
    pub fn tabulated(&self) -> bool {
        self.compat12.is_some()
    }

    /// Whether the dense substrate is available for this problem: the
    /// expanded class-lane factors must exist and the two maxima arrays
    /// must fit the memory cap.
    pub fn dense_available(&self) -> bool {
        if self.expand.is_none() {
            return false;
        }
        let s12 = self.csr1.num_lanes().checked_mul(self.csr2.num_nodes());
        let s21 = self.csr1.num_nodes().checked_mul(self.csr2.num_lanes());
        match (s12, s21) {
            (Some(a), Some(b)) => a.checked_add(b).is_some_and(|t| t <= MAX_DENSE_ENTRIES),
            _ => false,
        }
    }

    /// Fills the substrate for an all-zero `prev` — the first iteration of
    /// every unseeded run. Every product `C · S_prev` is zero, so both
    /// tables are zeroed wholesale; one streaming store sweep instead of
    /// the full candidate fold.
    pub fn dense_fill_zero(&self, scratch: &mut DenseScratch) {
        let (n1, n2) = (self.csr1.num_nodes(), self.csr2.num_nodes());
        let (l1, l2) = (self.csr1.num_lanes(), self.csr2.num_lanes());
        scratch.t12.clear();
        scratch.t12.resize(l1 * n2, 0.0);
        scratch.t21.clear();
        scratch.t21.resize(n1 * l2, 0.0);
        scratch.zero = true;
    }

    /// Refreshes the dense substrate from `prev` (row-major `n1 × n2`).
    ///
    /// One pass over side-1 lanes *grouped by source node*: every lane
    /// with source `u` weights the same gathered row `g[j] =
    /// S_prev(u, src2(j))`, so the row is gathered once per source. Each
    /// lane then runs two vector passes over its candidates:
    ///
    /// - **Pass A** computes the products `p[j] = C · g[j]` into the
    ///   staging buffer and elementwise-maxes them into the owning node's
    ///   `t21` row (the owner's first lane stores outright — products are
    ///   non-negative, so a store equals a max against zero). The loop has
    ///   no segment boundaries, so it vectorizes over the full lane range.
    /// - **Pass B** reduces the staged products per side-2 node segment
    ///   into the lane's `t12` row via [`max_bits_lanes`] — a
    ///   [`LANE_WIDTH`]-blocked `u64` bit-pattern max.
    ///
    /// Each candidate is thus computed once and consumed twice, and both
    /// inner loops present the autovectorizer straight-line elementwise
    /// work. All maxima fold over `u64` bit patterns: the expanded
    /// factors are validated non-negative at build time and `prev` holds
    /// non-negative similarities (the engine gates dense mode on the
    /// seed), and for non-negative IEEE doubles unsigned bit order equals
    /// value order. The max of a non-negative set is the same bit pattern
    /// in any accumulation order — so both tables hold exactly the values
    /// the seed kernel's `>` scans would produce.
    pub fn dense_fill(&self, prev: &[f64], scratch: &mut DenseScratch) {
        let Some(ex) = self.expand.as_deref() else {
            // Guarded by `dense_available` — nothing to fill without the
            // expanded factors.
            return;
        };
        let (n1, n2) = (self.csr1.num_nodes(), self.csr2.num_nodes());
        let (l1, l2) = (self.csr1.num_lanes(), self.csr2.num_lanes());
        let src2 = self.csr2.lane_src();
        let DenseScratch {
            t12,
            t21,
            gather,
            prod,
            row_written,
            zero,
        } = scratch;
        *zero = false;
        t12.resize(l1 * n2, 0.0);
        t21.resize(n1 * l2, 0.0);
        gather.resize(l2, 0.0);
        prod.resize(l2, 0.0);
        row_written.clear();
        row_written.resize(n1, false);
        // Nodes with no lanes keep an all-zero `t21` row — the value every
        // inner max over an empty candidate set takes.
        for v1 in 0..n1 {
            if self.csr1.lane_range(v1).is_empty() {
                t21[v1 * l2..][..l2].fill(0.0);
            }
        }
        for u in 0..n1 {
            let group =
                &self.by_src1_lane[self.by_src1_off[u] as usize..self.by_src1_off[u + 1] as usize];
            if group.is_empty() {
                continue;
            }
            let row = &prev[u * n2..][..n2];
            for (g, &s) in gather.iter_mut().zip(src2) {
                *g = row[s as usize];
            }
            for &e1 in group {
                let e1 = e1 as usize;
                let ce = &ex[self.cls1[e1] as usize * l2..][..l2];
                let gat = &gather[..l2];
                let stage = &mut prod[..l2];
                let out12 = &mut t12[e1 * n2..][..n2];
                let v1o = self.owner1[e1] as usize;
                let out21 = &mut t21[v1o * l2..][..l2];
                let first = !row_written[v1o];
                row_written[v1o] = true;
                // Pass A: stage products, accumulate the swapped
                // orientation. Unsegmented — free to vectorize.
                if first {
                    for ((p, o), (&cf, &g)) in stage
                        .iter_mut()
                        .zip(out21.iter_mut())
                        .zip(ce.iter().zip(gat))
                    {
                        let v = cf * g;
                        *p = v;
                        *o = v;
                    }
                } else {
                    for ((p, o), (&cf, &g)) in stage
                        .iter_mut()
                        .zip(out21.iter_mut())
                        .zip(ce.iter().zip(gat))
                    {
                        let v = cf * g;
                        *p = v;
                        let s = *o;
                        *o = if v > s { v } else { s };
                    }
                }
                // Pass B: segmented horizontal max per side-2 node
                // (running offset — CSR segments tile the lane range in
                // order), lane-blocked inside each segment.
                let mut start = 0usize;
                for (v2, slot) in out12.iter_mut().enumerate() {
                    let end = start + self.csr2.lane_range(v2).len();
                    *slot = f64::from_bits(max_bits_lanes(&stage[start..end]));
                    start = end;
                }
            }
        }
    }

    /// Evaluates formula (1) for pair `(v1, v2)` against the previous
    /// matrix (`prev`, row-major `n1 × n2`) through the given substrate,
    /// blending the label similarity — the exact arithmetic of the seed
    /// kernel.
    #[inline]
    pub fn eval_pair(
        &self,
        prev: &[f64],
        eval: &PairEval<'_>,
        v1: usize,
        v2: usize,
        alpha: f64,
        label: f64,
    ) -> f64 {
        let (s12, s21) = match *eval {
            PairEval::Sparse { prev_t } => (
                self.one_side_sparse(prev, prev_t, v1, v2, false),
                self.one_side_sparse(prev, prev_t, v1, v2, true),
            ),
            PairEval::Dense { t12, t21, .. } => (
                self.one_side_dense(t12, t21, v1, v2, false),
                self.one_side_dense(t12, t21, v1, v2, true),
            ),
            // The plain orientation never touches the transpose (see
            // `one_side_sparse`), so it runs unchanged against the dense
            // `prev`; only the swapped orientation goes through the CSR.
            PairEval::Csr { prev_t } => (
                self.one_side_sparse(prev, &[], v1, v2, false),
                self.one_side_csr(prev_t, v1, v2),
            ),
        };
        let value = alpha * (s12 + s21) / 2.0 + (1.0 - alpha) * label;
        value.clamp(0.0, 1.0)
    }

    /// The artificial-outer candidate: `S_prev(v^X, v^X) = 1`, so it
    /// contributes `C(f_o, f_i)` directly iff both sides have an
    /// artificial neighbor; all its other inner candidates carry
    /// `S_prev = 0` and cannot beat a max that starts at 0. `C` is
    /// symmetric in its frequency arguments, so one canonical `(v1, v2)`
    /// orientation serves both scan directions — usually via the
    /// class-pair table, falling back to the direct expression.
    #[inline]
    fn art_best(&self, v1: usize, v2: usize) -> f64 {
        if let Some(art) = &self.art {
            art.tab[art.cls1[v1] as usize * art.nc2 + art.cls2[v2] as usize]
        } else {
            let art_o = self.csr1.art_freq(v1);
            let art_i = self.csr2.art_freq(v2);
            if art_o.is_nan() || art_i.is_nan() {
                0.0
            } else {
                compat(self.c, art_o, art_i)
            }
        }
    }

    /// One-side similarity via the dense substrate: sum the materialized
    /// per-outer-lane maxima over the outer set, average.
    fn one_side_dense(&self, t12: &[f64], t21: &[f64], v1: usize, v2: usize, swap: bool) -> f64 {
        let (co, vo) = if swap {
            (&self.csr2, v2)
        } else {
            (&self.csr1, v1)
        };
        let entries = co.entries(vo);
        if entries.is_empty() {
            return 0.0;
        }
        let art_best = self.art_best(v1, v2);
        let mut sum = 0.0;
        if swap {
            let l2 = self.csr2.num_lanes();
            let row = &t21[v1 * l2..][..l2];
            for &ent in entries {
                // ems-lint: allow(float-taint, must stay bitwise identical to the reference oracle; O(deg) bounded terms in [0,1])
                sum += if ent == ARTIFICIAL_ENTRY {
                    art_best
                } else {
                    row[ent as usize]
                };
            }
        } else {
            let n2 = self.csr2.num_nodes();
            for &ent in entries {
                sum += if ent == ARTIFICIAL_ENTRY {
                    art_best
                } else {
                    t12[ent as usize * n2 + v2]
                };
            }
        }
        sum / entries.len() as f64
    }

    /// Row-oriented dense consume: pairs are processed in runs of
    /// consecutive `k` within one `v1` row, capped at [`DENSE_TILE`]
    /// columns so the accumulator tile and the `t12` rows it streams stay
    /// cache-resident across the whole `ents1` walk. Within a run the
    /// `s(v1, ·)` numerator accumulates entry rows of `t12` elementwise
    /// ([`add_assign_lanes`] — independent per-column adds in
    /// [`LANE_WIDTH`] blocks, in the same entry order as the pairwise
    /// scan sums) and all per-`v1` lookups hoist out of the inner loop.
    /// Retirement gaps and tile boundaries only shorten runs — a run of
    /// length 1 degenerates to exactly the pairwise evaluation.
    /// With `zero` (an all-zero substrate — the first iteration of an
    /// unseeded run), the table reads are skipped outright: every skipped
    /// term is `+ 0.0`, the bitwise identity on the non-negative
    /// accumulators, so only the artificial-entry terms remain.
    #[allow(clippy::too_many_arguments)]
    fn eval_chunk_dense(
        &self,
        prev: &[f64],
        t12: &[f64],
        t21: &[f64],
        zero: bool,
        labels: &LabelMatrix,
        alpha: f64,
        chunk: &[ActivePair],
        out: &mut Vec<f64>,
    ) -> f64 {
        let n2 = self.csr2.num_nodes();
        let l2 = self.csr2.num_lanes();
        out.clear();
        out.reserve(chunk.len());
        let mut delta = 0.0_f64;
        let mut idx = 0usize;
        while idx < chunk.len() {
            let k0 = chunk[idx].k as usize;
            let v1 = k0 / n2;
            let row_start = v1 * n2;
            let row_end = row_start + n2;
            let mut len = 1usize;
            while len < DENSE_TILE && idx + len < chunk.len() {
                let k = chunk[idx + len].k as usize;
                if k != k0 + len || k >= row_end {
                    break;
                }
                len += 1;
            }
            let v2_0 = k0 - row_start;
            let ents1 = self.csr1.entries(v1);
            let t21_row = &t21[v1 * l2..][..l2];
            let base = out.len();
            out.resize(base + len, 0.0);
            let acc = &mut out[base..base + len];
            for &ent in ents1 {
                if ent == ARTIFICIAL_ENTRY {
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += self.art_best(v1, v2_0 + j);
                    }
                } else if !zero {
                    let trow = &t12[ent as usize * n2 + v2_0..][..len];
                    add_assign_lanes(acc, trow);
                }
            }
            let len1 = ents1.len() as f64;
            for (j, a) in acc.iter_mut().enumerate() {
                let v2 = v2_0 + j;
                let s12 = if ents1.is_empty() { 0.0 } else { *a / len1 };
                let ents2 = self.csr2.entries(v2);
                let s21 = if ents2.is_empty() {
                    0.0
                } else if zero {
                    // An artificial entry is present iff the node has an
                    // artificial-edge frequency; every other term is 0.0.
                    if self.csr2.art_freq(v2).is_nan() {
                        0.0
                    } else {
                        self.art_best(v1, v2) / ents2.len() as f64
                    }
                } else {
                    let mut sum = 0.0;
                    for &ent in ents2 {
                        // ems-lint: allow(float-taint, must stay bitwise identical to the reference oracle; O(deg) bounded terms in [0,1])
                        sum += if ent == ARTIFICIAL_ENTRY {
                            self.art_best(v1, v2)
                        } else {
                            t21_row[ent as usize]
                        };
                    }
                    sum / ents2.len() as f64
                };
                let label = labels.get(v1, v2);
                let value = (alpha * (s12 + s21) / 2.0 + (1.0 - alpha) * label).clamp(0.0, 1.0);
                let k = row_start + v2;
                delta = delta.max((value - prev[k]).abs());
                *a = value;
            }
            idx += len;
        }
        delta
    }

    /// One-side similarity `s(v1, v2)` (or `s(v2, v1)` when `swap`) by
    /// direct per-pair scanning: for each outer neighbor, the best
    /// compatibility-weighted previous similarity over the inner
    /// neighbors, averaged over the outer set. Both orientations read
    /// stride-1 memory: the plain scan walks a row of `prev`, the swapped
    /// scan a row of the transpose.
    fn one_side_sparse(
        &self,
        prev: &[f64],
        prev_t: &[f64],
        v1: usize,
        v2: usize,
        swap: bool,
    ) -> f64 {
        let (co, ci, cls_o, cls_i, nc_i, table) = if swap {
            (
                &self.csr2,
                &self.csr1,
                &self.cls2,
                &self.cls1,
                self.nc1,
                self.compat21.as_deref(),
            )
        } else {
            (
                &self.csr1,
                &self.csr2,
                &self.cls1,
                &self.cls2,
                self.nc2,
                self.compat12.as_deref(),
            )
        };
        let (vo, vi) = if swap { (v2, v1) } else { (v1, v2) };
        let entries = co.entries(vo);
        if entries.is_empty() {
            return 0.0;
        }
        let art_best = self.art_best(v1, v2);
        let inner = ci.lane_range(vi);
        let inner_src = &ci.lane_src()[inner.clone()];
        let inner_cls = &cls_i[inner.clone()];
        let inner_freq = &ci.lane_freq()[inner.clone()];
        // The outer node indexes a row of `prev` (plain) or of the
        // transpose (swapped); either way the inner gather is stride-1
        // within that row.
        let (matrix, row_len) = if swap {
            (prev_t, self.csr1.num_nodes())
        } else {
            (prev, self.csr2.num_nodes())
        };
        let mut sum = 0.0;
        for &ent in entries {
            let best = if ent == ARTIFICIAL_ENTRY {
                art_best
            } else {
                let lane = ent as usize;
                let row = &matrix[co.lane_src()[lane] as usize * row_len..][..row_len];
                let mut best = 0.0_f64;
                match table {
                    Some(t) => {
                        let c_row = &t[cls_o[lane] as usize * nc_i..][..nc_i];
                        for (&cl, &src) in inner_cls.iter().zip(inner_src) {
                            let s_prev = row[src as usize];
                            if s_prev <= best {
                                // C < 1, so C * s_prev < s_prev ≤ best.
                                continue;
                            }
                            let cand = c_row[cl as usize] * s_prev;
                            if cand > best {
                                best = cand;
                            }
                        }
                    }
                    None => {
                        let f_o = co.lane_freq()[lane];
                        for (&f_i, &src) in inner_freq.iter().zip(inner_src) {
                            let s_prev = row[src as usize];
                            if s_prev <= best {
                                continue;
                            }
                            let cand = compat(self.c, f_o, f_i) * s_prev;
                            if cand > best {
                                best = cand;
                            }
                        }
                    }
                }
                best
            };
            // ems-lint: allow(float-taint, must stay bitwise identical to the reference oracle; O(deg) bounded terms in [0,1])
            sum += best;
        }
        sum / entries.len() as f64
    }

    /// The swapped orientation `s(v2, v1)` against a CSR of the transposed
    /// previous matrix. Mirrors `one_side_sparse` with `swap = true`,
    /// fetching each `S_prev` by binary search in the outer node's CSR row
    /// instead of a dense stride-1 gather. Absent entries read as exact
    /// `+0.0`, which the `s_prev <= best` guard skips (`best` starts at
    /// `0.0` and never decreases) just as it skips stored zeros — so the
    /// sequence of `best` updates, and hence every floating-point result,
    /// is identical to the dense-transpose scan over the same matrix.
    fn one_side_csr(&self, prev_t: &SparseSim, v1: usize, v2: usize) -> f64 {
        let (co, ci) = (&self.csr2, &self.csr1);
        let entries = co.entries(v2);
        if entries.is_empty() {
            return 0.0;
        }
        let art_best = self.art_best(v1, v2);
        let inner = ci.lane_range(v1);
        let inner_src = &ci.lane_src()[inner.clone()];
        let inner_cls = &self.cls1[inner.clone()];
        let inner_freq = &ci.lane_freq()[inner.clone()];
        let table = self.compat21.as_deref();
        let mut sum = 0.0;
        for &ent in entries {
            let best = if ent == ARTIFICIAL_ENTRY {
                art_best
            } else {
                let lane = ent as usize;
                let (row_cols, row_vals) = prev_t.row(co.lane_src()[lane] as usize);
                let fetch = |src: u32| match row_cols.binary_search(&src) {
                    Ok(i) => row_vals[i],
                    Err(_) => 0.0,
                };
                let mut best = 0.0_f64;
                match table {
                    Some(t) => {
                        let c_row = &t[self.cls2[lane] as usize * self.nc1..][..self.nc1];
                        for (&cl, &src) in inner_cls.iter().zip(inner_src) {
                            let s_prev = fetch(src);
                            if s_prev <= best {
                                // C < 1, so C * s_prev < s_prev ≤ best.
                                continue;
                            }
                            let cand = c_row[cl as usize] * s_prev;
                            if cand > best {
                                best = cand;
                            }
                        }
                    }
                    None => {
                        let f_o = co.lane_freq()[lane];
                        for (&f_i, &src) in inner_freq.iter().zip(inner_src) {
                            let s_prev = fetch(src);
                            if s_prev <= best {
                                continue;
                            }
                            let cand = compat(self.c, f_o, f_i) * s_prev;
                            if cand > best {
                                best = cand;
                            }
                        }
                    }
                }
                best
            };
            // ems-lint: allow(float-taint, must stay bitwise identical to the reference oracle; O(deg) bounded terms in [0,1])
            sum += best;
        }
        sum / entries.len() as f64
    }
}

/// Evaluates one worklist chunk against `prev` through the given
/// substrate, writing the new values into `out` (cleared first, one slot
/// per chunk entry) and returning the chunk's maximum absolute delta.
/// Pure — safe to run on any shard layout.
///
/// The chunk must be ascending in `k` (worklists are built row-major and
/// only ever shrink in place, so every contiguous shard qualifies); that
/// lets the pair coordinates advance incrementally instead of paying an
/// integer division per pair.
pub(crate) fn eval_chunk(
    ctx: &PairContext,
    prev: &[f64],
    eval: &PairEval<'_>,
    labels: &LabelMatrix,
    alpha: f64,
    chunk: &[ActivePair],
    out: &mut Vec<f64>,
) -> f64 {
    if let PairEval::Dense { t12, t21, zero } = *eval {
        return ctx.eval_chunk_dense(prev, t12, t21, zero, labels, alpha, chunk, out);
    }
    let n2 = ctx.csr2.num_nodes();
    out.clear();
    out.reserve(chunk.len());
    let Some(first) = chunk.first() else {
        return 0.0;
    };
    let mut v1 = first.k as usize / n2;
    let mut row_end = (v1 + 1) * n2;
    let mut delta = 0.0_f64;
    for ap in chunk {
        let k = ap.k as usize;
        debug_assert!(k >= row_end - n2, "chunk must be ascending in k");
        while k >= row_end {
            v1 += 1;
            row_end += n2;
        }
        let v2 = k - (row_end - n2);
        let value = ctx.eval_pair(prev, eval, v1, v2, alpha, labels.get(v1, v2));
        delta = delta.max((value - prev[k]).abs());
        out.push(value);
    }
    delta
}

/// Writes the transpose of row-major `src` (`n1 × n2`) into `dst`
/// (`n2 × n1`) — exact copies, refreshed by the engine each iteration so
/// the sparse path's swapped scan orientation reads contiguous memory.
pub(crate) fn transpose_into(src: &[f64], n1: usize, n2: usize, dst: &mut [f64]) {
    debug_assert_eq!(src.len(), n1 * n2);
    debug_assert_eq!(dst.len(), n1 * n2);
    for v1 in 0..n1 {
        let row = &src[v1 * n2..][..n2];
        for (v2, &s) in row.iter().enumerate() {
            dst[v2 * n1 + v1] = s;
        }
    }
}

/// Resolves a thread-count knob: `0` means all available parallelism,
/// and an explicit request above host parallelism is clamped (unless
/// `oversubscribe` opts out) — extra workers on an already-full host only
/// add scheduling pressure; results are bit-identical at any width. A
/// clamp is reported so the caller can record the warning in
/// [`crate::stats::RunStats::thread_clamp`].
pub(crate) fn resolve_threads(knob: usize, oversubscribe: bool) -> (usize, Option<ThreadClamp>) {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if knob == 0 {
        (host, None)
    } else if knob > host && !oversubscribe {
        (
            host,
            Some(ThreadClamp {
                requested: knob,
                clamped_to: host,
            }),
        )
    } else {
        (knob, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_depgraph::DependencyGraph;

    fn small_graphs() -> (DependencyGraph, DependencyGraph) {
        let g1 = DependencyGraph::from_parts(
            vec!["a".into(), "b".into(), "c".into()],
            vec![0.5, 1.0, 1.0],
            &[(0, 1, 0.5), (1, 2, 1.0)],
        );
        let g2 = DependencyGraph::from_parts(
            vec!["x".into(), "y".into()],
            vec![1.0, 0.7],
            &[(0, 1, 0.7)],
        );
        (g1, g2)
    }

    #[test]
    fn frequency_classes_deduplicate_by_bits() {
        let (lanes, classes) = frequency_classes(&[0.5, 1.0, 0.5, 0.25]);
        assert_eq!(lanes, vec![0, 1, 0, 2]);
        assert_eq!(classes, vec![0.5, 1.0, 0.25]);
        let (lanes, classes) = frequency_classes(&[]);
        assert!(lanes.is_empty() && classes.is_empty());
    }

    /// All three evaluation paths — dense substrate, sparse tabulated,
    /// sparse on-the-fly — must agree bitwise on every pair.
    #[test]
    fn all_eval_paths_are_bit_identical() {
        let (g1, g2) = small_graphs();
        let with = PairContext::new(g1.pre_csr(), g2.pre_csr(), 0.8);
        let without = PairContext::with_cap(g1.pre_csr(), g2.pre_csr(), 0.8, 0);
        assert!(with.tabulated());
        assert!(!without.tabulated());
        assert!(with.dense_available());
        assert!(!without.dense_available());
        let labels = LabelMatrix::zeros(3, 2);
        // A non-trivial previous matrix exercises the max scans.
        let prev = [0.9, 0.2, 0.35, 0.8, 0.05, 0.6];
        let mut prev_t = vec![0.0; 6];
        transpose_into(&prev, 3, 2, &mut prev_t);
        let sparse = PairEval::Sparse { prev_t: &prev_t };
        let mut scratch = DenseScratch::default();
        with.dense_fill(&prev, &mut scratch);
        let dense = PairEval::Dense {
            t12: &scratch.t12,
            t21: &scratch.t21,
            zero: false,
        };
        let prev_mat = crate::sim::SimMatrix::from_raw(3, 2, prev.to_vec());
        let prev_t_csr = SparseSim::from_dense_transposed(&prev_mat, 0.0);
        let csr = PairEval::Csr {
            prev_t: &prev_t_csr,
        };
        for v1 in 0..3 {
            for v2 in 0..2 {
                let label = labels.get(v1, v2);
                let a = with.eval_pair(&prev, &sparse, v1, v2, 1.0, label);
                let b = without.eval_pair(&prev, &sparse, v1, v2, 1.0, label);
                let c = with.eval_pair(&prev, &dense, v1, v2, 1.0, label);
                let d = with.eval_pair(&prev, &csr, v1, v2, 1.0, label);
                let e = without.eval_pair(&prev, &csr, v1, v2, 1.0, label);
                assert_eq!(a.to_bits(), b.to_bits(), "sparse paths at ({v1},{v2})");
                assert_eq!(a.to_bits(), c.to_bits(), "dense path at ({v1},{v2})");
                assert_eq!(a.to_bits(), d.to_bits(), "csr path at ({v1},{v2})");
                assert_eq!(a.to_bits(), e.to_bits(), "csr fallback at ({v1},{v2})");
            }
        }
    }

    #[test]
    fn compat_table_layouts_transpose_each_other() {
        let (g1, g2) = small_graphs();
        let ctx = PairContext::new(g1.pre_csr(), g2.pre_csr(), 0.8);
        let (t12, t21) = (ctx.compat12.unwrap(), ctx.compat21.unwrap());
        for c1 in 0..ctx.nc1 {
            for c2 in 0..ctx.nc2 {
                // C is symmetric in its frequency arguments, so the two
                // orientations must hold bitwise-equal values.
                assert_eq!(
                    t12[c1 * ctx.nc2 + c2].to_bits(),
                    t21[c2 * ctx.nc1 + c1].to_bits()
                );
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2 × 3
        let mut t = vec![0.0; 6];
        transpose_into(&src, 2, 3, &mut t);
        assert_eq!(t, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        let mut back = vec![0.0; 6];
        transpose_into(&t, 3, 2, &mut back);
        assert_eq!(back.as_slice(), src.as_slice());
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        let (auto, clamp) = resolve_threads(0, false);
        assert!(auto >= 1);
        assert!(clamp.is_none(), "auto-width is never a clamp");
        // `0` means "all available parallelism" even with the escape hatch.
        assert_eq!(resolve_threads(0, true), (auto, None));
    }

    #[test]
    fn resolve_threads_clamps_oversubscription_and_reports_it() {
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // At or below host parallelism: honored verbatim, no warning.
        assert_eq!(resolve_threads(1, false), (1, None));
        assert_eq!(resolve_threads(host, false), (host, None));
        // Above: clamped, and the clamp names both sides of the decision.
        let over = host + 7;
        assert_eq!(
            resolve_threads(over, false),
            (
                host,
                Some(ThreadClamp {
                    requested: over,
                    clamped_to: host,
                })
            )
        );
        // The opt-out spawns the requested width and reports nothing.
        assert_eq!(resolve_threads(over, true), (over, None));
    }
}
