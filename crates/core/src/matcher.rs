//! The user-facing EMS matcher: builds dependency graphs, runs the forward
//! and backward similarity engines and aggregates them (Section 3.6).

use crate::engine::{Budget, Engine, RunOptions, RunOutput, RunStats};
use crate::error::CoreError;
use crate::params::{Direction, EmsParams, LabelMeasure};
use crate::sim::SimMatrix;
use ems_depgraph::DependencyGraph;
use ems_events::{EventId, EventLog};
use ems_labels::{ExactName, LabelMatrix, LabelSimilarity, QgramCosine};

/// Combines the outputs of a forward and a backward run into a
/// [`MatchOutcome`] (Section 3.6 aggregation). Shared by [`Ems`] and the
/// session's solve stage so both paths aggregate identically.
pub(crate) fn aggregate_directions(
    params: &EmsParams,
    fwd: RunOutput,
    bwd: RunOutput,
) -> MatchOutcome {
    let mut stats = fwd.stats.clone();
    stats.merge(&bwd.stats);
    let agg = params.aggregation;
    let mut similarity = SimMatrix::zeros(fwd.sim.rows(), fwd.sim.cols());
    for (i, j, f) in fwd.sim.iter() {
        similarity.set(i, j, agg.combine(f, bwd.sim.get(i, j)));
    }
    MatchOutcome {
        similarity,
        forward: fwd.sim,
        backward: bwd.sim,
        stats,
    }
}

/// The label matrix EMS uses for two logs under `params`: the configured
/// measure when labels carry weight (`α < 1`), zeros otherwise.
pub(crate) fn label_matrix_for(params: &EmsParams, l1: &EventLog, l2: &EventLog) -> LabelMatrix {
    if params.alpha < 1.0 {
        let names1 = alphabet(l1);
        let names2 = alphabet(l2);
        match params.label_measure {
            LabelMeasure::QgramCosine => {
                LabelMatrix::compute(&names1, &names2, &QgramCosine::default())
            }
            LabelMeasure::ExactName => LabelMatrix::compute(&names1, &names2, &ExactName),
        }
    } else {
        LabelMatrix::zeros(l1.alphabet_size(), l2.alphabet_size())
    }
}

/// The result of matching two logs or graphs.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// The aggregated (forward + backward averaged) similarity over real
    /// events — rows index log 1's events, columns log 2's.
    pub similarity: SimMatrix,
    /// The forward similarity alone (Definition 2).
    pub forward: SimMatrix,
    /// The backward similarity alone (Section 3.6).
    pub backward: SimMatrix,
    /// Combined work counters of both runs.
    pub stats: RunStats,
}

/// The Event Matching Similarity matcher.
///
/// ```
/// use ems_core::{Ems, EmsParams};
/// use ems_events::EventLog;
///
/// let mut l1 = EventLog::new();
/// l1.push_trace(["a", "b"]);
/// let mut l2 = EventLog::new();
/// l2.push_trace(["x", "y"]);
/// let outcome = Ems::new(EmsParams::structural()).match_logs(&l1, &l2);
/// // Identical structure: the diagonal dominates.
/// assert!(outcome.similarity.get(0, 0) > outcome.similarity.get(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Ems {
    params: EmsParams,
}

impl Ems {
    /// Creates a matcher with the given parameters.
    ///
    /// # Panics
    /// If the parameters are invalid (see [`EmsParams::validate`]). Use
    /// [`try_new`](Self::try_new) for a fallible variant.
    #[allow(clippy::panic)] // documented contract panic; try_new is the fallible path
    pub fn new(params: EmsParams) -> Self {
        match Self::try_new(params) {
            Ok(ems) => ems,
            // ems-lint: allow(panic-surface, documented contract panic; try_new is the fallible path)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new): returns
    /// [`CoreError::InvalidParams`] instead of panicking.
    pub fn try_new(params: EmsParams) -> Result<Self, CoreError> {
        params.validate().map_err(CoreError::InvalidParams)?;
        Ok(Ems { params })
    }

    /// The matcher's parameters.
    pub fn params(&self) -> &EmsParams {
        &self.params
    }

    /// Matches two event logs end-to-end: builds the dependency graphs
    /// (Definition 1 + artificial events) and the label matrix (q-gram
    /// cosine when `α < 1`, zeros otherwise), then aggregates forward and
    /// backward similarities.
    pub fn match_logs(&self, l1: &EventLog, l2: &EventLog) -> MatchOutcome {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let labels = self.label_matrix(l1, l2);
        self.match_graphs(&g1, &g2, &labels)
    }

    /// As [`match_logs`](Self::match_logs) but with a caller-chosen label
    /// similarity measure.
    pub fn match_logs_with<M: LabelSimilarity>(
        &self,
        l1: &EventLog,
        l2: &EventLog,
        measure: &M,
    ) -> MatchOutcome {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let names1 = alphabet(l1);
        let names2 = alphabet(l2);
        let labels = LabelMatrix::compute(&names1, &names2, measure);
        self.match_graphs(&g1, &g2, &labels)
    }

    /// As [`match_logs`](Self::match_logs) under a resource [`Budget`].
    ///
    /// The budget applies to each direction's run separately (so the total
    /// spend is at most twice the limits). When a limit trips, the affected
    /// run finishes its remaining pairs with the closed-form estimation of
    /// Section 3.5 and the outcome's [`RunStats::degraded`] flag is set —
    /// the similarity matrix is always fully populated and usable.
    pub fn match_logs_budgeted(
        &self,
        l1: &EventLog,
        l2: &EventLog,
        budget: &Budget,
    ) -> MatchOutcome {
        let g1 = DependencyGraph::from_log(l1);
        let g2 = DependencyGraph::from_log(l2);
        let labels = self.label_matrix(l1, l2);
        let options = RunOptions {
            budget: budget.clone(),
            ..Default::default()
        };
        self.match_graphs_opts(&g1, &g2, &labels, &options, &options)
    }

    /// Matches two prebuilt dependency graphs with a precomputed label
    /// matrix (shape `g1.num_real() × g2.num_real()`).
    ///
    /// # Panics
    /// If the label matrix shape does not match the graphs. Use
    /// [`try_match_graphs`](Self::try_match_graphs) for a fallible variant.
    pub fn match_graphs(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
    ) -> MatchOutcome {
        self.match_graphs_opts(
            g1,
            g2,
            labels,
            &RunOptions::default(),
            &RunOptions::default(),
        )
    }

    /// Fallible variant of [`match_graphs`](Self::match_graphs): returns
    /// [`CoreError::LabelShapeMismatch`] instead of panicking.
    pub fn try_match_graphs(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
    ) -> Result<MatchOutcome, CoreError> {
        self.try_match_graphs_opts(
            g1,
            g2,
            labels,
            &RunOptions::default(),
            &RunOptions::default(),
        )
    }

    /// Full-control variant: separate [`RunOptions`] for the forward and
    /// backward runs (the composite matcher threads seeds and abort
    /// thresholds through here).
    ///
    /// # Panics
    /// If the label matrix or a seed's shape does not match the graphs. Use
    /// [`try_match_graphs_opts`](Self::try_match_graphs_opts) for a
    /// fallible variant.
    #[allow(clippy::panic)] // documented contract panic; try_match_graphs_opts is the fallible path
    pub fn match_graphs_opts(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
        fwd_options: &RunOptions,
        bwd_options: &RunOptions,
    ) -> MatchOutcome {
        match self.try_match_graphs_opts(g1, g2, labels, fwd_options, bwd_options) {
            Ok(out) => out,
            // ems-lint: allow(panic-surface, documented contract panic; try_match_graphs_opts is the fallible path)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`match_graphs_opts`](Self::match_graphs_opts).
    pub fn try_match_graphs_opts(
        &self,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
        labels: &LabelMatrix,
        fwd_options: &RunOptions,
        bwd_options: &RunOptions,
    ) -> Result<MatchOutcome, CoreError> {
        let fwd = Engine::try_new(g1, g2, labels, &self.params, Direction::Forward)?
            .try_run(fwd_options)?;
        let bwd = Engine::try_new(g1, g2, labels, &self.params, Direction::Backward)?
            .try_run(bwd_options)?;
        Ok(aggregate_directions(&self.params, fwd, bwd))
    }

    /// The label matrix this matcher would use for two logs: q-gram cosine
    /// when labels carry weight (`α < 1`), zeros otherwise.
    pub fn label_matrix(&self, l1: &EventLog, l2: &EventLog) -> LabelMatrix {
        label_matrix_for(&self.params, l1, l2)
    }
}

fn alphabet(log: &EventLog) -> Vec<String> {
    (0..log.alphabet_size())
        .map(|i| log.name_of(EventId::from_index(i)).to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dislocated_pair() -> (EventLog, EventLog) {
        // Mirrors Example 1: log 1 starts directly with the payment XOR
        // (40% cash / 60% card); log 2 has an extra "order accepted" step
        // before the same XOR, and opaque names.
        let mut l1 = EventLog::new();
        l1.push_trace(["cash", "validate", "ship"]);
        l1.push_trace(["cash", "validate", "ship"]);
        l1.push_trace(["card", "validate", "ship"]);
        l1.push_trace(["card", "validate", "ship"]);
        l1.push_trace(["card", "validate", "ship"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["e0", "e1", "e3", "e4"]);
        l2.push_trace(["e0", "e1", "e3", "e4"]);
        l2.push_trace(["e0", "e2", "e3", "e4"]);
        l2.push_trace(["e0", "e2", "e3", "e4"]);
        l2.push_trace(["e0", "e2", "e3", "e4"]);
        (l1, l2)
    }

    #[test]
    fn dislocated_events_align_shifted() {
        let (l1, l2) = dislocated_pair();
        let out = Ems::new(EmsParams::structural()).match_logs(&l1, &l2);
        // "cash" (f = 0.4) should match e1 (f = 0.4, second position), not
        // e0 (f = 1.0, first position): the artificial event lets "cash"
        // start mid-trace, and matching frequencies seal it (Example 4).
        let cash = l1.id_of("cash").unwrap().index();
        let e0 = l2.id_of("e0").unwrap().index();
        let e1 = l2.id_of("e1").unwrap().index();
        assert!(
            out.similarity.get(cash, e1) > out.similarity.get(cash, e0),
            "cash~e1 {} vs cash~e0 {}",
            out.similarity.get(cash, e1),
            out.similarity.get(cash, e0)
        );
    }

    #[test]
    fn outcome_contains_both_directions() {
        let (l1, l2) = dislocated_pair();
        let out = Ems::new(EmsParams::structural()).match_logs(&l1, &l2);
        let manual = out.forward.mean_with(&out.backward);
        assert!(out.similarity.max_abs_diff(&manual) < 1e-15);
        assert!(out.stats.formula_evals > 0);
    }

    #[test]
    fn aggregation_variants_are_honored() {
        use crate::params::Aggregation;
        let (l1, l2) = dislocated_pair();
        let run = |agg: Aggregation| {
            let mut p = EmsParams::structural();
            p.aggregation = agg;
            Ems::new(p).match_logs(&l1, &l2)
        };
        let avg = run(Aggregation::Average);
        let min = run(Aggregation::Min);
        let max = run(Aggregation::Max);
        let fwd = run(Aggregation::ForwardOnly);
        for (i, j, v) in avg.similarity.iter() {
            assert!(min.similarity.get(i, j) <= v + 1e-12);
            assert!(max.similarity.get(i, j) + 1e-12 >= v);
        }
        assert!(fwd.similarity.max_abs_diff(&fwd.forward) < 1e-15);
        // Weighted(1.0) == forward only.
        let w1 = run(Aggregation::Weighted(1.0));
        assert!(w1.similarity.max_abs_diff(&w1.forward) < 1e-15);
    }

    #[test]
    fn label_weight_uses_qgram_cosine() {
        let mut l1 = EventLog::new();
        l1.push_trace(["Ship Goods", "Pay"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["Pay", "Ship Goods"]);
        let structural = Ems::new(EmsParams::structural()).match_logs(&l1, &l2);
        let labeled = Ems::new(EmsParams::with_labels(0.5)).match_logs(&l1, &l2);
        let ship1 = l1.id_of("Ship Goods").unwrap().index();
        let ship2 = l2.id_of("Ship Goods").unwrap().index();
        assert!(labeled.similarity.get(ship1, ship2) > structural.similarity.get(ship1, ship2));
    }

    #[test]
    fn custom_measure_is_honored() {
        use ems_labels::Levenshtein;
        let mut l1 = EventLog::new();
        l1.push_trace(["abc"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["abd"]);
        let out = Ems::new(EmsParams::with_labels(0.0)) // labels only
            .match_logs_with(&l1, &l2, &Levenshtein);
        assert!((out.similarity.get(0, 0) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid EMS parameters")]
    fn invalid_params_panic_at_construction() {
        let p = EmsParams {
            c: 2.0,
            ..EmsParams::default()
        };
        let _ = Ems::new(p);
    }

    #[test]
    fn try_new_returns_typed_error() {
        let p = EmsParams {
            alpha: -0.5,
            ..EmsParams::default()
        };
        assert!(matches!(Ems::try_new(p), Err(CoreError::InvalidParams(_))));
        assert!(Ems::try_new(EmsParams::structural()).is_ok());
    }

    #[test]
    fn try_match_graphs_rejects_label_shape_mismatch() {
        let (l1, l2) = dislocated_pair();
        let g1 = DependencyGraph::from_log(&l1);
        let g2 = DependencyGraph::from_log(&l2);
        let labels = LabelMatrix::zeros(1, 1);
        let ems = Ems::new(EmsParams::structural());
        assert!(matches!(
            ems.try_match_graphs(&g1, &g2, &labels),
            Err(CoreError::LabelShapeMismatch { .. })
        ));
    }

    #[test]
    fn budgeted_match_degrades_but_stays_usable() {
        let (l1, l2) = dislocated_pair();
        let ems = Ems::new(EmsParams::structural());
        let full = ems.match_logs(&l1, &l2);
        assert!(!full.stats.degraded);
        let budget = crate::Budget {
            max_iterations: Some(0),
            ..Default::default()
        };
        let out = ems.match_logs_budgeted(&l1, &l2, &budget);
        assert!(out.stats.degraded);
        assert_eq!(out.stats.iterations, 0);
        assert!(out.stats.estimated_pairs > 0);
        assert_eq!(out.similarity.rows(), full.similarity.rows());
        for (_, _, v) in out.similarity.iter() {
            assert!((0.0..=1.0).contains(&v));
        }
        // An unlimited budget is the plain match.
        let same = ems.match_logs_budgeted(&l1, &l2, &crate::Budget::unlimited());
        assert!(same.similarity.max_abs_diff(&full.similarity) < 1e-15);
    }
}
