//! Run accounting: seeds, budgets, options, phase timings and work counters.
//!
//! These types used to live inside the engine module; they are the *solve*
//! stage's control and reporting surface, shared by the engine kernels, the
//! [`crate::session::MatchSession`] and the composite matcher. They are
//! re-exported from [`crate::engine`] for backwards compatibility.

use crate::sim::SimMatrix;
use ems_obs::Recorder;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Initial state carried into a run — used by the composite matcher to reuse
/// similarities that Proposition 4 proves unchanged, and by
/// [`crate::session::MatchSession`] to warm-start re-matches from a prior
/// fixpoint (sound per Theorem 1's monotone unique fixpoint).
#[derive(Debug, Clone)]
pub struct Seed {
    /// Initial values: frozen pairs hold their known-correct similarities,
    /// all other pairs must start at or below their fixpoint values (the
    /// `S^0` of Section 3.2 — monotone convergence relies on starting from
    /// below; `0` and any previously converged matrix of the same pair
    /// space both qualify).
    pub values: SimMatrix,
    /// Per-pair freeze mask (row-major, `n1 * n2`): `true` pairs are never
    /// updated but still feed their values into neighbors' computations.
    pub frozen: Vec<bool>,
}

/// A resource budget for one similarity run.
///
/// Each limit is independent and optional; the default budget is unlimited.
/// Budgets are checked *between* iterations: the iteration count is never
/// exceeded, while formula evaluations and wall-clock time may overshoot by
/// at most one iteration's worth of work. When any limit trips, the exact
/// phase stops and the remaining non-converged pairs are finished with the
/// closed-form estimation of Section 3.5, so an exhausted run still returns
/// a usable similarity matrix — flagged via [`RunStats::degraded`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum exact iterations.
    pub max_iterations: Option<usize>,
    /// Maximum evaluations of formula (1) ([`RunStats::formula_evals`]).
    pub max_formula_evals: Option<u64>,
    /// Maximum elapsed wall-clock time.
    pub wall_clock: Option<Duration>,
}

impl Budget {
    /// An unlimited budget (all limits off).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// True when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_iterations.is_none()
            && self.max_formula_evals.is_none()
            && self.wall_clock.is_none()
    }

    /// True when the observed work exceeds any limit.
    pub(crate) fn exhausted(
        &self,
        iterations: usize,
        formula_evals: u64,
        started: Instant,
    ) -> bool {
        self.max_iterations.is_some_and(|m| iterations >= m)
            || self.max_formula_evals.is_some_and(|m| formula_evals >= m)
            || self.wall_clock.is_some_and(|m| started.elapsed() >= m)
    }
}

/// Options for one similarity run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Reused values + freeze mask (Proposition 4).
    pub seed: Option<Seed>,
    /// Abort threshold for upper-bound pruning (Section 4.3): after each
    /// iteration the run computes the average of the per-pair *upper bounds*;
    /// if that optimistic average is already below this threshold, the run
    /// can never beat it and stops early with [`RunStats::aborted`] set.
    pub abort_below: Option<f64>,
    /// Resource budget; exhaustion degrades gracefully to estimation.
    pub budget: Budget,
    /// Per-run thread-count override; `None` defers to
    /// [`crate::EmsParams::threads`]. `Some(1)` forces the serial path,
    /// `Some(0)` uses all available parallelism. An explicit request
    /// larger than the host's available parallelism is clamped down and
    /// reported via [`RunStats::thread_clamp`] unless
    /// [`oversubscribe`](Self::oversubscribe) is set.
    pub threads: Option<usize>,
    /// Escape hatch for the thread clamp: when `true`, an explicit thread
    /// request larger than the host's available parallelism spawns that
    /// many workers anyway. Meant for bit-equivalence tests and benchmarks
    /// that deliberately exercise the sharded path on small hosts; results
    /// are bit-identical either way, only scheduling pressure differs.
    pub oversubscribe: bool,
    /// Optional telemetry sink. When set, the run emits per-iteration
    /// convergence records, budget/abort events, phase spans and work
    /// counters. The recorded content (except span durations) is
    /// bit-identical across the reference kernel, the serial worklist
    /// kernel and the parallel kernel at any thread count: the mean delta
    /// is Neumaier-summed over the evaluated pair set in ascending pair
    /// order, which both kernels share.
    pub recorder: Option<Arc<Recorder>>,
}

/// Record of a thread request clamped to the host's parallelism — see
/// [`RunOptions::threads`]. Carried in [`RunStats::thread_clamp`] so
/// callers (and telemetry) can see that the pool ran narrower than asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadClamp {
    /// The explicit thread count the caller asked for.
    pub requested: usize,
    /// The host parallelism the pool actually used.
    pub clamped_to: usize,
}

/// Wall-clock time spent in each phase of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Building the kernel substrate (longest distances, CSR export,
    /// compatibility tables). Attributed exactly once to whoever performed
    /// the build: a standalone [`crate::engine::Engine`] charges it to its
    /// own runs, while a [`crate::session::MatchSession`] owns the build
    /// and reports it at session level
    /// ([`crate::session::SessionStats::setup`]) — runs executed against a
    /// cached substrate report `setup == 0` here, so merging their stats
    /// never double-counts shared setup work.
    pub setup: Duration,
    /// The exact fixpoint iteration.
    pub exact: Duration,
    /// The closed-form estimation tail (zero when no estimation ran).
    pub estimation: Duration,
}

impl PhaseTimes {
    /// Merge is **by sum**, phase by phase — the right semantics for
    /// aggregating *distinct* work (forward + backward engines, or
    /// composite candidate runs). Two caveats remain for standalone
    /// engines:
    ///
    /// * a standalone [`crate::engine::Engine`] pays `setup` once but
    ///   *reports* it with every run, so merging N runs of one engine
    ///   still counts that setup N times (the session path fixes this by
    ///   attributing setup once at session level — see [`PhaseTimes::setup`]);
    /// * runs that executed concurrently sum to more than the wall-clock
    ///   interval they occupied; the merged total is CPU-time-like.
    ///
    /// See `merge_sums_phase_times_documenting_double_count` and
    /// `session_attributes_setup_once` in the tests for the pinned
    /// behavior of both paths.
    pub(crate) fn merge(&mut self, other: &PhaseTimes) {
        self.setup += other.setup;
        self.exact += other.exact;
        self.estimation += other.estimation;
    }
}

/// Counters describing how much work a run performed — these are the
/// quantities Figures 6 and 12 of the paper report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Iterations executed (exact phase).
    pub iterations: usize,
    /// Number of evaluations of formula (1) — one per non-skipped pair per
    /// iteration. This is the paper's "total number of iterations w.r.t. all
    /// event pairs".
    pub formula_evals: u64,
    /// Evaluations skipped by early-convergence pruning.
    pub pruned_evals: u64,
    /// Evaluations skipped because the pair was frozen by a [`Seed`].
    pub frozen_evals: u64,
    /// Pairs whose final value came from the closed-form estimation.
    pub estimated_pairs: u64,
    /// Pairs dropped to zero by δ-thresholded sparsification
    /// ([`crate::EmsParams::sparse_delta`]); `0` when sparsification is
    /// disabled or never fired.
    pub sparsified_pairs: u64,
    /// Largest shard count any iteration's evaluation used — `1` for a
    /// fully serial run, up to the resolved thread count when the
    /// worklist stayed above the pairs-per-shard floor. Pool-utilization
    /// telemetry only; never affects results.
    pub pool_shards: u64,
    /// Whether the run stopped early due to `abort_below`.
    pub aborted: bool,
    /// Whether a [`Budget`] limit tripped and the run fell back to the
    /// closed-form estimation for pairs that had not yet converged.
    pub degraded: bool,
    /// Set when an explicit [`RunOptions::threads`] request exceeded the
    /// host's available parallelism and was clamped; `None` when the
    /// request was honored as given.
    pub thread_clamp: Option<ThreadClamp>,
    /// Wall-clock time per phase (setup / exact / estimation).
    pub phase_times: PhaseTimes,
}

impl RunStats {
    /// Merges counters from another run (e.g. forward + backward):
    /// `iterations` takes the max, the work counters and flags accumulate,
    /// and `phase_times` merges **by sum** — see [`PhaseTimes`] for when
    /// summed setups represent distinct work versus double-counted shared
    /// work.
    pub fn merge(&mut self, other: &RunStats) {
        self.iterations = self.iterations.max(other.iterations);
        self.formula_evals += other.formula_evals;
        self.pruned_evals += other.pruned_evals;
        self.frozen_evals += other.frozen_evals;
        self.estimated_pairs += other.estimated_pairs;
        self.sparsified_pairs += other.sparsified_pairs;
        self.pool_shards = self.pool_shards.max(other.pool_shards);
        self.aborted |= other.aborted;
        self.degraded |= other.degraded;
        self.thread_clamp = self.thread_clamp.or(other.thread_clamp);
        self.phase_times.merge(&other.phase_times);
    }
}

/// Result of one similarity run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The computed similarity matrix over real events.
    pub sim: SimMatrix,
    /// Work counters.
    pub stats: RunStats,
}
