//! Compensated floating-point summation.
//!
//! The objective `avg(S)` (Problem 1) and the upper-bound abort test
//! (Section 4.3) sum up to `|V1|·|V2|` doubles. Naive left-to-right
//! accumulation drifts by `O(n·ulp)` — at a million pairs that is enough
//! to flip threshold comparisons near the decision boundary. This module
//! provides Neumaier's improved Kahan–Babuška summation: a running
//! compensation term captures the low-order bits each add loses, bringing
//! the error down to `O(ulp)` independent of length, at the cost of a few
//! extra flops per element.

/// A streaming Neumaier (improved Kahan–Babuška) accumulator.
///
/// ```
/// use ems_core::numeric::NeumaierSum;
/// let mut acc = NeumaierSum::new();
/// for _ in 0..1_000_000 {
///     acc.add(0.1);
/// }
/// assert!((acc.value() - 100_000.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        NeumaierSum::default()
    }

    /// Adds one term.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        // Whichever operand is larger in magnitude determines which low
        // bits were lost; recover them into the compensation.
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Compensated sum of an iterator of terms.
pub fn compensated_sum<I: IntoIterator<Item = f64>>(terms: I) -> f64 {
    let mut acc = NeumaierSum::new();
    for x in terms {
        acc.add(x);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_sum_on_small_inputs() {
        assert_eq!(compensated_sum([1.0, 2.0, 3.0]), 6.0);
        assert_eq!(compensated_sum(std::iter::empty()), 0.0);
    }

    #[test]
    fn recovers_catastrophic_cancellation() {
        // Naive summation loses the 1.0 entirely: 1e100 + 1 - 1e100 = 0.
        assert_eq!(compensated_sum([1e100, 1.0, -1e100]), 1.0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // million-element loop: minutes under interpretation
    fn million_tenths_within_1e12() {
        let total = compensated_sum(std::iter::repeat(0.1).take(1_000_000));
        assert!((total - 100_000.0).abs() < 1e-12, "total = {total}");
        // The naive sum demonstrably drifts beyond that tolerance.
        let naive: f64 = std::iter::repeat(0.1).take(1_000_000).sum();
        assert!((naive - 100_000.0).abs() > 1e-12, "naive = {naive}");
    }

    #[test]
    fn random_magnitude_mix_close_to_sorted_reference() {
        use ems_rng::StdRng;
        let mut rng = StdRng::seed_from_u64(11);
        let values: Vec<f64> = (0..50_000)
            .map(|_| {
                let mag = 10f64.powi(rng.gen_range(-8..9));
                (rng.gen::<f64>() - 0.5) * mag
            })
            .collect();
        // Reference: sum by ascending magnitude, itself compensated.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.abs().total_cmp(&b.abs()));
        let reference = compensated_sum(sorted.iter().copied());
        let ours = compensated_sum(values.iter().copied());
        let tolerance = 1e-9 * values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        assert!((ours - reference).abs() <= tolerance);
    }
}
