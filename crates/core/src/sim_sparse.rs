//! CSR-style sparse similarity matrices.
//!
//! A [`SparseSim`] stores only the retained entries of a similarity matrix
//! in compressed-sparse-row form. Two exactness regimes share the type:
//!
//! * **δ = 0 (exact):** only entries whose bit pattern is exactly `+0.0`
//!   are dropped, so [`SparseSim::to_dense`] reconstructs the source
//!   matrix bit-for-bit, and the kernel's CSR evaluation path treats
//!   absent entries exactly like the stored zeros the `s_prev ≤ best`
//!   skip-guard already ignores — results stay bit-identical to the dense
//!   substrates at every thread count.
//! * **δ > 0 (thresholded):** entries below `δ` are additionally dropped.
//!   Reading a dropped entry as `0.0` under-reports it by less than `δ`;
//!   one fixpoint step propagates at most `α·c` of a neighbor's error
//!   (formula (1) averages `C·S_prev` terms with `C < c` and weights the
//!   structural part by `α`), so the steady-state error of any score is
//!   bounded by the geometric series `δ / (1 − α·c)` — the same decay
//!   argument behind the Section 3.5 estimation.
//!
//! The engine uses the transposed build ([`SparseSim::from_dense_transposed`])
//! as its post-warm-up evaluation substrate: the swapped scan orientation
//! reads CSR rows instead of a dense `n1 × n2` transpose, shrinking the
//! per-iteration working set to `O(nnz)`. The session uses the plain build
//! at `δ = 0` to hold warm-start priors losslessly at sparse cost.

use crate::sim::SimMatrix;
use std::fmt;

/// Why [`SparseSim::from_parts`] rejected a raw CSR triple. Each variant
/// names one violated invariant and carries enough position detail to
/// locate the corruption in a persisted payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `row_off` must hold exactly `rows + 1` offsets and start at `0`.
    OffsetShape { rows: usize, len: usize },
    /// Row offsets must be non-decreasing; row `row`'s start exceeds its end.
    NonMonotoneOffsets { row: usize },
    /// The final offset and both entry arrays must agree on `nnz`.
    LengthMismatch {
        last_off: usize,
        cols: usize,
        vals: usize,
    },
    /// A column id in `row` is at or past the declared column count.
    ColumnOutOfRange { row: usize, col: u32, cols: usize },
    /// Column ids must be strictly ascending within `row`.
    UnsortedColumns { row: usize },
    /// A NaN at entry `index` of `row`: similarity scores are total-ordered
    /// in `[0, 1]`, so NaN in a payload means corruption, not data.
    NanScore { row: usize, index: usize },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::OffsetShape { rows, len } => write!(
                f,
                "row offsets must hold rows + 1 = {} entries starting at 0, got {len}",
                rows + 1
            ),
            CsrError::NonMonotoneOffsets { row } => {
                write!(f, "row {row} has non-monotone offsets")
            }
            CsrError::LengthMismatch {
                last_off,
                cols,
                vals,
            } => write!(
                f,
                "final offset {last_off} disagrees with {cols} column ids / {vals} values"
            ),
            CsrError::ColumnOutOfRange { row, col, cols } => {
                write!(
                    f,
                    "row {row} holds column {col}, but the matrix has {cols} columns"
                )
            }
            CsrError::UnsortedColumns { row } => {
                write!(f, "row {row}'s column ids are not strictly ascending")
            }
            CsrError::NanScore { row, index } => {
                write!(f, "NaN score at entry {index} of row {row}")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// A row-major CSR similarity matrix; see the module docs for the two
/// exactness regimes.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSim {
    rows: usize,
    cols: usize,
    /// `row_off[r]..row_off[r + 1]` indexes row `r`'s entries.
    row_off: Vec<usize>,
    /// Column ids, strictly ascending within each row.
    col_idx: Vec<u32>,
    /// Retained values, parallel to `col_idx`.
    vals: Vec<f64>,
}

/// Whether a value survives thresholding: exact `+0.0` bits are always
/// dropped (they read back identically as the absent-entry default), and
/// `δ > 0` additionally drops everything below the threshold. `NaN`
/// compares false against `δ` and is retained, so a pathological matrix
/// still round-trips.
#[inline]
fn keep(v: f64, delta: f64) -> bool {
    v.to_bits() != 0 && (v >= delta || v.is_nan())
}

impl SparseSim {
    /// Compresses `dense` row-major, dropping `+0.0` entries and (when
    /// `delta > 0`) entries below `delta`.
    pub fn from_dense(dense: &SimMatrix, delta: f64) -> SparseSim {
        let (rows, cols) = (dense.rows(), dense.cols());
        let data = dense.data();
        let mut row_off = Vec::with_capacity(rows + 1);
        row_off.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..rows {
            for (c, &v) in data[r * cols..][..cols].iter().enumerate() {
                if keep(v, delta) {
                    col_idx.push(c as u32);
                    vals.push(v);
                }
            }
            row_off.push(col_idx.len());
        }
        SparseSim {
            rows,
            cols,
            row_off,
            col_idx,
            vals,
        }
    }

    /// Compresses the *transpose* of `dense`: the result has `dense.cols()`
    /// rows and holds `dense[(c, r)]` at `(r, c)`. Built in two passes
    /// (count, then fill) so each output row's column ids come out
    /// strictly ascending without a sort.
    pub fn from_dense_transposed(dense: &SimMatrix, delta: f64) -> SparseSim {
        let (n1, n2) = (dense.rows(), dense.cols());
        let data = dense.data();
        let mut row_off = vec![0usize; n2 + 1];
        for row in data.chunks_exact(n2.max(1)).take(n1) {
            for (v2, &v) in row.iter().enumerate() {
                if keep(v, delta) {
                    row_off[v2 + 1] += 1;
                }
            }
        }
        for v2 in 0..n2 {
            row_off[v2 + 1] += row_off[v2];
        }
        let nnz = row_off[n2];
        let mut cursor = row_off.clone();
        let mut col_idx = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        for (v1, row) in data.chunks_exact(n2.max(1)).take(n1).enumerate() {
            for (v2, &v) in row.iter().enumerate() {
                if keep(v, delta) {
                    let slot = &mut cursor[v2];
                    col_idx[*slot] = v1 as u32;
                    vals[*slot] = v;
                    *slot += 1;
                }
            }
        }
        SparseSim {
            rows: n2,
            cols: n1,
            row_off,
            col_idx,
            vals,
        }
    }

    /// Rebuilds from raw CSR parts — the untrusted edge the persist codec
    /// decodes through. Every invariant the indexing paths rely on is
    /// re-validated here (this is the dominating bound check the
    /// `index-bounds` lint rule keys on), and each rejection names its
    /// violated invariant; this function never panics on any input.
    ///
    /// Unlike the in-memory builds, NaN scores are rejected: `keep` retains
    /// NaN so a live pathological matrix round-trips through
    /// [`to_dense`](Self::to_dense), but a NaN arriving from a *payload*
    /// can only be corruption.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_off: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f64>,
    ) -> Result<SparseSim, CsrError> {
        if row_off.len() != rows + 1 || row_off.first() != Some(&0) {
            return Err(CsrError::OffsetShape {
                rows,
                len: row_off.len(),
            });
        }
        if let Some(r) = row_off.windows(2).position(|w| w[0] > w[1]) {
            return Err(CsrError::NonMonotoneOffsets { row: r });
        }
        let last_off = *row_off.last().unwrap_or(&0);
        if last_off != col_idx.len() || col_idx.len() != vals.len() {
            return Err(CsrError::LengthMismatch {
                last_off,
                cols: col_idx.len(),
                vals: vals.len(),
            });
        }
        for r in 0..rows {
            let span = row_off[r]..row_off[r + 1];
            let row = &col_idx[span.clone()];
            if let Some(&c) = row.iter().find(|&&c| c as usize >= cols) {
                return Err(CsrError::ColumnOutOfRange {
                    row: r,
                    col: c,
                    cols,
                });
            }
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CsrError::UnsortedColumns { row: r });
            }
            if let Some(i) = vals[span].iter().position(|v| v.is_nan()) {
                return Err(CsrError::NanScore { row: r, index: i });
            }
        }
        Ok(SparseSim {
            rows,
            cols,
            row_off,
            col_idx,
            vals,
        })
    }

    /// Expands back to a dense matrix; absent entries become `+0.0`.
    pub fn to_dense(&self) -> SimMatrix {
        let mut data = vec![0.0f64; self.rows * self.cols];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let row = &mut data[r * self.cols..][..self.cols];
            for (&c, &v) in cols.iter().zip(vals) {
                row[c as usize] = v;
            }
        }
        SimMatrix::from_raw(self.rows, self.cols, data)
    }

    /// One row's ascending column ids and parallel values.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let range = self.row_off[r]..self.row_off[r + 1];
        (&self.col_idx[range.clone()], &self.vals[range])
    }

    /// The value at `(r, c)`; `0.0` when absent (binary search within the
    /// row — column ids are strictly ascending by construction).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Retained-entry count.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Fraction of the full grid retained (`0.0` for an empty grid).
    pub fn occupancy(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Raw CSR parts (serialization edge for the persist codec).
    pub(crate) fn parts(&self) -> (usize, usize, &[usize], &[u32], &[f64]) {
        (
            self.rows,
            self.cols,
            &self.row_off,
            &self.col_idx,
            &self.vals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimMatrix {
        SimMatrix::from_raw(
            3,
            4,
            vec![
                0.9, 0.0, 0.004, 0.5, //
                0.0, 0.02, 0.0, 0.0, //
                0.1, 0.0, 0.0, 0.7,
            ],
        )
    }

    #[test]
    fn delta_zero_round_trips_bit_exactly() {
        let dense = sample();
        let sparse = SparseSim::from_dense(&dense, 0.0);
        assert_eq!(sparse.nnz(), 6);
        let back = sparse.to_dense();
        for (a, b) in dense.data().iter().zip(back.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn thresholding_drops_only_sub_delta_entries() {
        let dense = sample();
        let sparse = SparseSim::from_dense(&dense, 0.05);
        assert_eq!(sparse.nnz(), 4);
        for r in 0..3 {
            for c in 0..4 {
                let v = dense.get(r, c);
                let s = sparse.get(r, c);
                if v >= 0.05 {
                    assert_eq!(v.to_bits(), s.to_bits());
                } else {
                    assert_eq!(s, 0.0);
                    assert!(v < 0.05, "error stays below delta");
                }
            }
        }
        assert!((sparse.occupancy() - 4.0 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn transposed_build_matches_transposed_lookup() {
        let dense = sample();
        for delta in [0.0, 0.05] {
            let t = SparseSim::from_dense_transposed(&dense, delta);
            assert_eq!((t.rows(), t.cols()), (4, 3));
            let plain = SparseSim::from_dense(&dense, delta);
            assert_eq!(t.nnz(), plain.nnz());
            for r in 0..3 {
                for c in 0..4 {
                    assert_eq!(plain.get(r, c).to_bits(), t.get(c, r).to_bits());
                }
            }
            // Column ids strictly ascending per row.
            for r in 0..t.rows() {
                let (cols, _) = t.row(r);
                assert!(cols.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let empty = SparseSim::from_dense(&SimMatrix::zeros(0, 5), 0.0);
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.occupancy(), 0.0);
        assert_eq!(empty.to_dense().rows(), 0);
        let zeros = SparseSim::from_dense(&SimMatrix::zeros(4, 4), 0.0);
        assert_eq!(zeros.nnz(), 0);
        let t = SparseSim::from_dense_transposed(&SimMatrix::zeros(2, 0), 0.0);
        assert_eq!((t.rows(), t.cols()), (0, 2));
    }

    #[test]
    fn from_parts_names_each_rejected_invariant() {
        let ok = SparseSim::from_parts(2, 3, vec![0, 1, 2], vec![1, 0], vec![0.5, 0.25]);
        assert!(ok.is_ok());
        assert_eq!(
            SparseSim::from_parts(2, 3, vec![0, 2], vec![1, 0], vec![0.5, 0.25]),
            Err(CsrError::OffsetShape { rows: 2, len: 2 })
        );
        assert_eq!(
            SparseSim::from_parts(2, 3, vec![0, 2, 1], vec![1, 0], vec![0.5, 0.25]),
            Err(CsrError::NonMonotoneOffsets { row: 1 })
        );
        assert_eq!(
            SparseSim::from_parts(2, 3, vec![0, 1, 2], vec![1, 3], vec![0.5, 0.25]),
            Err(CsrError::ColumnOutOfRange {
                row: 1,
                col: 3,
                cols: 3
            })
        );
        assert_eq!(
            SparseSim::from_parts(1, 3, vec![0, 2], vec![2, 1], vec![0.5, 0.25]),
            Err(CsrError::UnsortedColumns { row: 0 })
        );
        assert_eq!(
            SparseSim::from_parts(2, 3, vec![0, 1, 2], vec![1, 0], vec![0.5]),
            Err(CsrError::LengthMismatch {
                last_off: 2,
                cols: 2,
                vals: 1
            })
        );
        assert_eq!(
            SparseSim::from_parts(2, 3, vec![0, 1, 2], vec![1, 0], vec![0.5, f64::NAN]),
            Err(CsrError::NanScore { row: 1, index: 0 })
        );
    }

    /// Every rejection path returns, never panics — including offsets that
    /// point far past the entry arrays, the classic OOB-on-load shape.
    #[test]
    fn from_parts_never_panics_on_hostile_offsets() {
        for bad in [
            SparseSim::from_parts(2, 3, vec![0, 10, 20], vec![1, 0], vec![0.5, 0.25]),
            SparseSim::from_parts(1, 3, vec![0, usize::MAX], vec![1], vec![0.5]),
            SparseSim::from_parts(0, 0, vec![], vec![], vec![]),
            SparseSim::from_parts(3, 0, vec![0, 0, 0, 0], vec![0], vec![0.5]),
        ] {
            assert!(bad.is_err());
        }
        // Degenerate-but-valid: zero rows, zero entries.
        assert!(SparseSim::from_parts(0, 5, vec![0], vec![], vec![]).is_ok());
    }
}
