//! The precomputed, reusable kernel substrate of one `(g1, g2, direction)`
//! pair — the *substrate* stage of the pipeline.
//!
//! Building an engine used to fuse two costs: the per-pair work of the run
//! itself and the one-off derivation of the longest distances `l(v)`
//! (Proposition 2), the CSR neighbor export and the tabulated compatibility
//! factors of [`PairContext`]. [`EngineSubstrate`] owns that one-off product
//! so it can outlive any single [`crate::engine::Engine`]: a
//! [`crate::session::MatchSession`] caches substrates by graph fingerprint
//! and hands them to engines via `Arc`, turning a re-match against an
//! already-seen graph pair into pure solve work.

use crate::error::CoreError;
use crate::kernel::PairContext;
use crate::params::Direction;
use ems_depgraph::{
    longest_distances, longest_distances_backward, DependencyGraph, Distance, NeighborCsr,
};
use std::time::{Duration, Instant};

/// The immutable setup product of one `(g1, g2, direction, c)` combination:
/// longest distances for both graphs plus the [`PairContext`] kernel tables.
///
/// The substrate stores no references to the graphs it was built from;
/// consistency with the graphs an [`crate::engine::Engine`] later pairs it
/// with is checked structurally (shape, direction, damping constant).
#[derive(Debug)]
pub struct EngineSubstrate {
    direction: Direction,
    c: f64,
    n1: usize,
    n2: usize,
    pub(crate) l1: Vec<Distance>,
    pub(crate) l2: Vec<Distance>,
    pub(crate) ctx: PairContext,
    build_time: Duration,
}

impl EngineSubstrate {
    /// Builds the substrate for `direction` over `g1 × g2` with damping
    /// constant `c` (the `C ≤ c` of formula (1)).
    pub fn build(g1: &DependencyGraph, g2: &DependencyGraph, direction: Direction, c: f64) -> Self {
        // ems-lint: allow(wall-clock-randomness, build timing feeds setup telemetry only, never similarity values)
        let started = Instant::now();
        let (l1, l2) = match direction {
            Direction::Forward => (longest_distances(g1), longest_distances(g2)),
            Direction::Backward => (
                longest_distances_backward(g1),
                longest_distances_backward(g2),
            ),
        };
        let (csr1, csr2) = match direction {
            Direction::Forward => (g1.pre_csr(), g2.pre_csr()),
            Direction::Backward => (g1.post_csr(), g2.post_csr()),
        };
        let ctx = PairContext::new(csr1, csr2, c);
        let build_time = started.elapsed();
        EngineSubstrate {
            direction,
            c,
            n1: g1.num_real(),
            n2: g2.num_real(),
            l1,
            l2,
            ctx,
            build_time,
        }
    }

    /// Rebuilds a substrate from the parts a durable snapshot persists:
    /// the longest distances and the direction-resolved CSR exports. The
    /// kernel tables are re-derived deterministically from the CSRs and
    /// `c`, so a rehydrated substrate is bit-identical in behavior to the
    /// one originally built from the graphs. Shape disagreements between
    /// the distance vectors and the CSRs are rejected as
    /// [`CoreError::SnapshotDecode`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_saved_parts(
        direction: Direction,
        c: f64,
        n1: usize,
        n2: usize,
        l1: Vec<Distance>,
        l2: Vec<Distance>,
        csr1: NeighborCsr,
        csr2: NeighborCsr,
    ) -> Result<Self, CoreError> {
        let decode = |message: String| CoreError::SnapshotDecode { message };
        if csr1.num_nodes() != n1 || csr2.num_nodes() != n2 {
            return Err(decode(format!(
                "substrate CSRs cover {}x{} nodes but header says {n1}x{n2}",
                csr1.num_nodes(),
                csr2.num_nodes()
            )));
        }
        // Distances cover the artificial node too (one extra slot).
        if l1.len() != n1 + 1 || l2.len() != n2 + 1 {
            return Err(decode(format!(
                "substrate distances cover {}/{} nodes, want {}/{}",
                l1.len(),
                l2.len(),
                n1 + 1,
                n2 + 1
            )));
        }
        if !c.is_finite() || c <= 0.0 || c >= 1.0 {
            return Err(decode(format!("damping constant {c} outside (0, 1)")));
        }
        let ctx = PairContext::new(csr1, csr2, c);
        Ok(EngineSubstrate {
            direction,
            c,
            n1,
            n2,
            l1,
            l2,
            ctx,
            build_time: Duration::ZERO,
        })
    }

    /// The direction this substrate serves.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The damping constant the compatibility tables were built with.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Real-node count of graph 1 (similarity matrix rows).
    pub fn rows(&self) -> usize {
        self.n1
    }

    /// Real-node count of graph 2 (similarity matrix columns).
    pub fn cols(&self) -> usize {
        self.n2
    }

    /// Wall-clock time the build took — the `setup` phase cost this
    /// substrate represents, attributed once by whoever triggered the build.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// The per-pair convergence bound `h = min(l(v1), l(v2))`
    /// (Proposition 2).
    pub(crate) fn pair_bound(&self, v1: usize, v2: usize) -> Distance {
        Distance::min(self.l1[v1], self.l2[v2])
    }
}
