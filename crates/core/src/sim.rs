//! Dense similarity matrices over the real events of two graphs.

/// A dense row-major `n1 × n2` matrix of pairwise similarities between the
/// *real* events of two dependency graphs.
///
/// Pairs involving the artificial event `v^X` are not stored: their values
/// are pinned (`S(v^X, v^X) = 1`, mixed pairs `0`) and handled inline by the
/// engine, and the paper mandates they be omitted from correspondence
/// selection anyway.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMatrix {
    n1: usize,
    n2: usize,
    data: Vec<f64>,
}

impl SimMatrix {
    /// An all-zero `n1 × n2` matrix — the initialization `S^0` of Section 3.2.
    pub fn zeros(n1: usize, n2: usize) -> Self {
        SimMatrix {
            n1,
            n2,
            data: vec![0.0; n1 * n2],
        }
    }

    /// Builds from raw row-major data.
    ///
    /// # Panics
    /// If `data.len() != n1 * n2`.
    pub fn from_raw(n1: usize, n2: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n1 * n2, "similarity matrix shape mismatch");
        SimMatrix { n1, n2, data }
    }

    /// Rows (events of log 1).
    pub fn rows(&self) -> usize {
        self.n1
    }

    /// Columns (events of log 2).
    pub fn cols(&self) -> usize {
        self.n2
    }

    /// The similarity of pair `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n1 && j < self.n2);
        self.data[i * self.n2 + j]
    }

    /// Sets the similarity of pair `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.n1 && j < self.n2);
        self.data[i * self.n2 + j] = v;
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data — the engine's scatter path writes
    /// worklist results through this.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Average over all pairs — the `avg(S)` objective of Problem 1.
    ///
    /// Uses compensated (Neumaier) summation so the result stays within
    /// `O(ulp)` of the exact mean regardless of matrix size.
    ///
    /// Returns 0 for an empty matrix.
    pub fn average(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            crate::numeric::compensated_sum(self.data.iter().copied()) / self.data.len() as f64
        }
    }

    /// Largest absolute elementwise difference to `other`.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn max_abs_diff(&self, other: &SimMatrix) -> f64 {
        assert_eq!(self.n1, other.n1);
        assert_eq!(self.n2, other.n2);
        let mut worst = 0.0_f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = (a - b).abs();
            if d > worst {
                worst = d;
            }
        }
        worst
    }

    /// Elementwise average of two matrices — used to aggregate forward and
    /// backward similarities (Section 3.6).
    ///
    /// # Panics
    /// If shapes differ.
    pub fn mean_with(&self, other: &SimMatrix) -> SimMatrix {
        assert_eq!(self.n1, other.n1);
        assert_eq!(self.n2, other.n2);
        SimMatrix {
            n1: self.n1,
            n2: self.n2,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| (a + b) / 2.0)
                .collect(),
        }
    }

    /// Iterates `(row, col, value)` over all pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k / self.n2, k % self.n2, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get_set() {
        let mut m = SimMatrix::zeros(2, 3);
        assert_eq!(m.get(1, 2), 0.0);
        m.set(1, 2, 0.5);
        assert_eq!(m.get(1, 2), 0.5);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn average_over_all_pairs() {
        let m = SimMatrix::from_raw(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(m.average(), 0.5);
        assert_eq!(SimMatrix::zeros(0, 5).average(), 0.0);
    }

    /// Satellite property: averaging a million entries of 0.1 is exact to
    /// 1e-12 — naive accumulation drifts well past that.
    #[test]
    #[cfg_attr(miri, ignore)] // million-element matrix: minutes under interpretation
    fn average_is_compensated_at_scale() {
        let m = SimMatrix::from_raw(1000, 1000, vec![0.1; 1_000_000]);
        assert!((m.average() - 0.1).abs() < 1e-12, "avg = {}", m.average());
    }

    #[test]
    fn data_mut_writes_through() {
        let mut m = SimMatrix::zeros(2, 2);
        m.data_mut()[3] = 0.7;
        assert_eq!(m.get(1, 1), 0.7);
    }

    #[test]
    fn diff_and_mean() {
        let a = SimMatrix::from_raw(1, 2, vec![0.2, 0.8]);
        let b = SimMatrix::from_raw(1, 2, vec![0.4, 0.5]);
        assert!((a.max_abs_diff(&b) - 0.3).abs() < 1e-15);
        let m = a.mean_with(&b);
        assert!((m.get(0, 0) - 0.3).abs() < 1e-15);
        assert!((m.get(0, 1) - 0.65).abs() < 1e-15);
    }

    #[test]
    fn iter_yields_row_major() {
        let m = SimMatrix::from_raw(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let v: Vec<_> = m.iter().collect();
        assert_eq!(v[1], (0, 1, 2.0));
        assert_eq!(v[2], (1, 0, 3.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_raw_checks_shape() {
        let _ = SimMatrix::from_raw(2, 2, vec![0.0]);
    }
}
