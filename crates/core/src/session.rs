//! The staged, reusable matching pipeline: **ingest → model → substrate →
//! solve → aggregate**.
//!
//! [`crate::Ems`] is one-shot: every call re-derives the dependency graphs,
//! the label matrix and the kernel substrate even when the inputs did not
//! change. A [`MatchSession`] makes each stage's product explicit and caches
//! it by *content fingerprint* (FNV-1a over names, frequencies and
//! adjacency — see [`ems_events::fingerprint_log`] and
//! [`ems_depgraph::DependencyGraph::fingerprint`]), so matching N logs
//! against one reference builds the reference-side model once, and
//! re-matching an unchanged pair is pure solve work.
//!
//! Symbols are interned once per session ([`SymbolTable`]): every graph the
//! session builds shares one table, so label identity across logs is a `u32`
//! comparison, never a string comparison.
//!
//! # Warm starts
//!
//! With [`SessionOptions::warm_start`] set, a re-match seeds both direction
//! runs from the pair's previous fixpoint. This is sound by Theorem 1: the
//! similarity update is monotone with a unique fixpoint, so iteration
//! converges to the same matrix from any start at or below it — and a
//! previously converged matrix of the same pair space is such a start. On
//! graphs whose pairs all have finite Proposition-2 horizons (acyclic
//! dependency graphs) with pruning enabled, the warm run is bitwise
//! stationary: every pair's neighbors retire strictly before the pair's own
//! horizon, so re-evaluating the old fixpoint reproduces it exactly and the
//! run converges in one iteration with a bit-identical matrix (pinned by the
//! `session_reuse` golden tests).
//!
//! # Durable tier
//!
//! With a catalog store attached ([`MatchSession::with_store`]) every build
//! stage gains a disk tier between the in-memory cache and a rebuild:
//! memory hit → store hit (decode a checksummed snapshot) → rebuild (and
//! best-effort re-persist). Store failures never fail a match — a corrupt
//! snapshot is quarantined and the product rebuilt from source, an I/O
//! failure simply degrades to a rebuild — so the durable tier is purely an
//! availability optimization with no effect on results (pinned by the
//! disk-warm bit-identity tests and the `chaos_store` sweep).
//!
//! # Telemetry
//!
//! Two recorders with distinct roles:
//!
//! * the **session recorder** ([`MatchSession::with_recorder`]) receives the
//!   stage spans (`session.model`, `session.substrate`) and the cache
//!   counters (`session.graph_cache`, `session.substrate_cache`,
//!   `session.label_cache`, `session.warm_start`) that prove which stages
//!   were skipped;
//! * the **engine recorder** ([`SessionOptions::recorder`]) is handed to the
//!   solve stage only, so a cached re-match emits an engine trace
//!   byte-identical to the cold run's.
//!
//! ```
//! use ems_core::{EmsParams, MatchSession};
//! use ems_events::EventLog;
//!
//! let mut reference = EventLog::new();
//! reference.push_trace(["a", "b", "c"]);
//! let mut observed = EventLog::new();
//! observed.push_trace(["x", "y", "z"]);
//!
//! let mut session = MatchSession::new(EmsParams::structural());
//! let r = session.ingest(reference);
//! let o = session.ingest(observed);
//! let cold = session.match_pair(r, o).unwrap();
//! let cached = session.match_pair(r, o).unwrap(); // no graph/substrate rebuild
//! assert!(cold.similarity.max_abs_diff(&cached.similarity) == 0.0);
//! assert_eq!(session.stats().graph_builds, 2);
//! assert_eq!(session.stats().substrate_builds, 2); // one per direction — built once
//! ```

use crate::engine::{Budget, Engine, RunOptions, Seed};
use crate::error::CoreError;
use crate::matcher::{aggregate_directions, label_matrix_for, MatchOutcome};
use crate::params::{Direction, EmsParams};
use crate::persist;
use crate::sim_sparse::SparseSim;
use crate::substrate::EngineSubstrate;
use ems_depgraph::{filter_min_frequency, observe_graph, DependencyGraph};
use ems_error::EmsError;
use ems_events::{fingerprint_log, EventLog, SymbolTable};
use ems_faults::{FaultInjector, FaultKind, FaultSite};
use ems_labels::LabelMatrix;
use ems_obs::{Histogram, Recorder};
use ems_prof::Profiler;
use ems_store::{CatalogStore, SnapshotKind};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a log ingested into a [`MatchSession`]. Handles are stable for
/// the session's lifetime and survive [`MatchSession::append_traces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogHandle(u32);

impl LogHandle {
    /// Zero-based ingestion index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-call options for [`MatchSession::match_pair_opts`].
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Per-call thread-count override; `None` defers to
    /// [`EmsParams::threads`].
    pub threads: Option<usize>,
    /// Passed through to [`RunOptions::oversubscribe`]: lets an explicit
    /// thread request exceed host parallelism instead of clamping.
    pub oversubscribe: bool,
    /// Seed both direction runs from this pair's previous fixpoint when one
    /// of matching shape exists (see the module docs for why this is sound).
    pub warm_start: bool,
    /// Resource budget for each direction's run.
    pub budget: Budget,
    /// Engine-level telemetry sink, passed through to the solve stage only —
    /// session stage spans and cache counters go to the *session* recorder
    /// ([`MatchSession::with_recorder`]), keeping this trace byte-comparable
    /// between cold and cached runs.
    pub recorder: Option<Arc<Recorder>>,
    /// Deterministic fault injector consulted at the ingest and solve stage
    /// boundaries (store-level sites are consulted by the store itself —
    /// share one injector between both for a coherent schedule). A transient
    /// ingest fault is absorbed; a terminal one surfaces as
    /// [`CoreError::FaultInjected`]. A solve-stage budget-exhaustion fault
    /// clamps the run budget so the engine degrades to estimation instead
    /// of failing.
    pub injector: Option<Arc<FaultInjector>>,
}

/// Counters describing the session's cache behavior and the setup work it
/// performed, attributed once at session level (runs executed against cached
/// substrates report zero setup in their own [`crate::PhaseTimes`] — see
/// `session_attributes_setup_once` in the tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Dependency graphs built (model-stage cache misses).
    pub graph_builds: u64,
    /// Model-stage cache hits.
    pub graph_cache_hits: u64,
    /// [`EngineSubstrate`]s built (substrate-stage cache misses).
    pub substrate_builds: u64,
    /// Substrate-stage cache hits.
    pub substrate_cache_hits: u64,
    /// Label matrices computed.
    pub label_builds: u64,
    /// Label-stage cache hits.
    pub label_cache_hits: u64,
    /// Solve-stage runs seeded from a prior fixpoint.
    pub warm_starts: u64,
    /// Full matches served from the outcome cache (both solves skipped).
    pub outcome_cache_hits: u64,
    /// Build products served from the durable store (snapshot decoded).
    pub store_hits: u64,
    /// Durable-store lookups that found no snapshot.
    pub store_misses: u64,
    /// Snapshots quarantined (envelope- or payload-level corruption) and
    /// rebuilt from source.
    pub store_quarantines: u64,
    /// Durable-store reads that failed with an I/O error (degraded to a
    /// rebuild).
    pub store_read_failures: u64,
    /// Best-effort snapshot writes that failed (the match still succeeded).
    pub store_write_failures: u64,
    /// Total wall-clock setup the session performed (graph + substrate
    /// builds) — the single authoritative setup attribution for all runs
    /// the session executed.
    pub setup: Duration,
}

#[derive(Debug)]
struct SessionLog {
    log: EventLog,
    fingerprint: u64,
}

/// The previous fixpoint of one handle pair — the warm-start source.
/// Held as δ=0 sparse matrices: converged similarity matrices are mostly
/// zeros, and the lossless compression re-expands bit-identically when
/// the seed is built ([`SparseSim::to_dense`]).
#[derive(Debug)]
struct Prior {
    forward: SparseSim,
    backward: SparseSim,
}

/// A reusable, staged matching pipeline over a set of ingested logs. See
/// the module docs for the stage/caching model.
#[derive(Debug)]
pub struct MatchSession {
    params: EmsParams,
    min_frequency: f64,
    table: SymbolTable,
    logs: Vec<SessionLog>,
    /// Model cache: log content fingerprint → dependency graph (with the
    /// session's min-frequency filter applied). `min_frequency` and the
    /// parameters are session constants, so they are not part of the key.
    graphs: BTreeMap<u64, Arc<DependencyGraph>>,
    /// Substrate cache: (graph fp 1, graph fp 2, direction) → substrate.
    substrates: BTreeMap<(u64, u64, u8), Arc<EngineSubstrate>>,
    /// Label cache: (log fp 1, log fp 2) → label matrix.
    labels: BTreeMap<(u64, u64), Arc<LabelMatrix>>,
    /// Prior fixpoints by handle pair — survives `append_traces` (the warm
    /// seed for the re-match), unlike the fingerprint-keyed caches which the
    /// new content simply misses.
    priors: BTreeMap<(u32, u32), Prior>,
    /// Outcome cache: (log fp 1, log fp 2) → full match result. The solve
    /// stage dominates a fully-cached re-match (every build stage already
    /// hits its cache), so identical inputs are served the memoized
    /// outcome instead of re-running both fixpoints. Only plain calls
    /// participate — an engine recorder, fault injector, budget or
    /// warm-start request makes the call observably different from a
    /// replay, and such calls bypass this cache entirely (both read and
    /// write).
    outcomes: BTreeMap<(u64, u64), MatchOutcome>,
    /// Optional durable tier behind the in-memory caches: every build stage
    /// consults it on a memory miss and re-persists what it rebuilds.
    store: Option<Arc<CatalogStore>>,
    stats: SessionStats,
    recorder: Option<Arc<Recorder>>,
    /// Store-fetch latency accumulated across one match's stage lookups,
    /// flushed to the session recorder as a single `session.store_fetch_us`
    /// histogram (exec class: latency is non-deterministic, so redacted
    /// exports zero its contents).
    fetch_hist: Option<Histogram>,
}

impl MatchSession {
    /// Creates a session with the given parameters.
    ///
    /// # Panics
    /// If the parameters are invalid (see [`EmsParams::validate`]). Use
    /// [`try_new`](Self::try_new) for a fallible variant.
    #[allow(clippy::panic)] // documented contract panic; try_new is the fallible path
    pub fn new(params: EmsParams) -> Self {
        match Self::try_new(params) {
            Ok(session) => session,
            // ems-lint: allow(panic-surface, documented contract panic; try_new is the fallible path)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new): returns
    /// [`CoreError::InvalidParams`] instead of panicking.
    pub fn try_new(params: EmsParams) -> Result<Self, CoreError> {
        params.validate().map_err(CoreError::InvalidParams)?;
        Ok(MatchSession {
            params,
            min_frequency: 0.0,
            table: SymbolTable::new(),
            logs: Vec::new(),
            graphs: BTreeMap::new(),
            substrates: BTreeMap::new(),
            labels: BTreeMap::new(),
            priors: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            store: None,
            stats: SessionStats::default(),
            recorder: None,
            fetch_hist: None,
        })
    }

    /// Attaches the session telemetry sink (stage spans, cache counters).
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a durable catalog store as the tier between the in-memory
    /// caches and a rebuild (see the module docs). Store failures never
    /// fail a match: corruption quarantines the snapshot and rebuilds, I/O
    /// errors degrade to a rebuild.
    pub fn with_store(mut self, store: Arc<CatalogStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the minimum edge frequency applied when building graphs
    /// (Section 2 filtering). A session constant: it participates in every
    /// model-stage build, so it is deliberately not part of the cache keys.
    pub fn with_min_frequency(mut self, threshold: f64) -> Self {
        self.min_frequency = threshold;
        self
    }

    /// The session's parameters.
    pub fn params(&self) -> &EmsParams {
        &self.params
    }

    /// The session-wide symbol table. Grows as logs are modeled; symbols
    /// are shared across every graph the session builds.
    pub fn symbols(&self) -> &SymbolTable {
        &self.table
    }

    /// Cache and setup counters accumulated so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Takes ownership of a log and returns its handle.
    pub fn ingest(&mut self, log: EventLog) -> LogHandle {
        let fingerprint = fingerprint_log(&log);
        let handle = LogHandle(u32::try_from(self.logs.len()).unwrap_or(u32::MAX));
        debug_assert!((handle.0 as usize) == self.logs.len(), "session log limit");
        self.logs.push(SessionLog { log, fingerprint });
        handle
    }

    /// The log behind a handle.
    pub fn log(&self, handle: LogHandle) -> Result<&EventLog, CoreError> {
        self.session_log(handle).map(|s| &s.log)
    }

    /// Appends traces to an ingested log and re-fingerprints it. The
    /// handle's cached graph/substrate/label products are not invalidated —
    /// the new fingerprint simply misses them — but the pair's prior
    /// fixpoint is kept as the warm-start source for the re-match.
    pub fn append_traces<I, T, S>(&mut self, handle: LogHandle, traces: I) -> Result<(), CoreError>
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.session_log(handle)?;
        let entry = &mut self.logs[handle.index()];
        for trace in traces {
            entry.log.push_trace(trace);
        }
        entry.fingerprint = fingerprint_log(&entry.log);
        Ok(())
    }

    /// Matches two ingested logs with default options.
    pub fn match_pair(&mut self, h1: LogHandle, h2: LogHandle) -> Result<MatchOutcome, CoreError> {
        self.match_pair_opts(h1, h2, &SessionOptions::default())
    }

    /// Matches two ingested logs: model, substrate and label products are
    /// served from the session caches when their fingerprints match, and the
    /// solve stage optionally warm-starts from the pair's prior fixpoint.
    pub fn match_pair_opts(
        &mut self,
        h1: LogHandle,
        h2: LogHandle,
        options: &SessionOptions,
    ) -> Result<MatchOutcome, CoreError> {
        self.session_log(h1)?;
        self.session_log(h2)?;

        // Scoped profiling (session recorder only): one `session.match`
        // scope per call, with the build stages nested beneath it. The
        // profiler is per-call so the scope guards never borrow `self`
        // across the `&mut self` stage methods.
        let profiler = self.recorder.as_ref().map(|r| Profiler::new(Arc::clone(r)));
        let mut match_scope = profiler.as_ref().map(|pf| pf.scope("session.match"));
        let builds_before =
            self.stats.graph_builds + self.stats.substrate_builds + self.stats.label_builds;
        let hits_before = self.stats.graph_cache_hits
            + self.stats.substrate_cache_hits
            + self.stats.label_cache_hits;

        // Ingest-boundary fault point: a transient fault is absorbed (the
        // stage "retries" by simply proceeding — the inputs are already in
        // memory); a terminal one surfaces as a typed error.
        if let Some(injector) = options.injector.as_deref() {
            if let Some(kind) = injector.next_op(FaultSite::Ingest) {
                if !kind.is_transient() {
                    return Err(CoreError::FaultInjected {
                        site: FaultSite::Ingest.name().to_string(),
                        kind: kind.name().to_string(),
                    });
                }
            }
        }

        // Model stage: one dependency graph per distinct log content.
        let g1 = self.model_stage(h1, profiler.as_ref());
        let g2 = self.model_stage(h2, profiler.as_ref());

        // Substrate stage: one kernel substrate per (graphs, direction).
        let fwd_sub = self.substrate_stage(&g1, &g2, Direction::Forward, profiler.as_ref());
        let bwd_sub = self.substrate_stage(&g1, &g2, Direction::Backward, profiler.as_ref());

        // Label stage: one label matrix per log-content pair.
        let labels = self.label_stage(h1, h2, profiler.as_ref());

        // Outcome cache: with every build stage already served from cache,
        // the two fixpoint solves dominate a repeat match — serve the
        // memoized outcome when the call is a plain replay of identical
        // content. Thread-count overrides don't gate anything here: results
        // are bit-identical at every thread count.
        let fp1 = self.logs[h1.index()].fingerprint;
        let fp2 = self.logs[h2.index()].fingerprint;
        let outcome_cacheable = options.recorder.is_none()
            && options.injector.is_none()
            && options.budget.is_unlimited()
            && !options.warm_start;
        if outcome_cacheable {
            if let Some(cached) = self.outcomes.get(&(fp1, fp2)) {
                let outcome = cached.clone();
                self.stats.outcome_cache_hits += 1;
                if let Some(rec) = self.recorder.as_deref() {
                    rec.counter_add("session.outcome_cache_hit", ems_obs::labels(&[]), 1);
                }
                // The served fixpoint is also the freshest warm-start
                // source for this handle pair — same insert the solved
                // path performs.
                self.priors.insert(
                    (h1.0, h2.0),
                    Prior {
                        forward: SparseSim::from_dense(&outcome.forward, 0.0),
                        backward: SparseSim::from_dense(&outcome.backward, 0.0),
                    },
                );
                self.flush_fetch_hist();
                if let Some(mut s) = match_scope.take() {
                    s.count("outcome_cache_hits", 1);
                }
                return Ok(outcome);
            }
        }

        // Solve-boundary fault point: budget exhaustion clamps the run
        // budget — the engine degrades to estimation (a defined, typed-error
        // -free outcome) rather than failing the match.
        let mut budget = options.budget.clone();
        if let Some(injector) = options.injector.as_deref() {
            match injector.next_op(FaultSite::Solve) {
                Some(FaultKind::BudgetExhaust) => {
                    budget = Budget {
                        max_iterations: Some(1),
                        ..budget
                    };
                }
                Some(kind) if !kind.is_transient() => {
                    return Err(CoreError::FaultInjected {
                        site: FaultSite::Solve.name().to_string(),
                        kind: kind.name().to_string(),
                    });
                }
                _ => {}
            }
        }

        // Solve stage: run both directions on cached substrates; the
        // engines charge zero setup (the session already attributed it).
        let seed = options
            .warm_start
            .then(|| self.warm_seed(h1, h2, &g1, &g2))
            .flatten();
        let run_options = |seed: Option<Seed>| RunOptions {
            seed,
            abort_below: None,
            budget: budget.clone(),
            threads: options.threads,
            oversubscribe: options.oversubscribe,
            recorder: options.recorder.clone(),
        };
        let (fwd_seed, bwd_seed) = match seed {
            Some((f, b)) => {
                self.stats.warm_starts += 1;
                if let Some(rec) = self.recorder.as_deref() {
                    rec.counter_add("session.warm_start", ems_obs::labels(&[]), 1);
                }
                (Some(f), Some(b))
            }
            None => (None, None),
        };
        let fwd = Engine::try_with_substrate(
            &g1,
            &g2,
            &labels,
            &self.params,
            Direction::Forward,
            fwd_sub,
        )?
        .try_run(&run_options(fwd_seed))?;
        let bwd = Engine::try_with_substrate(
            &g1,
            &g2,
            &labels,
            &self.params,
            Direction::Backward,
            bwd_sub,
        )?
        .try_run(&run_options(bwd_seed))?;

        // Aggregate stage — identical combine to `Ems`, then remember the
        // fixpoint as the pair's warm-start source.
        let outcome = aggregate_directions(&self.params, fwd, bwd);
        self.priors.insert(
            (h1.0, h2.0),
            Prior {
                forward: SparseSim::from_dense(&outcome.forward, 0.0),
                backward: SparseSim::from_dense(&outcome.backward, 0.0),
            },
        );
        if outcome_cacheable {
            self.outcomes.insert((fp1, fp2), outcome.clone());
        }
        self.flush_fetch_hist();
        if let Some(mut s) = match_scope.take() {
            let builds_after =
                self.stats.graph_builds + self.stats.substrate_builds + self.stats.label_builds;
            let hits_after = self.stats.graph_cache_hits
                + self.stats.substrate_cache_hits
                + self.stats.label_cache_hits;
            s.count("builds", builds_after - builds_before);
            s.count("cache_hits", hits_after - hits_before);
            s.count("solves", 2);
        }
        Ok(outcome)
    }

    /// Flushes the accumulated store-fetch latency histogram to the session
    /// recorder, if any fetches were timed during this match.
    fn flush_fetch_hist(&mut self) {
        if let (Some(rec), Some(h)) = (self.recorder.as_deref(), self.fetch_hist.take()) {
            if !h.is_empty() {
                rec.histogram(h.into_record());
            }
        }
    }

    fn session_log(&self, handle: LogHandle) -> Result<&SessionLog, CoreError> {
        self.logs.get(handle.index()).ok_or(CoreError::UnknownLog {
            handle: handle.0,
            logs: self.logs.len(),
        })
    }

    /// Builds (or fetches) the dependency graph of a log, keyed by its
    /// content fingerprint.
    fn model_stage(&mut self, handle: LogHandle, prof: Option<&Profiler>) -> Arc<DependencyGraph> {
        let mut scope = prof.map(|pf| pf.scope("model"));
        let fp = self.logs[handle.index()].fingerprint;
        let side = format!("log{}", handle.0 + 1);
        if let Some(g) = self.graphs.get(&fp) {
            self.stats.graph_cache_hits += 1;
            if let Some(rec) = self.recorder.as_deref() {
                rec.counter_add(
                    "session.graph_cache",
                    ems_obs::labels(&[("result", "hit"), ("side", &side)]),
                    1,
                );
            }
            if let Some(s) = scope.as_mut() {
                s.count("cache_hits", 1);
            }
            return Arc::clone(g);
        }
        // Disk tier: a snapshot keyed by (log content, min-frequency filter)
        // rehydrates the graph into the session's shared symbol table.
        let store_key = persist::graph_store_key(fp, self.min_frequency);
        if let Some(bytes) = self.store_fetch(
            SnapshotKind::Graph,
            store_key,
            persist::GRAPH_PAYLOAD_VERSION,
        ) {
            match persist::decode_graph_in(&bytes, &mut self.table) {
                Ok(graph) => {
                    self.stats.store_hits += 1;
                    if let Some(rec) = self.recorder.as_deref() {
                        rec.counter_add(
                            "session.graph_cache",
                            ems_obs::labels(&[("result", "disk"), ("side", &side)]),
                            1,
                        );
                    }
                    let graph = Arc::new(graph);
                    self.graphs.insert(fp, Arc::clone(&graph));
                    if let Some(s) = scope.as_mut() {
                        s.count("store_hits", 1);
                    }
                    return graph;
                }
                Err(e) => self.store_quarantine(SnapshotKind::Graph, store_key, &e.to_string()),
            }
        }
        // ems-lint: allow(wall-clock-randomness, stage timing feeds session telemetry only, never similarity values)
        let started = Instant::now();
        let built = DependencyGraph::from_log_in(&self.logs[handle.index()].log, &mut self.table);
        let (graph, removed) = if self.min_frequency > 0.0 {
            filter_min_frequency(&built, self.min_frequency)
        } else {
            (built, 0)
        };
        let elapsed = started.elapsed();
        self.stats.graph_builds += 1;
        self.stats.setup += elapsed;
        if let Some(rec) = self.recorder.as_deref() {
            rec.counter_add(
                "session.graph_cache",
                ems_obs::labels(&[("result", "miss"), ("side", &side)]),
                1,
            );
            rec.span_closed(
                "session.model",
                ems_obs::labels(&[("side", &side)]),
                elapsed,
            );
            observe_graph(&graph, rec, &side);
            rec.counter_add(
                "graph_filtered_vertices",
                ems_obs::labels(&[("side", &side)]),
                removed as u64,
            );
        }
        let graph = Arc::new(graph);
        self.store_put(
            SnapshotKind::Graph,
            store_key,
            persist::GRAPH_PAYLOAD_VERSION,
            || persist::encode_graph(&graph),
        );
        self.graphs.insert(fp, Arc::clone(&graph));
        if let Some(s) = scope.as_mut() {
            s.count("builds", 1);
        }
        graph
    }

    /// Builds (or fetches) the kernel substrate of a graph pair for one
    /// direction, keyed by the graphs' content fingerprints.
    fn substrate_stage(
        &mut self,
        g1: &Arc<DependencyGraph>,
        g2: &Arc<DependencyGraph>,
        direction: Direction,
        prof: Option<&Profiler>,
    ) -> Arc<EngineSubstrate> {
        let mut scope = prof.map(|pf| pf.scope("substrate"));
        let dir_label = match direction {
            Direction::Forward => "forward",
            Direction::Backward => "backward",
        };
        let key = (g1.fingerprint(), g2.fingerprint(), direction as u8);
        if let Some(sub) = self.substrates.get(&key) {
            self.stats.substrate_cache_hits += 1;
            if let Some(rec) = self.recorder.as_deref() {
                rec.counter_add(
                    "session.substrate_cache",
                    ems_obs::labels(&[("result", "hit"), ("direction", dir_label)]),
                    1,
                );
            }
            if let Some(s) = scope.as_mut() {
                s.count("cache_hits", 1);
            }
            return Arc::clone(sub);
        }
        // Disk tier: the snapshot embeds direction and damping constant, and
        // a decoded substrate must still fit the graphs it will be paired
        // with — a shape disagreement means the key collided or the entry is
        // stale, either way quarantine-and-rebuild territory.
        let store_key = persist::substrate_store_key(key.0, key.1, direction, self.params.c);
        if let Some(bytes) = self.store_fetch(
            SnapshotKind::Substrate,
            store_key,
            persist::SUBSTRATE_PAYLOAD_VERSION,
        ) {
            match persist::decode_substrate(&bytes, direction, self.params.c) {
                Ok(sub) if sub.rows() == g1.num_real() && sub.cols() == g2.num_real() => {
                    self.stats.store_hits += 1;
                    if let Some(rec) = self.recorder.as_deref() {
                        rec.counter_add(
                            "session.substrate_cache",
                            ems_obs::labels(&[("result", "disk"), ("direction", dir_label)]),
                            1,
                        );
                    }
                    let sub = Arc::new(sub);
                    self.substrates.insert(key, Arc::clone(&sub));
                    if let Some(s) = scope.as_mut() {
                        s.count("store_hits", 1);
                    }
                    return sub;
                }
                Ok(sub) => self.store_quarantine(
                    SnapshotKind::Substrate,
                    store_key,
                    &format!(
                        "substrate shape {}x{} does not fit graphs {}x{}",
                        sub.rows(),
                        sub.cols(),
                        g1.num_real(),
                        g2.num_real()
                    ),
                ),
                Err(e) => self.store_quarantine(SnapshotKind::Substrate, store_key, &e.to_string()),
            }
        }
        let sub = Arc::new(EngineSubstrate::build(g1, g2, direction, self.params.c));
        self.stats.substrate_builds += 1;
        self.stats.setup += sub.build_time();
        if let Some(rec) = self.recorder.as_deref() {
            rec.counter_add(
                "session.substrate_cache",
                ems_obs::labels(&[("result", "miss"), ("direction", dir_label)]),
                1,
            );
            rec.span_closed(
                "session.substrate",
                ems_obs::labels(&[("direction", dir_label)]),
                sub.build_time(),
            );
        }
        self.store_put(
            SnapshotKind::Substrate,
            store_key,
            persist::SUBSTRATE_PAYLOAD_VERSION,
            || persist::encode_substrate(&sub),
        );
        self.substrates.insert(key, Arc::clone(&sub));
        if let Some(s) = scope.as_mut() {
            s.count("builds", 1);
        }
        sub
    }

    /// Builds (or fetches) the label matrix of a log pair, keyed by the
    /// logs' content fingerprints.
    fn label_stage(
        &mut self,
        h1: LogHandle,
        h2: LogHandle,
        prof: Option<&Profiler>,
    ) -> Arc<LabelMatrix> {
        let mut scope = prof.map(|pf| pf.scope("labels"));
        let key = (
            self.logs[h1.index()].fingerprint,
            self.logs[h2.index()].fingerprint,
        );
        if let Some(m) = self.labels.get(&key) {
            self.stats.label_cache_hits += 1;
            if let Some(rec) = self.recorder.as_deref() {
                rec.counter_add(
                    "session.label_cache",
                    ems_obs::labels(&[("result", "hit")]),
                    1,
                );
            }
            if let Some(s) = scope.as_mut() {
                s.count("cache_hits", 1);
            }
            return Arc::clone(m);
        }
        // Disk tier: the key separates label spaces (which measure filled
        // the matrix; alpha = 1 stores an all-zeros matrix), and a decoded
        // matrix must still fit the two alphabets.
        let space = self.params.label_space();
        let store_key = persist::labels_store_key(key.0, key.1, space);
        let (rows, cols) = (
            self.logs[h1.index()].log.alphabet_size(),
            self.logs[h2.index()].log.alphabet_size(),
        );
        if let Some(bytes) = self.store_fetch(
            SnapshotKind::Labels,
            store_key,
            persist::LABELS_PAYLOAD_VERSION,
        ) {
            match persist::decode_labels(&bytes) {
                Ok(m) if m.rows() == rows && m.cols() == cols => {
                    self.stats.store_hits += 1;
                    if let Some(rec) = self.recorder.as_deref() {
                        rec.counter_add(
                            "session.label_cache",
                            ems_obs::labels(&[("result", "disk")]),
                            1,
                        );
                    }
                    let m = Arc::new(m);
                    self.labels.insert(key, Arc::clone(&m));
                    if let Some(s) = scope.as_mut() {
                        s.count("store_hits", 1);
                    }
                    return m;
                }
                Ok(m) => self.store_quarantine(
                    SnapshotKind::Labels,
                    store_key,
                    &format!(
                        "label matrix shape {}x{} does not fit alphabets {rows}x{cols}",
                        m.rows(),
                        m.cols()
                    ),
                ),
                Err(e) => self.store_quarantine(SnapshotKind::Labels, store_key, &e.to_string()),
            }
        }
        let m = Arc::new(label_matrix_for(
            &self.params,
            &self.logs[h1.index()].log,
            &self.logs[h2.index()].log,
        ));
        self.stats.label_builds += 1;
        if let Some(rec) = self.recorder.as_deref() {
            rec.counter_add(
                "session.label_cache",
                ems_obs::labels(&[("result", "miss")]),
                1,
            );
        }
        self.store_put(
            SnapshotKind::Labels,
            store_key,
            persist::LABELS_PAYLOAD_VERSION,
            || persist::encode_labels(&m),
        );
        self.labels.insert(key, Arc::clone(&m));
        if let Some(s) = scope.as_mut() {
            s.count("builds", 1);
        }
        m
    }

    /// Disk-tier read: the payload of a valid snapshot, or `None` with the
    /// matching counter bumped. Envelope-level corruption was already
    /// quarantined by the store itself; every failure class degrades to a
    /// rebuild.
    fn store_fetch(&mut self, kind: SnapshotKind, key: u64, version: u32) -> Option<Vec<u8>> {
        let store = Arc::clone(self.store.as_ref()?);
        // ems-lint: allow(wall-clock-randomness, store-fetch latency feeds a nondeterministic telemetry histogram only, never similarity values)
        let started = self.recorder.is_some().then(Instant::now);
        let result = store.get(kind, key, version);
        if let Some(started) = started {
            let hist = self.fetch_hist.get_or_insert_with(|| {
                Histogram::nondeterministic("session.store_fetch_us", ems_obs::labels(&[]), "us")
            });
            hist.observe(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        match result {
            Ok(Some(bytes)) => Some(bytes),
            Ok(None) => {
                self.stats.store_misses += 1;
                None
            }
            Err(EmsError::StoreCorrupt { .. }) => {
                self.stats.store_quarantines += 1;
                None
            }
            Err(_) => {
                self.stats.store_read_failures += 1;
                None
            }
        }
    }

    /// Quarantines a snapshot whose payload failed decode-side validation
    /// (the envelope checksum passed, so the store could not have caught it).
    fn store_quarantine(&mut self, kind: SnapshotKind, key: u64, reason: &str) {
        if let Some(store) = &self.store {
            store.quarantine_entry(kind, key, reason);
            self.stats.store_quarantines += 1;
        }
    }

    /// Best-effort snapshot write after a rebuild: a failure only counts —
    /// the durable tier must never fail a match. `encode` runs only when a
    /// store is attached.
    fn store_put(
        &mut self,
        kind: SnapshotKind,
        key: u64,
        version: u32,
        encode: impl FnOnce() -> Vec<u8>,
    ) {
        if let Some(store) = &self.store {
            if store.put(kind, key, version, &encode()).is_err() {
                self.stats.store_write_failures += 1;
            }
        }
    }

    /// The warm seeds for a pair: its prior fixpoint, if one exists and
    /// still fits the current pair space (an append can change the alphabet
    /// and with it the matrix shape — a stale-shaped prior is skipped, not
    /// an error).
    fn warm_seed(
        &self,
        h1: LogHandle,
        h2: LogHandle,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
    ) -> Option<(Seed, Seed)> {
        let prior = self.priors.get(&(h1.0, h2.0))?;
        let (n1, n2) = (g1.num_real(), g2.num_real());
        if prior.forward.rows() != n1 || prior.forward.cols() != n2 {
            return None;
        }
        let unfrozen = vec![false; n1 * n2];
        Some((
            Seed {
                values: prior.forward.to_dense(),
                frozen: unfrozen.clone(),
            },
            Seed {
                values: prior.backward.to_dense(),
                frozen: unfrozen,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Ems;
    use ems_faults::{FaultPlan, PlannedFault};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh, collision-free store root under the system temp dir.
    fn tmp_store_root(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("ems-session-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Acyclic logs (every trace visits distinct names), so every pair has
    /// a finite Proposition-2 horizon — the precondition for the warm-start
    /// bitwise-stationarity argument in the module docs.
    fn dag_logs() -> (EventLog, EventLog) {
        let mut l1 = EventLog::new();
        l1.push_trace(["cash", "validate", "ship"]);
        l1.push_trace(["cash", "validate", "ship"]);
        l1.push_trace(["card", "validate", "ship"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["e0", "e1", "e3", "e4"]);
        l2.push_trace(["e0", "e2", "e3", "e4"]);
        (l1, l2)
    }

    /// Tiny epsilon so the exact phase never stops before every pair has
    /// reached its horizon (required for warm bit-identity).
    fn exact_params() -> EmsParams {
        EmsParams {
            epsilon: 1e-300,
            ..EmsParams::structural()
        }
    }

    #[test]
    fn session_matches_one_shot_ems_bitwise() {
        let (l1, l2) = dag_logs();
        let one_shot = Ems::new(exact_params()).match_logs(&l1, &l2);
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let out = session.match_pair(h1, h2).unwrap();
        assert_eq!(out.similarity.max_abs_diff(&one_shot.similarity), 0.0);
        assert_eq!(out.forward.max_abs_diff(&one_shot.forward), 0.0);
        assert_eq!(out.backward.max_abs_diff(&one_shot.backward), 0.0);
    }

    #[test]
    fn cached_rematch_skips_every_build_stage() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let cold = session.match_pair(h1, h2).unwrap();
        let cached = session.match_pair(h1, h2).unwrap();
        assert_eq!(cold.similarity.max_abs_diff(&cached.similarity), 0.0);
        let stats = session.stats();
        assert_eq!(stats.graph_builds, 2);
        assert_eq!(stats.graph_cache_hits, 2);
        assert_eq!(stats.substrate_builds, 2);
        assert_eq!(stats.substrate_cache_hits, 2);
        assert_eq!(stats.label_builds, 1);
        assert_eq!(stats.label_cache_hits, 1);
        // The repeat was a plain replay, so both solves were skipped too.
        assert_eq!(stats.outcome_cache_hits, 1);
    }

    #[test]
    fn outcome_cache_serves_plain_replays_only() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let cold = session.match_pair(h1, h2).unwrap();

        // A plain replay is served bit-identically from the cache.
        let cached = session.match_pair(h1, h2).unwrap();
        assert_eq!(session.stats().outcome_cache_hits, 1);
        for (a, b) in cold.similarity.data().iter().zip(cached.similarity.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(cold.stats, cached.stats);

        // Observably different calls bypass the cache: a budget...
        let budgeted = SessionOptions {
            budget: Budget {
                max_iterations: Some(1),
                ..Budget::default()
            },
            ..SessionOptions::default()
        };
        session.match_pair_opts(h1, h2, &budgeted).unwrap();
        assert_eq!(session.stats().outcome_cache_hits, 1);
        // ...a warm start...
        let warm = SessionOptions {
            warm_start: true,
            ..SessionOptions::default()
        };
        session.match_pair_opts(h1, h2, &warm).unwrap();
        assert_eq!(session.stats().outcome_cache_hits, 1);
        assert_eq!(session.stats().warm_starts, 1);
        // ...and an engine recorder (which must observe a real solve).
        let recorder = Arc::new(Recorder::new());
        let recorded = SessionOptions {
            recorder: Some(Arc::clone(&recorder)),
            ..SessionOptions::default()
        };
        session.match_pair_opts(h1, h2, &recorded).unwrap();
        assert_eq!(session.stats().outcome_cache_hits, 1);
        assert!(!recorder.records().is_empty());

        // Appending traces changes the fingerprint: the next plain call
        // re-solves and re-memoizes under the new key.
        session
            .append_traces(h2, [["e0", "e1", "e3", "e4"]])
            .unwrap();
        session.match_pair(h1, h2).unwrap();
        assert_eq!(session.stats().outcome_cache_hits, 1);
        session.match_pair(h1, h2).unwrap();
        assert_eq!(session.stats().outcome_cache_hits, 2);
    }

    #[test]
    fn session_attributes_setup_once() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let cold = session.match_pair(h1, h2).unwrap();
        // Runs executed against session-owned substrates charge no setup of
        // their own — merging them can never double-count the build.
        assert_eq!(cold.stats.phase_times.setup, Duration::ZERO);
        let setup_after_cold = session.stats().setup;
        let cached = session.match_pair(h1, h2).unwrap();
        assert_eq!(cached.stats.phase_times.setup, Duration::ZERO);
        // The cached re-match performed no setup work at all.
        assert_eq!(session.stats().setup, setup_after_cold);
    }

    #[test]
    fn warm_rematch_is_bitwise_stationary_and_converges_in_one_iteration() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let cold = session.match_pair(h1, h2).unwrap();
        assert!(cold.stats.iterations > 1);
        let warm_opts = SessionOptions {
            warm_start: true,
            ..SessionOptions::default()
        };
        let warm = session.match_pair_opts(h1, h2, &warm_opts).unwrap();
        assert_eq!(warm.similarity.max_abs_diff(&cold.similarity), 0.0);
        assert_eq!(warm.forward.max_abs_diff(&cold.forward), 0.0);
        assert_eq!(warm.backward.max_abs_diff(&cold.backward), 0.0);
        // Re-evaluating the fixpoint changes nothing: delta is exactly zero
        // after the first sweep in each direction.
        assert_eq!(warm.stats.iterations, 1);
        assert_eq!(session.stats().warm_starts, 1);
    }

    #[test]
    fn warm_start_without_prior_or_with_stale_shape_is_skipped() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let warm_opts = SessionOptions {
            warm_start: true,
            ..SessionOptions::default()
        };
        // No prior yet: runs cold, no warm-start counted.
        session.match_pair_opts(h1, h2, &warm_opts).unwrap();
        assert_eq!(session.stats().warm_starts, 0);
        // Append grows log 2's alphabet, so the prior's shape is stale and
        // must be skipped rather than rejected.
        session
            .append_traces(h2, [["e0", "e9", "e3", "e4"]])
            .unwrap();
        session.match_pair_opts(h1, h2, &warm_opts).unwrap();
        assert_eq!(session.stats().warm_starts, 0);
        // The alphabet-preserving append keeps the shape: now it warm-starts.
        session
            .append_traces(h2, [["e0", "e1", "e3", "e4"]])
            .unwrap();
        session.match_pair_opts(h1, h2, &warm_opts).unwrap();
        assert_eq!(session.stats().warm_starts, 1);
        // Each append rebuilt log 2's model (fingerprint miss); log 1 hit.
        assert_eq!(session.stats().graph_builds, 4);
    }

    #[test]
    fn append_traces_changes_the_result() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let before = session.match_pair(h1, h2).unwrap();
        session
            .append_traces(h2, [["e0", "e1", "e3", "e4"], ["e0", "e1", "e3", "e4"]])
            .unwrap();
        let after = session.match_pair(h1, h2).unwrap();
        assert!(before.similarity.max_abs_diff(&after.similarity) > 0.0);
    }

    #[test]
    fn unknown_handles_are_rejected() {
        let (l1, _) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let bogus = LogHandle(7);
        assert!(matches!(
            session.match_pair(h1, bogus),
            Err(CoreError::UnknownLog { handle: 7, logs: 1 })
        ));
        assert!(session.log(bogus).is_err());
        assert!(session.append_traces(bogus, [["a"]]).is_err());
    }

    #[test]
    fn session_recorder_documents_cache_behavior() {
        let (l1, l2) = dag_logs();
        let recorder = Arc::new(Recorder::new());
        let mut session = MatchSession::new(exact_params()).with_recorder(Arc::clone(&recorder));
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        session.match_pair(h1, h2).unwrap();
        session.match_pair(h1, h2).unwrap();
        let trace = ems_obs::jsonl::write(&recorder.records());
        assert!(trace.contains("session.graph_cache"));
        assert!(trace.contains("\"result\":\"miss\""));
        assert!(trace.contains("\"result\":\"hit\""));
        assert!(trace.contains("session.model"));
        assert!(trace.contains("session.substrate"));
        assert!(trace.contains("graph_vertices"));
    }

    #[test]
    fn fresh_session_warms_every_build_stage_from_disk() {
        let root = tmp_store_root("diskwarm");
        let (l1, l2) = dag_logs();
        // Session A populates the store while matching cold.
        let store = Arc::new(CatalogStore::open(&root).unwrap());
        let mut a = MatchSession::new(exact_params()).with_store(Arc::clone(&store));
        let ha1 = a.ingest(l1.clone());
        let ha2 = a.ingest(l2.clone());
        let cold = a.match_pair(ha1, ha2).unwrap();
        assert_eq!(a.stats().store_misses, 5); // 2 graphs + 2 substrates + 1 labels
        assert_eq!(a.stats().store_write_failures, 0);
        drop(a);
        drop(store);
        // Session B shares nothing in memory — only the store directory —
        // yet builds nothing and reproduces the scores bit-identically.
        let store = Arc::new(CatalogStore::open(&root).unwrap());
        let mut b = MatchSession::new(exact_params()).with_store(store);
        let hb1 = b.ingest(l1);
        let hb2 = b.ingest(l2);
        let warm = b.match_pair(hb1, hb2).unwrap();
        assert_eq!(warm.similarity.max_abs_diff(&cold.similarity), 0.0);
        assert_eq!(warm.forward.max_abs_diff(&cold.forward), 0.0);
        assert_eq!(warm.backward.max_abs_diff(&cold.backward), 0.0);
        let stats = b.stats();
        assert_eq!(stats.store_hits, 5);
        assert_eq!(stats.graph_builds, 0);
        assert_eq!(stats.substrate_builds, 0);
        assert_eq!(stats.label_builds, 0);
        // Disk rehydration interns into the shared table like a build would.
        assert_eq!(b.symbols().len(), 9);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupted_snapshots_degrade_to_rebuild_with_identical_scores() {
        let root = tmp_store_root("corrupt");
        let (l1, l2) = dag_logs();
        let mut clean = MatchSession::new(exact_params());
        let hc1 = clean.ingest(l1.clone());
        let hc2 = clean.ingest(l2.clone());
        let baseline = clean.match_pair(hc1, hc2).unwrap();
        {
            let store = Arc::new(CatalogStore::open(&root).unwrap());
            let mut a = MatchSession::new(exact_params()).with_store(store);
            let h1 = a.ingest(l1.clone());
            let h2 = a.ingest(l2.clone());
            a.match_pair(h1, h2).unwrap();
        }
        // Flip one payload byte in every snapshot on disk.
        let objects = root.join("objects");
        let mut corrupted = 0;
        for entry in std::fs::read_dir(&objects).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "snap") {
                let mut bytes = std::fs::read(&path).unwrap();
                let last = bytes.len() - 1;
                bytes[last] ^= 0x01;
                std::fs::write(&path, &bytes).unwrap();
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, 5);
        // A fresh session quarantines every corrupt entry, rebuilds from
        // source, re-persists, and still reproduces the clean scores.
        let store = Arc::new(CatalogStore::open(&root).unwrap());
        let mut b = MatchSession::new(exact_params()).with_store(Arc::clone(&store));
        let h1 = b.ingest(l1.clone());
        let h2 = b.ingest(l2.clone());
        let recovered = b.match_pair(h1, h2).unwrap();
        assert_eq!(recovered.similarity.max_abs_diff(&baseline.similarity), 0.0);
        assert_eq!(b.stats().store_quarantines, 5);
        assert_eq!(b.stats().store_hits, 0);
        assert_eq!(b.stats().graph_builds, 2);
        // The rebuilds were re-persisted: a third session disk-warms fully.
        drop(b);
        let mut c = MatchSession::new(exact_params()).with_store(store);
        let h1 = c.ingest(l1);
        let h2 = c.ingest(l2);
        let rewarmed = c.match_pair(h1, h2).unwrap();
        assert_eq!(rewarmed.similarity.max_abs_diff(&baseline.similarity), 0.0);
        assert_eq!(c.stats().store_hits, 5);
        assert_eq!(c.stats().graph_builds, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_stage_faults_are_typed_or_degrade() {
        let (l1, l2) = dag_logs();
        // Terminal ingest fault: the match fails with the typed error.
        let plan = FaultPlan {
            seed: 0,
            faults: vec![PlannedFault {
                site: FaultSite::Ingest,
                op: 0,
                kind: FaultKind::NoSpace,
            }],
        };
        let opts = SessionOptions {
            injector: Some(Arc::new(FaultInjector::new(plan))),
            ..SessionOptions::default()
        };
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1.clone());
        let h2 = session.ingest(l2.clone());
        assert!(matches!(
            session.match_pair_opts(h1, h2, &opts),
            Err(CoreError::FaultInjected { .. })
        ));
        // The op counter advanced past the fault: the retry succeeds and
        // matches a fault-free run bit-identically.
        let retried = session.match_pair_opts(h1, h2, &opts).unwrap();
        let clean = session.match_pair(h1, h2).unwrap();
        assert_eq!(retried.similarity.max_abs_diff(&clean.similarity), 0.0);

        // Transient ingest fault: absorbed, the match proceeds.
        let plan = FaultPlan {
            seed: 0,
            faults: vec![PlannedFault {
                site: FaultSite::Ingest,
                op: 0,
                kind: FaultKind::TransientIo,
            }],
        };
        let opts = SessionOptions {
            injector: Some(Arc::new(FaultInjector::new(plan))),
            ..SessionOptions::default()
        };
        let absorbed = session.match_pair_opts(h1, h2, &opts).unwrap();
        assert_eq!(absorbed.similarity.max_abs_diff(&clean.similarity), 0.0);

        // Solve-stage budget exhaustion: degrades to estimation (a defined
        // outcome with `degraded` flagged), never an error.
        let plan = FaultPlan {
            seed: 0,
            faults: vec![PlannedFault {
                site: FaultSite::Solve,
                op: 0,
                kind: FaultKind::BudgetExhaust,
            }],
        };
        let opts = SessionOptions {
            injector: Some(Arc::new(FaultInjector::new(plan))),
            ..SessionOptions::default()
        };
        let degraded = session.match_pair_opts(h1, h2, &opts).unwrap();
        assert!(degraded.stats.degraded);
    }

    #[test]
    fn shared_symbol_table_spans_all_session_graphs() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        session.match_pair(h1, h2).unwrap();
        // Both alphabets landed in one table: 4 + 5 distinct names.
        assert_eq!(session.symbols().len(), 9);
        let threads_opts = SessionOptions {
            threads: Some(4),
            oversubscribe: true,
            ..SessionOptions::default()
        };
        // Thread count does not disturb determinism through the session.
        let a = session.match_pair(h1, h2).unwrap();
        let b = session.match_pair_opts(h1, h2, &threads_opts).unwrap();
        assert_eq!(a.similarity.max_abs_diff(&b.similarity), 0.0);
    }
}
