//! The staged, reusable matching pipeline: **ingest → model → substrate →
//! solve → aggregate**.
//!
//! [`crate::Ems`] is one-shot: every call re-derives the dependency graphs,
//! the label matrix and the kernel substrate even when the inputs did not
//! change. A [`MatchSession`] makes each stage's product explicit and caches
//! it by *content fingerprint* (FNV-1a over names, frequencies and
//! adjacency — see [`ems_events::fingerprint_log`] and
//! [`ems_depgraph::DependencyGraph::fingerprint`]), so matching N logs
//! against one reference builds the reference-side model once, and
//! re-matching an unchanged pair is pure solve work.
//!
//! Symbols are interned once per session ([`SymbolTable`]): every graph the
//! session builds shares one table, so label identity across logs is a `u32`
//! comparison, never a string comparison.
//!
//! # Warm starts
//!
//! With [`SessionOptions::warm_start`] set, a re-match seeds both direction
//! runs from the pair's previous fixpoint. This is sound by Theorem 1: the
//! similarity update is monotone with a unique fixpoint, so iteration
//! converges to the same matrix from any start at or below it — and a
//! previously converged matrix of the same pair space is such a start. On
//! graphs whose pairs all have finite Proposition-2 horizons (acyclic
//! dependency graphs) with pruning enabled, the warm run is bitwise
//! stationary: every pair's neighbors retire strictly before the pair's own
//! horizon, so re-evaluating the old fixpoint reproduces it exactly and the
//! run converges in one iteration with a bit-identical matrix (pinned by the
//! `session_reuse` golden tests).
//!
//! # Telemetry
//!
//! Two recorders with distinct roles:
//!
//! * the **session recorder** ([`MatchSession::with_recorder`]) receives the
//!   stage spans (`session.model`, `session.substrate`) and the cache
//!   counters (`session.graph_cache`, `session.substrate_cache`,
//!   `session.label_cache`, `session.warm_start`) that prove which stages
//!   were skipped;
//! * the **engine recorder** ([`SessionOptions::recorder`]) is handed to the
//!   solve stage only, so a cached re-match emits an engine trace
//!   byte-identical to the cold run's.
//!
//! ```
//! use ems_core::{EmsParams, MatchSession};
//! use ems_events::EventLog;
//!
//! let mut reference = EventLog::new();
//! reference.push_trace(["a", "b", "c"]);
//! let mut observed = EventLog::new();
//! observed.push_trace(["x", "y", "z"]);
//!
//! let mut session = MatchSession::new(EmsParams::structural());
//! let r = session.ingest(reference);
//! let o = session.ingest(observed);
//! let cold = session.match_pair(r, o).unwrap();
//! let cached = session.match_pair(r, o).unwrap(); // no graph/substrate rebuild
//! assert!(cold.similarity.max_abs_diff(&cached.similarity) == 0.0);
//! assert_eq!(session.stats().graph_builds, 2);
//! assert_eq!(session.stats().substrate_builds, 2); // one per direction — built once
//! ```

use crate::engine::{Budget, Engine, RunOptions, Seed};
use crate::error::CoreError;
use crate::matcher::{aggregate_directions, label_matrix_for, MatchOutcome};
use crate::params::{Direction, EmsParams};
use crate::substrate::EngineSubstrate;
use ems_depgraph::{filter_min_frequency, observe_graph, DependencyGraph};
use ems_events::{fingerprint_log, EventLog, SymbolTable};
use ems_labels::LabelMatrix;
use ems_obs::Recorder;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a log ingested into a [`MatchSession`]. Handles are stable for
/// the session's lifetime and survive [`MatchSession::append_traces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogHandle(u32);

impl LogHandle {
    /// Zero-based ingestion index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-call options for [`MatchSession::match_pair_opts`].
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Per-call thread-count override; `None` defers to
    /// [`EmsParams::threads`].
    pub threads: Option<usize>,
    /// Seed both direction runs from this pair's previous fixpoint when one
    /// of matching shape exists (see the module docs for why this is sound).
    pub warm_start: bool,
    /// Resource budget for each direction's run.
    pub budget: Budget,
    /// Engine-level telemetry sink, passed through to the solve stage only —
    /// session stage spans and cache counters go to the *session* recorder
    /// ([`MatchSession::with_recorder`]), keeping this trace byte-comparable
    /// between cold and cached runs.
    pub recorder: Option<Arc<Recorder>>,
}

/// Counters describing the session's cache behavior and the setup work it
/// performed, attributed once at session level (runs executed against cached
/// substrates report zero setup in their own [`crate::PhaseTimes`] — see
/// `session_attributes_setup_once` in the tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Dependency graphs built (model-stage cache misses).
    pub graph_builds: u64,
    /// Model-stage cache hits.
    pub graph_cache_hits: u64,
    /// [`EngineSubstrate`]s built (substrate-stage cache misses).
    pub substrate_builds: u64,
    /// Substrate-stage cache hits.
    pub substrate_cache_hits: u64,
    /// Label matrices computed.
    pub label_builds: u64,
    /// Label-stage cache hits.
    pub label_cache_hits: u64,
    /// Solve-stage runs seeded from a prior fixpoint.
    pub warm_starts: u64,
    /// Total wall-clock setup the session performed (graph + substrate
    /// builds) — the single authoritative setup attribution for all runs
    /// the session executed.
    pub setup: Duration,
}

#[derive(Debug)]
struct SessionLog {
    log: EventLog,
    fingerprint: u64,
}

/// The previous fixpoint of one handle pair — the warm-start source.
#[derive(Debug)]
struct Prior {
    forward: crate::sim::SimMatrix,
    backward: crate::sim::SimMatrix,
}

/// A reusable, staged matching pipeline over a set of ingested logs. See
/// the module docs for the stage/caching model.
#[derive(Debug)]
pub struct MatchSession {
    params: EmsParams,
    min_frequency: f64,
    table: SymbolTable,
    logs: Vec<SessionLog>,
    /// Model cache: log content fingerprint → dependency graph (with the
    /// session's min-frequency filter applied). `min_frequency` and the
    /// parameters are session constants, so they are not part of the key.
    graphs: BTreeMap<u64, Arc<DependencyGraph>>,
    /// Substrate cache: (graph fp 1, graph fp 2, direction) → substrate.
    substrates: BTreeMap<(u64, u64, u8), Arc<EngineSubstrate>>,
    /// Label cache: (log fp 1, log fp 2) → label matrix.
    labels: BTreeMap<(u64, u64), Arc<LabelMatrix>>,
    /// Prior fixpoints by handle pair — survives `append_traces` (the warm
    /// seed for the re-match), unlike the fingerprint-keyed caches which the
    /// new content simply misses.
    priors: BTreeMap<(u32, u32), Prior>,
    stats: SessionStats,
    recorder: Option<Arc<Recorder>>,
}

impl MatchSession {
    /// Creates a session with the given parameters.
    ///
    /// # Panics
    /// If the parameters are invalid (see [`EmsParams::validate`]). Use
    /// [`try_new`](Self::try_new) for a fallible variant.
    #[allow(clippy::panic)] // documented contract panic; try_new is the fallible path
    pub fn new(params: EmsParams) -> Self {
        match Self::try_new(params) {
            Ok(session) => session,
            // ems-lint: allow(panic-surface, documented contract panic; try_new is the fallible path)
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`new`](Self::new): returns
    /// [`CoreError::InvalidParams`] instead of panicking.
    pub fn try_new(params: EmsParams) -> Result<Self, CoreError> {
        params.validate().map_err(CoreError::InvalidParams)?;
        Ok(MatchSession {
            params,
            min_frequency: 0.0,
            table: SymbolTable::new(),
            logs: Vec::new(),
            graphs: BTreeMap::new(),
            substrates: BTreeMap::new(),
            labels: BTreeMap::new(),
            priors: BTreeMap::new(),
            stats: SessionStats::default(),
            recorder: None,
        })
    }

    /// Attaches the session telemetry sink (stage spans, cache counters).
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Sets the minimum edge frequency applied when building graphs
    /// (Section 2 filtering). A session constant: it participates in every
    /// model-stage build, so it is deliberately not part of the cache keys.
    pub fn with_min_frequency(mut self, threshold: f64) -> Self {
        self.min_frequency = threshold;
        self
    }

    /// The session's parameters.
    pub fn params(&self) -> &EmsParams {
        &self.params
    }

    /// The session-wide symbol table. Grows as logs are modeled; symbols
    /// are shared across every graph the session builds.
    pub fn symbols(&self) -> &SymbolTable {
        &self.table
    }

    /// Cache and setup counters accumulated so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Takes ownership of a log and returns its handle.
    pub fn ingest(&mut self, log: EventLog) -> LogHandle {
        let fingerprint = fingerprint_log(&log);
        let handle = LogHandle(u32::try_from(self.logs.len()).unwrap_or(u32::MAX));
        debug_assert!((handle.0 as usize) == self.logs.len(), "session log limit");
        self.logs.push(SessionLog { log, fingerprint });
        handle
    }

    /// The log behind a handle.
    pub fn log(&self, handle: LogHandle) -> Result<&EventLog, CoreError> {
        self.session_log(handle).map(|s| &s.log)
    }

    /// Appends traces to an ingested log and re-fingerprints it. The
    /// handle's cached graph/substrate/label products are not invalidated —
    /// the new fingerprint simply misses them — but the pair's prior
    /// fixpoint is kept as the warm-start source for the re-match.
    pub fn append_traces<I, T, S>(&mut self, handle: LogHandle, traces: I) -> Result<(), CoreError>
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.session_log(handle)?;
        let entry = &mut self.logs[handle.index()];
        for trace in traces {
            entry.log.push_trace(trace);
        }
        entry.fingerprint = fingerprint_log(&entry.log);
        Ok(())
    }

    /// Matches two ingested logs with default options.
    pub fn match_pair(&mut self, h1: LogHandle, h2: LogHandle) -> Result<MatchOutcome, CoreError> {
        self.match_pair_opts(h1, h2, &SessionOptions::default())
    }

    /// Matches two ingested logs: model, substrate and label products are
    /// served from the session caches when their fingerprints match, and the
    /// solve stage optionally warm-starts from the pair's prior fixpoint.
    pub fn match_pair_opts(
        &mut self,
        h1: LogHandle,
        h2: LogHandle,
        options: &SessionOptions,
    ) -> Result<MatchOutcome, CoreError> {
        self.session_log(h1)?;
        self.session_log(h2)?;

        // Model stage: one dependency graph per distinct log content.
        let g1 = self.model_stage(h1);
        let g2 = self.model_stage(h2);

        // Substrate stage: one kernel substrate per (graphs, direction).
        let fwd_sub = self.substrate_stage(&g1, &g2, Direction::Forward);
        let bwd_sub = self.substrate_stage(&g1, &g2, Direction::Backward);

        // Label stage: one label matrix per log-content pair.
        let labels = self.label_stage(h1, h2);

        // Solve stage: run both directions on cached substrates; the
        // engines charge zero setup (the session already attributed it).
        let seed = options
            .warm_start
            .then(|| self.warm_seed(h1, h2, &g1, &g2))
            .flatten();
        let run_options = |seed: Option<Seed>| RunOptions {
            seed,
            abort_below: None,
            budget: options.budget.clone(),
            threads: options.threads,
            recorder: options.recorder.clone(),
        };
        let (fwd_seed, bwd_seed) = match seed {
            Some((f, b)) => {
                self.stats.warm_starts += 1;
                if let Some(rec) = self.recorder.as_deref() {
                    rec.counter_add("session.warm_start", ems_obs::labels(&[]), 1);
                }
                (Some(f), Some(b))
            }
            None => (None, None),
        };
        let fwd = Engine::try_with_substrate(
            &g1,
            &g2,
            &labels,
            &self.params,
            Direction::Forward,
            fwd_sub,
        )?
        .try_run(&run_options(fwd_seed))?;
        let bwd = Engine::try_with_substrate(
            &g1,
            &g2,
            &labels,
            &self.params,
            Direction::Backward,
            bwd_sub,
        )?
        .try_run(&run_options(bwd_seed))?;

        // Aggregate stage — identical combine to `Ems`, then remember the
        // fixpoint as the pair's warm-start source.
        let outcome = aggregate_directions(&self.params, fwd, bwd);
        self.priors.insert(
            (h1.0, h2.0),
            Prior {
                forward: outcome.forward.clone(),
                backward: outcome.backward.clone(),
            },
        );
        Ok(outcome)
    }

    fn session_log(&self, handle: LogHandle) -> Result<&SessionLog, CoreError> {
        self.logs.get(handle.index()).ok_or(CoreError::UnknownLog {
            handle: handle.0,
            logs: self.logs.len(),
        })
    }

    /// Builds (or fetches) the dependency graph of a log, keyed by its
    /// content fingerprint.
    fn model_stage(&mut self, handle: LogHandle) -> Arc<DependencyGraph> {
        let fp = self.logs[handle.index()].fingerprint;
        let side = format!("log{}", handle.0 + 1);
        if let Some(g) = self.graphs.get(&fp) {
            self.stats.graph_cache_hits += 1;
            if let Some(rec) = self.recorder.as_deref() {
                rec.counter_add(
                    "session.graph_cache",
                    ems_obs::labels(&[("result", "hit"), ("side", &side)]),
                    1,
                );
            }
            return Arc::clone(g);
        }
        // ems-lint: allow(wall-clock-randomness, stage timing feeds session telemetry only, never similarity values)
        let started = Instant::now();
        let built = DependencyGraph::from_log_in(&self.logs[handle.index()].log, &mut self.table);
        let (graph, removed) = if self.min_frequency > 0.0 {
            filter_min_frequency(&built, self.min_frequency)
        } else {
            (built, 0)
        };
        let elapsed = started.elapsed();
        self.stats.graph_builds += 1;
        self.stats.setup += elapsed;
        if let Some(rec) = self.recorder.as_deref() {
            rec.counter_add(
                "session.graph_cache",
                ems_obs::labels(&[("result", "miss"), ("side", &side)]),
                1,
            );
            rec.span_closed(
                "session.model",
                ems_obs::labels(&[("side", &side)]),
                elapsed,
            );
            observe_graph(&graph, rec, &side);
            rec.counter_add(
                "graph_filtered_vertices",
                ems_obs::labels(&[("side", &side)]),
                removed as u64,
            );
        }
        let graph = Arc::new(graph);
        self.graphs.insert(fp, Arc::clone(&graph));
        graph
    }

    /// Builds (or fetches) the kernel substrate of a graph pair for one
    /// direction, keyed by the graphs' content fingerprints.
    fn substrate_stage(
        &mut self,
        g1: &Arc<DependencyGraph>,
        g2: &Arc<DependencyGraph>,
        direction: Direction,
    ) -> Arc<EngineSubstrate> {
        let dir_label = match direction {
            Direction::Forward => "forward",
            Direction::Backward => "backward",
        };
        let key = (g1.fingerprint(), g2.fingerprint(), direction as u8);
        if let Some(sub) = self.substrates.get(&key) {
            self.stats.substrate_cache_hits += 1;
            if let Some(rec) = self.recorder.as_deref() {
                rec.counter_add(
                    "session.substrate_cache",
                    ems_obs::labels(&[("result", "hit"), ("direction", dir_label)]),
                    1,
                );
            }
            return Arc::clone(sub);
        }
        let sub = Arc::new(EngineSubstrate::build(g1, g2, direction, self.params.c));
        self.stats.substrate_builds += 1;
        self.stats.setup += sub.build_time();
        if let Some(rec) = self.recorder.as_deref() {
            rec.counter_add(
                "session.substrate_cache",
                ems_obs::labels(&[("result", "miss"), ("direction", dir_label)]),
                1,
            );
            rec.span_closed(
                "session.substrate",
                ems_obs::labels(&[("direction", dir_label)]),
                sub.build_time(),
            );
        }
        self.substrates.insert(key, Arc::clone(&sub));
        sub
    }

    /// Builds (or fetches) the label matrix of a log pair, keyed by the
    /// logs' content fingerprints.
    fn label_stage(&mut self, h1: LogHandle, h2: LogHandle) -> Arc<LabelMatrix> {
        let key = (
            self.logs[h1.index()].fingerprint,
            self.logs[h2.index()].fingerprint,
        );
        if let Some(m) = self.labels.get(&key) {
            self.stats.label_cache_hits += 1;
            if let Some(rec) = self.recorder.as_deref() {
                rec.counter_add(
                    "session.label_cache",
                    ems_obs::labels(&[("result", "hit")]),
                    1,
                );
            }
            return Arc::clone(m);
        }
        let m = Arc::new(label_matrix_for(
            &self.params,
            &self.logs[h1.index()].log,
            &self.logs[h2.index()].log,
        ));
        self.stats.label_builds += 1;
        if let Some(rec) = self.recorder.as_deref() {
            rec.counter_add(
                "session.label_cache",
                ems_obs::labels(&[("result", "miss")]),
                1,
            );
        }
        self.labels.insert(key, Arc::clone(&m));
        m
    }

    /// The warm seeds for a pair: its prior fixpoint, if one exists and
    /// still fits the current pair space (an append can change the alphabet
    /// and with it the matrix shape — a stale-shaped prior is skipped, not
    /// an error).
    fn warm_seed(
        &self,
        h1: LogHandle,
        h2: LogHandle,
        g1: &DependencyGraph,
        g2: &DependencyGraph,
    ) -> Option<(Seed, Seed)> {
        let prior = self.priors.get(&(h1.0, h2.0))?;
        let (n1, n2) = (g1.num_real(), g2.num_real());
        if prior.forward.rows() != n1 || prior.forward.cols() != n2 {
            return None;
        }
        let unfrozen = vec![false; n1 * n2];
        Some((
            Seed {
                values: prior.forward.clone(),
                frozen: unfrozen.clone(),
            },
            Seed {
                values: prior.backward.clone(),
                frozen: unfrozen,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::Ems;

    /// Acyclic logs (every trace visits distinct names), so every pair has
    /// a finite Proposition-2 horizon — the precondition for the warm-start
    /// bitwise-stationarity argument in the module docs.
    fn dag_logs() -> (EventLog, EventLog) {
        let mut l1 = EventLog::new();
        l1.push_trace(["cash", "validate", "ship"]);
        l1.push_trace(["cash", "validate", "ship"]);
        l1.push_trace(["card", "validate", "ship"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["e0", "e1", "e3", "e4"]);
        l2.push_trace(["e0", "e2", "e3", "e4"]);
        (l1, l2)
    }

    /// Tiny epsilon so the exact phase never stops before every pair has
    /// reached its horizon (required for warm bit-identity).
    fn exact_params() -> EmsParams {
        EmsParams {
            epsilon: 1e-300,
            ..EmsParams::structural()
        }
    }

    #[test]
    fn session_matches_one_shot_ems_bitwise() {
        let (l1, l2) = dag_logs();
        let one_shot = Ems::new(exact_params()).match_logs(&l1, &l2);
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let out = session.match_pair(h1, h2).unwrap();
        assert_eq!(out.similarity.max_abs_diff(&one_shot.similarity), 0.0);
        assert_eq!(out.forward.max_abs_diff(&one_shot.forward), 0.0);
        assert_eq!(out.backward.max_abs_diff(&one_shot.backward), 0.0);
    }

    #[test]
    fn cached_rematch_skips_every_build_stage() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let cold = session.match_pair(h1, h2).unwrap();
        let cached = session.match_pair(h1, h2).unwrap();
        assert_eq!(cold.similarity.max_abs_diff(&cached.similarity), 0.0);
        let stats = session.stats();
        assert_eq!(stats.graph_builds, 2);
        assert_eq!(stats.graph_cache_hits, 2);
        assert_eq!(stats.substrate_builds, 2);
        assert_eq!(stats.substrate_cache_hits, 2);
        assert_eq!(stats.label_builds, 1);
        assert_eq!(stats.label_cache_hits, 1);
    }

    #[test]
    fn session_attributes_setup_once() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let cold = session.match_pair(h1, h2).unwrap();
        // Runs executed against session-owned substrates charge no setup of
        // their own — merging them can never double-count the build.
        assert_eq!(cold.stats.phase_times.setup, Duration::ZERO);
        let setup_after_cold = session.stats().setup;
        let cached = session.match_pair(h1, h2).unwrap();
        assert_eq!(cached.stats.phase_times.setup, Duration::ZERO);
        // The cached re-match performed no setup work at all.
        assert_eq!(session.stats().setup, setup_after_cold);
    }

    #[test]
    fn warm_rematch_is_bitwise_stationary_and_converges_in_one_iteration() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let cold = session.match_pair(h1, h2).unwrap();
        assert!(cold.stats.iterations > 1);
        let warm_opts = SessionOptions {
            warm_start: true,
            ..SessionOptions::default()
        };
        let warm = session.match_pair_opts(h1, h2, &warm_opts).unwrap();
        assert_eq!(warm.similarity.max_abs_diff(&cold.similarity), 0.0);
        assert_eq!(warm.forward.max_abs_diff(&cold.forward), 0.0);
        assert_eq!(warm.backward.max_abs_diff(&cold.backward), 0.0);
        // Re-evaluating the fixpoint changes nothing: delta is exactly zero
        // after the first sweep in each direction.
        assert_eq!(warm.stats.iterations, 1);
        assert_eq!(session.stats().warm_starts, 1);
    }

    #[test]
    fn warm_start_without_prior_or_with_stale_shape_is_skipped() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let warm_opts = SessionOptions {
            warm_start: true,
            ..SessionOptions::default()
        };
        // No prior yet: runs cold, no warm-start counted.
        session.match_pair_opts(h1, h2, &warm_opts).unwrap();
        assert_eq!(session.stats().warm_starts, 0);
        // Append grows log 2's alphabet, so the prior's shape is stale and
        // must be skipped rather than rejected.
        session
            .append_traces(h2, [["e0", "e9", "e3", "e4"]])
            .unwrap();
        session.match_pair_opts(h1, h2, &warm_opts).unwrap();
        assert_eq!(session.stats().warm_starts, 0);
        // The alphabet-preserving append keeps the shape: now it warm-starts.
        session
            .append_traces(h2, [["e0", "e1", "e3", "e4"]])
            .unwrap();
        session.match_pair_opts(h1, h2, &warm_opts).unwrap();
        assert_eq!(session.stats().warm_starts, 1);
        // Each append rebuilt log 2's model (fingerprint miss); log 1 hit.
        assert_eq!(session.stats().graph_builds, 4);
    }

    #[test]
    fn append_traces_changes_the_result() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        let before = session.match_pair(h1, h2).unwrap();
        session
            .append_traces(h2, [["e0", "e1", "e3", "e4"], ["e0", "e1", "e3", "e4"]])
            .unwrap();
        let after = session.match_pair(h1, h2).unwrap();
        assert!(before.similarity.max_abs_diff(&after.similarity) > 0.0);
    }

    #[test]
    fn unknown_handles_are_rejected() {
        let (l1, _) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let bogus = LogHandle(7);
        assert!(matches!(
            session.match_pair(h1, bogus),
            Err(CoreError::UnknownLog { handle: 7, logs: 1 })
        ));
        assert!(session.log(bogus).is_err());
        assert!(session.append_traces(bogus, [["a"]]).is_err());
    }

    #[test]
    fn session_recorder_documents_cache_behavior() {
        let (l1, l2) = dag_logs();
        let recorder = Arc::new(Recorder::new());
        let mut session = MatchSession::new(exact_params()).with_recorder(Arc::clone(&recorder));
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        session.match_pair(h1, h2).unwrap();
        session.match_pair(h1, h2).unwrap();
        let trace = ems_obs::jsonl::write(&recorder.records());
        assert!(trace.contains("session.graph_cache"));
        assert!(trace.contains("\"result\":\"miss\""));
        assert!(trace.contains("\"result\":\"hit\""));
        assert!(trace.contains("session.model"));
        assert!(trace.contains("session.substrate"));
        assert!(trace.contains("graph_vertices"));
    }

    #[test]
    fn shared_symbol_table_spans_all_session_graphs() {
        let (l1, l2) = dag_logs();
        let mut session = MatchSession::new(exact_params());
        let h1 = session.ingest(l1);
        let h2 = session.ingest(l2);
        session.match_pair(h1, h2).unwrap();
        // Both alphabets landed in one table: 4 + 5 distinct names.
        assert_eq!(session.symbols().len(), 9);
        let threads_opts = SessionOptions {
            threads: Some(4),
            ..SessionOptions::default()
        };
        // Thread count does not disturb determinism through the session.
        let a = session.match_pair(h1, h2).unwrap();
        let b = session.match_pair_opts(h1, h2, &threads_opts).unwrap();
        assert_eq!(a.similarity.max_abs_diff(&b.similarity), 0.0);
    }
}
