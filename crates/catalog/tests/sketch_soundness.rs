//! Property suite for the sketch score bound (ISSUE 10 satellite): on
//! seeded synthetic corpora the minhash/histogram upper bound must
//! dominate the exact EMS retrieval score, and top-k pruning at the
//! default threshold must keep recall at exactly 1.0.

use ems_catalog::{outcome_score, Catalog};
use ems_core::{EmsParams, LabelMeasure, SharedSession};
use ems_depgraph::{BoundCombine, GraphSketch, LabelBound};
use ems_events::EventLog;
use ems_synth::{PairConfig, PairGenerator, TreeConfig};
use std::sync::Arc;

/// Rounding slack: the bound is computed by a different (shorter) float
/// expression than the fixpoint, so exact real-arithmetic dominance can
/// be off by a few ulps in f64.
const FLOAT_SLACK: f64 = 1e-9;

fn synth_pair(seed: u64, num_activities: usize, xor_jitter: f64) -> (EventLog, EventLog) {
    let cfg = PairConfig {
        tree: TreeConfig {
            num_activities,
            seed: seed.wrapping_mul(31).wrapping_add(7),
            ..TreeConfig::default()
        },
        traces_per_log: 30,
        seed: seed.wrapping_add(17),
        xor_jitter,
        ..PairConfig::default()
    };
    let pair = PairGenerator::new(cfg).generate();
    (pair.log1, pair.log2)
}

/// The label-bound mode the planner derives from a parameter set: the
/// name-set overlap cap only when exact scoring runs the equality measure.
fn planner_label_bound(params: &EmsParams) -> LabelBound {
    match (params.alpha < 1.0, params.label_measure) {
        (true, LabelMeasure::ExactName) => LabelBound::ExactName,
        _ => LabelBound::Any,
    }
}

/// bound ≥ exact on ≥200 seeded pairs — structural, q-gram-labeled, and
/// exact-name-labeled parameters, both combine modes the planner uses,
/// each under the label-bound mode the planner would derive.
#[test]
fn upper_bound_dominates_exact_score_on_synthetic_corpora() {
    let structural = Arc::new(SharedSession::try_new(EmsParams::structural()).unwrap());
    let labeled = Arc::new(
        SharedSession::try_new(EmsParams {
            alpha: 0.7,
            ..EmsParams::structural()
        })
        .unwrap(),
    );
    let exact_names = Arc::new(SharedSession::try_new(EmsParams::with_exact_labels(0.6)).unwrap());
    let mut checked = 0usize;
    for seed in 0..50u64 {
        for &(n, jitter) in &[(8usize, 0.0f64), (10, 0.3)] {
            let (l1, l2) = synth_pair(seed, n, jitter);
            for shared in [&structural, &labeled, &exact_names] {
                let params = shared.params().clone();
                let labels = planner_label_bound(&params);
                let outcome = shared.try_match(&l1, &l2).unwrap();
                let exact = outcome_score(&outcome);
                let g1 = shared.graph(&l1);
                let g2 = shared.graph(&l2);
                let s1 = GraphSketch::of(&g1);
                let s2 = GraphSketch::of(&g2);
                for combine in [BoundCombine::Average, BoundCombine::Max] {
                    let bound = s1.score_upper_bound(&s2, params.alpha, params.c, combine, labels);
                    assert!(
                        bound + FLOAT_SLACK >= exact,
                        "seed {seed} n {n} jitter {jitter} alpha {}: bound {bound} < exact {exact}",
                        params.alpha
                    );
                }
                checked += 1;
            }
        }
    }
    assert!(checked >= 200, "only {checked} pairs checked");
}

/// Renames every activity of `log` with a per-corpus prefix, giving
/// catalogs whose name universes are disjoint across families.
fn prefixed(log: &EventLog, prefix: &str) -> EventLog {
    let mut out = EventLog::new();
    for tr in log.traces() {
        out.push_trace(
            tr.events()
                .iter()
                .map(|&id| format!("{prefix}{}", log.name_of(id))),
        );
    }
    out
}

/// Under exact-name labels with disjoint per-family alphabets, the
/// overlap cap must let the planner prune cross-family references while
/// the ranking still equals brute force (recall 1.0).
#[test]
fn exact_name_label_cap_prunes_disjoint_families_at_recall_one() {
    let shared = Arc::new(SharedSession::try_new(EmsParams::with_exact_labels(0.5)).unwrap());
    let mut catalog = Catalog::new(Arc::clone(&shared));
    let mut queries = Vec::new();
    for seed in 0..12u64 {
        let (reference, jittered) = synth_pair(seed, 9, 0.25);
        let prefix = format!("fam{seed}:");
        catalog.add(format!("ref{seed}"), prefixed(&reference, &prefix));
        if seed % 3 == 0 {
            queries.push(prefixed(&jittered, &prefix));
        }
    }
    assert!(catalog.len() >= 10, "only {} references", catalog.len());
    let mut total_pruned = 0usize;
    for (qi, query) in queries.iter().enumerate() {
        for k in [1usize, 2] {
            let pruned = catalog.query_top_k(query, k).unwrap();
            let exact = catalog.query_top_k_opts(query, k, false).unwrap();
            assert_eq!(
                pruned.ranked, exact.ranked,
                "query {qi} k {k}: pruned ranking diverged"
            );
            assert_eq!(pruned.evaluated + pruned.pruned, catalog.len());
            total_pruned += pruned.pruned;
        }
    }
    assert!(total_pruned > 0, "label cap never pruned a candidate");
}

/// Pruned top-k equals brute-force top-k (recall 1.0) across seeded
/// catalogs and k values, while pruning actually skips work.
#[test]
fn top_k_recall_is_one_at_default_prune_threshold() {
    let shared = Arc::new(SharedSession::try_new(EmsParams::structural()).unwrap());
    let mut catalog = Catalog::new(Arc::clone(&shared));
    let mut queries = Vec::new();
    for seed in 0..20u64 {
        let (reference, jittered) = synth_pair(seed, 9, 0.25);
        catalog.add(format!("ref{seed}"), reference);
        if seed % 4 == 0 {
            queries.push(jittered);
        }
    }
    // Small synthetic processes can collide on content across seeds; the
    // catalog dedups those, so the count is at most 20.
    assert!(
        catalog.len() >= 15,
        "only {} distinct references",
        catalog.len()
    );
    let mut total_pruned = 0usize;
    for (qi, query) in queries.iter().enumerate() {
        for k in [1usize, 3, 5] {
            let pruned = catalog.query_top_k(query, k).unwrap();
            let exact = catalog.query_top_k_opts(query, k, false).unwrap();
            assert_eq!(
                pruned.ranked, exact.ranked,
                "query {qi} k {k}: pruned ranking diverged"
            );
            assert_eq!(pruned.evaluated + pruned.pruned, catalog.len());
            total_pruned += pruned.pruned;
        }
    }
    // The sweep as a whole must exercise the pruning path, or the recall
    // assertion proves nothing.
    assert!(total_pruned > 0, "no query pruned any candidate");
}
