#![forbid(unsafe_code)]
//! `ems-catalog` — catalog-scale matching: one query log against K
//! ingested references.
//!
//! The paper defines EMS pairwise, but its deployment scenario (find the
//! reference process behind an incoming heterogeneous log) is a
//! one-against-K retrieval problem. This crate layers that retrieval on
//! the existing pipeline:
//!
//! * **Admission** ([`Catalog::add`]): a reference log is fingerprinted,
//!   modeled through the shared session (which persists the graph
//!   snapshot), sketched ([`GraphSketch`]), and its log + sketch
//!   snapshots are written through the durable store codecs. The graph is
//!   pinned in memory under a **byte budget** costed by the logical-alloc
//!   accounting of `ems-prof` ([`AllocTally`]) — what the structures
//!   requested, not what the allocator did, so admission decisions are
//!   deterministic across hosts.
//! * **Eviction**: when pinning exceeds the budget, least-recently-used
//!   references are unpinned (recency is a logical access counter — no
//!   wall clock) and dropped from the shared session's caches. An evicted
//!   reference reloads from the store on next access, or rebuilds from
//!   its in-memory source log if the store read fails — eviction plus a
//!   failed reload degrades, never errors and never changes a ranking.
//! * **Query planning** ([`Catalog::query_top_k`]): every reference's
//!   sketch yields a sound upper bound on its EMS score against the
//!   query ([`GraphSketch::score_upper_bound`]). Candidates are evaluated
//!   in descending bound order; once k exact scores are in hand, a
//!   candidate whose bound is **strictly below** the current k-th best
//!   exact score is pruned — and since bounds are visited in descending
//!   order, so is everything after it. Strict comparison keeps ties in
//!   play, so pruning can never drop a true top-k reference (recall 1.0,
//!   pinned by this crate's property suite).
//!
//! Counters flow through the `ems-obs` [`Recorder`]: `catalog.hit` /
//! `catalog.miss` (pinned-graph lookups) and `catalog.eviction`.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

use ems_core::persist;
use ems_core::{Aggregation, CoreError, LabelMeasure, MatchOutcome, SharedSession};
use ems_depgraph::{BoundCombine, DependencyGraph, GraphSketch, LabelBound};
use ems_events::{fingerprint_log, EventLog};
use ems_obs::Recorder;
use ems_prof::AllocTally;
use ems_store::{CatalogStore, SnapshotKind};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// One reference in a [`QueryOutcome`] ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked {
    /// The reference's admission name.
    pub name: String,
    /// The reference log's content fingerprint.
    pub fingerprint: u64,
    /// The exact EMS retrieval score (see [`outcome_score`]).
    pub ems_score: f64,
}

/// The result of one top-k catalog query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The top-k references, best first (ties broken by admission order).
    pub ranked: Vec<Ranked>,
    /// References whose exact fixpoint was skipped by sketch pruning.
    pub pruned: usize,
    /// References evaluated exactly.
    pub evaluated: usize,
}

/// Catalog access counters (see the module docs for when each fires).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Reference-graph lookups served from the pinned set.
    pub hits: u64,
    /// Reference-graph lookups that had to reload (store or rebuild).
    pub misses: u64,
    /// References unpinned by the byte budget.
    pub evictions: u64,
}

/// The exact EMS retrieval score of a match outcome: the symmetric
/// best-correspondence average over the aggregated similarity matrix,
///
/// ```text
/// score = (avg_i max_j S(i,j) + avg_j max_i S(i,j)) / 2
/// ```
///
/// Monotone in every matrix entry — the property that lets the sketch
/// bound dominate it (see `ems_depgraph::sketch`). Zero when either side
/// is empty.
pub fn outcome_score(outcome: &MatchOutcome) -> f64 {
    let s = &outcome.similarity;
    let (rows, cols) = (s.rows(), s.cols());
    if rows == 0 || cols == 0 {
        return 0.0;
    }
    let mut row_best = vec![0.0f64; rows];
    let mut col_best = vec![0.0f64; cols];
    for (i, rb) in row_best.iter_mut().enumerate() {
        for (j, cb) in col_best.iter_mut().enumerate() {
            let v = s.get(i, j);
            if v > *rb {
                *rb = v;
            }
            if v > *cb {
                *cb = v;
            }
        }
    }
    let avg = |best: &[f64]| best.iter().sum::<f64>() / best.len() as f64;
    (avg(&row_best) + avg(&col_best)) / 2.0
}

/// Logical byte cost of pinning a graph: node frequency lane, both
/// adjacency directions, and the interned label bytes — charged through
/// the deterministic [`AllocTally`] accounting so the same graph costs
/// the same bytes on every host.
pub fn graph_pin_cost(g: &DependencyGraph) -> u64 {
    let mut tally = AllocTally::default();
    tally.charge_elems::<f64>(g.num_nodes());
    // Each real edge appears in one pre-list and one post-list as a
    // (neighbor id, frequency) lane entry.
    tally.charge_elems::<(u32, f64)>(g.num_edges().saturating_mul(2));
    for v in g.real_nodes() {
        tally.charge(g.name(v).len());
    }
    tally.bytes
}

struct RefEntry {
    name: String,
    log: EventLog,
    fingerprint: u64,
    sketch: GraphSketch,
}

struct PinnedGraph {
    graph: Arc<DependencyGraph>,
    cost: u64,
    last_access: u64,
}

#[derive(Default)]
struct PinState {
    /// Logical access counter — the deterministic recency source.
    clock: u64,
    /// Pinned reference graphs by admission index.
    pinned: BTreeMap<usize, PinnedGraph>,
    /// Total logical bytes currently pinned.
    bytes: u64,
}

fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    match lock.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// K ingested references with pinned graphs, sketches, and a pruning
/// query planner. Admission ([`add`](Catalog::add)) is `&mut self`;
/// queries are `&self` and safe to run from many threads at once — the
/// pin state sits behind its own mutex, and all heavy work runs on `Arc`
/// snapshots through the [`SharedSession`].
pub struct Catalog {
    shared: Arc<SharedSession>,
    store: Option<Arc<CatalogStore>>,
    recorder: Option<Arc<Recorder>>,
    byte_budget: u64,
    refs: Vec<RefEntry>,
    pins: Mutex<PinState>,
    stats: Mutex<CatalogStats>,
}

impl Catalog {
    /// An empty catalog matching through `shared` with an unlimited pin
    /// budget.
    pub fn new(shared: Arc<SharedSession>) -> Self {
        Catalog {
            shared,
            store: None,
            recorder: None,
            byte_budget: u64::MAX,
            refs: Vec::new(),
            pins: Mutex::new(PinState::default()),
            stats: Mutex::new(CatalogStats::default()),
        }
    }

    /// Attaches a durable store: admission persists log + sketch
    /// snapshots, and evicted references cold-reload from it. Attach the
    /// same store to the [`SharedSession`] so graph snapshots land there
    /// too.
    pub fn with_store(mut self, store: Arc<CatalogStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches the telemetry sink for the `catalog.*` counters.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Caps the logical bytes of pinned reference graphs (see
    /// [`graph_pin_cost`]). Admissions and queries beyond the budget
    /// evict least-recently-used references.
    pub fn with_byte_budget(mut self, bytes: u64) -> Self {
        self.byte_budget = bytes;
        self
    }

    /// The shared session this catalog matches through.
    pub fn shared(&self) -> &Arc<SharedSession> {
        &self.shared
    }

    /// Number of admitted references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The admission names, in admission order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.refs.iter().map(|r| r.name.as_str())
    }

    /// A reference's sketch, by admission index.
    pub fn sketch(&self, index: usize) -> Option<&GraphSketch> {
        self.refs.get(index).map(|r| &r.sketch)
    }

    /// A reference's log content fingerprint, by admission index.
    pub fn fingerprint(&self, index: usize) -> Option<u64> {
        self.refs.get(index).map(|r| r.fingerprint)
    }

    /// Access-counter snapshot.
    pub fn stats(&self) -> CatalogStats {
        *mutex_lock(&self.stats)
    }

    /// Logical bytes currently pinned.
    pub fn pinned_bytes(&self) -> u64 {
        mutex_lock(&self.pins).bytes
    }

    fn counter(&self, name: &str) {
        if let Some(rec) = self.recorder.as_deref() {
            rec.counter_add(name, ems_obs::labels(&[]), 1);
        }
    }

    /// Admits a reference: model (through the shared session, persisting
    /// the graph), sketch (store-first, computing and persisting on
    /// miss), pin under the byte budget. Returns the admission index. A
    /// log whose content fingerprint is already admitted is returned by
    /// its existing index — the catalog never holds duplicates.
    pub fn add(&mut self, name: impl Into<String>, log: EventLog) -> usize {
        let fingerprint = fingerprint_log(&log);
        if let Some(existing) = self.refs.iter().position(|r| r.fingerprint == fingerprint) {
            return existing;
        }
        let graph = self.shared.graph_keyed(fingerprint, &log);
        let sketch = self.load_or_build_sketch(&graph);
        if let Some(store) = &self.store {
            // Best-effort persistence: the log snapshot is the durable
            // rebuild source; failures degrade to memory-only.
            let _ = store.put(
                SnapshotKind::Log,
                persist::log_store_key(fingerprint),
                persist::LOG_PAYLOAD_VERSION,
                &persist::encode_log(&log),
            );
        }
        let index = self.refs.len();
        self.refs.push(RefEntry {
            name: name.into(),
            log,
            fingerprint,
            sketch,
        });
        self.pin(index, graph);
        index
    }

    /// The sketch of a graph: decoded from the store when a valid
    /// snapshot of this exact graph exists, computed (and best-effort
    /// persisted) otherwise.
    fn load_or_build_sketch(&self, graph: &DependencyGraph) -> GraphSketch {
        let key = persist::sketch_store_key(graph.fingerprint());
        if let Some(store) = &self.store {
            if let Ok(Some(bytes)) =
                store.get(SnapshotKind::Sketch, key, persist::SKETCH_PAYLOAD_VERSION)
            {
                match persist::decode_sketch(&bytes) {
                    Ok(sketch) if sketch.fingerprint() == graph.fingerprint() => return sketch,
                    Ok(sketch) => store.quarantine_entry(
                        SnapshotKind::Sketch,
                        key,
                        &format!(
                            "sketch fingerprint {:#x} does not match graph {:#x}",
                            sketch.fingerprint(),
                            graph.fingerprint()
                        ),
                    ),
                    Err(e) => store.quarantine_entry(SnapshotKind::Sketch, key, &e.to_string()),
                }
            }
        }
        let sketch = GraphSketch::of(graph);
        if let Some(store) = &self.store {
            let _ = store.put(
                SnapshotKind::Sketch,
                key,
                persist::SKETCH_PAYLOAD_VERSION,
                &persist::encode_sketch(&sketch),
            );
        }
        sketch
    }

    /// The pinned graph of a reference, reloading (store, then rebuild
    /// from the in-memory log) and re-pinning on a miss.
    fn reference_graph(&self, index: usize) -> Arc<DependencyGraph> {
        {
            let mut pins = mutex_lock(&self.pins);
            pins.clock += 1;
            let clock = pins.clock;
            if let Some(p) = pins.pinned.get_mut(&index) {
                p.last_access = clock;
                let graph = Arc::clone(&p.graph);
                drop(pins);
                mutex_lock(&self.stats).hits += 1;
                self.counter("catalog.hit");
                return graph;
            }
        }
        mutex_lock(&self.stats).misses += 1;
        self.counter("catalog.miss");
        let entry = &self.refs[index];
        // Reload chain: shared memory cache → store snapshot → rebuild
        // from the in-memory source log. Store failures degrade inside
        // `graph_keyed`, so an eviction followed by a failed store read
        // still produces the identical graph.
        let graph = self.shared.graph_keyed(entry.fingerprint, &entry.log);
        self.pin(index, Arc::clone(&graph));
        graph
    }

    /// Pins a graph, then enforces the byte budget by evicting
    /// least-recently-used references (admission index breaks recency
    /// ties deterministically).
    fn pin(&self, index: usize, graph: Arc<DependencyGraph>) {
        let cost = graph_pin_cost(&graph);
        let mut evicted_fps: Vec<u64> = Vec::new();
        {
            let mut pins = mutex_lock(&self.pins);
            pins.clock += 1;
            let clock = pins.clock;
            if let Some(previous) = pins.pinned.insert(
                index,
                PinnedGraph {
                    graph,
                    cost,
                    last_access: clock,
                },
            ) {
                pins.bytes -= previous.cost;
            }
            pins.bytes += cost;
            while pins.bytes > self.byte_budget {
                let victim = pins
                    .pinned
                    .iter()
                    .min_by_key(|(i, p)| (p.last_access, **i))
                    .map(|(&i, _)| i);
                let Some(victim) = victim else { break };
                if let Some(p) = pins.pinned.remove(&victim) {
                    pins.bytes -= p.cost;
                    evicted_fps.push(p.graph.fingerprint());
                }
            }
        }
        for fp in evicted_fps {
            // Unpin from the shared caches too, or eviction would be
            // cosmetic — the substrates referencing the graph go with it.
            self.shared.evict_graph(fp);
            mutex_lock(&self.stats).evictions += 1;
            self.counter("catalog.eviction");
        }
    }

    /// Top-k query with sketch pruning (the default planner).
    pub fn query_top_k(&self, log: &EventLog, k: usize) -> Result<QueryOutcome, CoreError> {
        self.query_top_k_opts(log, k, true)
    }

    /// Top-k query; `prune: false` evaluates every reference exactly (the
    /// brute-force oracle the property suite compares against).
    pub fn query_top_k_opts(
        &self,
        log: &EventLog,
        k: usize,
        prune: bool,
    ) -> Result<QueryOutcome, CoreError> {
        if k == 0 || self.refs.is_empty() {
            return Ok(QueryOutcome {
                ranked: Vec::new(),
                pruned: 0,
                evaluated: 0,
            });
        }
        let qfp = fingerprint_log(log);
        let qg = self.shared.graph_keyed(qfp, log);
        let qsketch = GraphSketch::of(&qg);
        let params = self.shared.params();
        // Average mirrors the default aggregation exactly; Max dominates
        // every other combine (none exceeds its larger argument).
        let combine = match params.aggregation {
            Aggregation::Average => BoundCombine::Average,
            _ => BoundCombine::Max,
        };
        // The name-set overlap cap on the label term is sound only when
        // exact scoring really runs the equality measure.
        let labels = match (params.alpha < 1.0, params.label_measure) {
            (true, LabelMeasure::ExactName) => LabelBound::ExactName,
            _ => LabelBound::Any,
        };
        let mut order: Vec<(usize, f64, f64)> = self
            .refs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    i,
                    qsketch.score_upper_bound(&r.sketch, params.alpha, params.c, combine, labels),
                    qsketch.label_jaccard_estimate(&r.sketch),
                )
            })
            .collect();
        // Descending bound; minhash overlap then admission order break
        // ties deterministically (ordering only — never a prune input).
        order.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then(b.2.total_cmp(&a.2))
                .then(a.0.cmp(&b.0))
        });

        // Exact scores in bound order, keeping them sorted descending so
        // theta (the k-th best so far) is a direct index.
        let mut exact: Vec<(f64, usize)> = Vec::new();
        let mut pruned = 0usize;
        for (pos, &(i, bound, _)) in order.iter().enumerate() {
            if prune && exact.len() >= k {
                let theta = exact[k - 1].0;
                // Strictly below the k-th best exact score: this bound —
                // and every later one, since bounds descend — cannot
                // reach the top k. Ties stay in play.
                if bound < theta {
                    pruned = order.len() - pos;
                    break;
                }
            }
            let graph = self.reference_graph(i);
            let entry = &self.refs[i];
            let outcome = self.shared.try_match_modeled(
                qfp,
                log,
                &qg,
                entry.fingerprint,
                &entry.log,
                &graph,
            )?;
            let score = outcome_score(&outcome);
            let at = exact
                .binary_search_by(|(s, j)| score.total_cmp(s).then(j.cmp(&i)))
                .unwrap_or_else(|e| e);
            exact.insert(at, (score, i));
        }
        let evaluated = exact.len();
        let ranked = exact
            .into_iter()
            .take(k)
            .map(|(score, i)| Ranked {
                name: self.refs[i].name.clone(),
                fingerprint: self.refs[i].fingerprint,
                ems_score: score,
            })
            .collect();
        Ok(QueryOutcome {
            ranked,
            pruned,
            evaluated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_core::EmsParams;

    fn shared() -> Arc<SharedSession> {
        Arc::new(SharedSession::try_new(EmsParams::structural()).unwrap())
    }

    fn log_of(traces: &[&[&str]]) -> EventLog {
        let mut log = EventLog::new();
        for t in traces {
            log.push_trace(t.iter().copied());
        }
        log
    }

    fn three_refs() -> Vec<EventLog> {
        vec![
            log_of(&[&["a", "b", "c", "d"], &["a", "b", "d"]]),
            log_of(&[&["p", "q", "r"], &["p", "r", "q"]]),
            log_of(&[&["x", "y"], &["y", "x"], &["x", "y"]]),
        ]
    }

    #[test]
    fn add_is_idempotent_per_fingerprint() {
        let mut catalog = Catalog::new(shared());
        let log = log_of(&[&["a", "b"]]);
        let first = catalog.add("one", log.clone());
        let again = catalog.add("two", log);
        assert_eq!(first, again);
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn pruned_query_matches_brute_force_ranking() {
        let mut catalog = Catalog::new(shared());
        for (i, log) in three_refs().into_iter().enumerate() {
            catalog.add(format!("ref{i}"), log);
        }
        let query = log_of(&[&["a", "b", "c", "d"], &["a", "b", "c", "d"]]);
        for k in 1..=3 {
            let pruned = catalog.query_top_k(&query, k).unwrap();
            let exact = catalog.query_top_k_opts(&query, k, false).unwrap();
            assert_eq!(pruned.ranked, exact.ranked, "k={k}");
            assert_eq!(exact.pruned, 0);
            assert_eq!(exact.evaluated, 3);
            assert_eq!(pruned.evaluated + pruned.pruned, 3);
        }
    }

    #[test]
    fn scores_match_shared_session_outcomes() {
        let mut catalog = Catalog::new(shared());
        let refs = three_refs();
        for (i, log) in refs.iter().enumerate() {
            catalog.add(format!("ref{i}"), log.clone());
        }
        let query = log_of(&[&["a", "b", "c"], &["a", "c", "b"]]);
        let result = catalog.query_top_k_opts(&query, 3, false).unwrap();
        for ranked in &result.ranked {
            let reference = refs
                .iter()
                .find(|l| fingerprint_log(l) == ranked.fingerprint)
                .unwrap();
            let outcome = catalog.shared().try_match(&query, reference).unwrap();
            assert_eq!(ranked.ems_score, outcome_score(&outcome));
        }
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let rec = Arc::new(Recorder::new());
        let mut catalog = Catalog::new(shared())
            .with_recorder(Arc::clone(&rec))
            .with_byte_budget(1) // every graph exceeds the budget
            ;
        for (i, log) in three_refs().into_iter().enumerate() {
            catalog.add(format!("ref{i}"), log);
        }
        // With a 1-byte budget nothing stays pinned.
        assert_eq!(catalog.pinned_bytes(), 0);
        assert!(catalog.stats().evictions >= 3);
        // Queries still work: every reference lookup is a miss + reload.
        let query = log_of(&[&["a", "b", "c"]]);
        let out = catalog.query_top_k_opts(&query, 3, false).unwrap();
        assert_eq!(out.ranked.len(), 3);
        let stats = catalog.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 3);
        let trace = ems_obs::jsonl::write(&rec.records());
        assert!(trace.contains("catalog.eviction"), "{trace}");
        assert!(trace.contains("catalog.miss"), "{trace}");
    }

    #[test]
    fn unlimited_budget_pins_everything_and_hits() {
        let mut catalog = Catalog::new(shared());
        for (i, log) in three_refs().into_iter().enumerate() {
            catalog.add(format!("ref{i}"), log);
        }
        assert!(catalog.pinned_bytes() > 0);
        let query = log_of(&[&["a", "b", "c"]]);
        catalog.query_top_k_opts(&query, 3, false).unwrap();
        let stats = catalog.stats();
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn eviction_reload_is_ranking_identical() {
        let refs = three_refs();
        let query = log_of(&[&["a", "b", "c", "d"]]);
        let baseline = {
            let mut catalog = Catalog::new(shared());
            for (i, log) in refs.iter().enumerate() {
                catalog.add(format!("ref{i}"), log.clone());
            }
            catalog.query_top_k_opts(&query, 3, false).unwrap()
        };
        let mut catalog = Catalog::new(shared()).with_byte_budget(1);
        for (i, log) in refs.iter().enumerate() {
            catalog.add(format!("ref{i}"), log.clone());
        }
        let thrashed = catalog.query_top_k_opts(&query, 3, false).unwrap();
        assert_eq!(thrashed.ranked, baseline.ranked);
    }

    #[test]
    fn store_round_trips_sketches_and_logs() {
        let root = std::env::temp_dir().join(format!("ems-catalog-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(CatalogStore::open(&root).unwrap());
        let refs = three_refs();
        {
            let mut catalog = Catalog::new(shared()).with_store(Arc::clone(&store));
            for (i, log) in refs.iter().enumerate() {
                catalog.add(format!("ref{i}"), log.clone());
            }
        }
        // Log and sketch snapshots landed in the store.
        for log in &refs {
            let fp = fingerprint_log(log);
            let bytes = store
                .get(
                    SnapshotKind::Log,
                    persist::log_store_key(fp),
                    persist::LOG_PAYLOAD_VERSION,
                )
                .unwrap()
                .unwrap();
            let decoded = persist::decode_log(&bytes).unwrap();
            assert_eq!(fingerprint_log(&decoded), fp);
        }
        // A second catalog admits from the same store: sketches decode
        // instead of recomputing (pinned by identical sketch content).
        let mut reopened = Catalog::new(shared()).with_store(Arc::clone(&store));
        for (i, log) in refs.iter().enumerate() {
            let idx = reopened.add(format!("ref{i}"), log.clone());
            let graph = reopened.shared().graph(&refs[idx]);
            assert_eq!(reopened.sketch(idx).unwrap(), &GraphSketch::of(&graph));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_catalog_and_zero_k_are_defined() {
        let catalog = Catalog::new(shared());
        let query = log_of(&[&["a"]]);
        let out = catalog.query_top_k(&query, 5).unwrap();
        assert!(out.ranked.is_empty());
        let mut catalog = Catalog::new(shared());
        catalog.add("r", log_of(&[&["a", "b"]]));
        let out = catalog.query_top_k(&query, 0).unwrap();
        assert!(out.ranked.is_empty());
        assert_eq!(out.pruned, 0);
    }
}
