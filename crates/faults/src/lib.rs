#![forbid(unsafe_code)]
//! Deterministic, seeded fault injection for the matching pipeline.
//!
//! Storage fails in ugly ways — torn writes, short reads, `ENOSPC`,
//! transient I/O errors — and a serving system must recover from each of
//! them without panicking and without changing its answers. This crate
//! provides the reproducible half of that contract:
//!
//! * a [`FaultPlan`] is a finite schedule of faults, derived entirely
//!   from a `u64` seed ([`FaultPlan::generate`]) — the same seed always
//!   produces the same faults at the same operation counts, so every
//!   chaos-test failure is replayable from its seed alone;
//! * a [`FaultInjector`] arms a plan: instrumented code asks
//!   [`FaultInjector::next_op`] at each fault site (store write, fsync,
//!   rename, read; ingest and solve stage boundaries) and receives the
//!   scheduled [`FaultKind`], if any, for that site's current operation
//!   index;
//! * [`run_with_retry`] retries transient faults under a [`RetryPolicy`]
//!   whose exponential backoff is *virtual*: delays are seeded,
//!   deterministic numbers recorded in telemetry, never slept — chaos
//!   sweeps stay fast and bit-reproducible, and no wall clock is read.
//!
//! The injector is deliberately oblivious to what the faults *mean*; the
//! store and session layers decide whether a given kind is survivable
//! (retry), degradable (rebuild from source), or terminal (typed error).

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

// ems-lint: allow(wall-clock-randomness, fault plans are pure functions of their seed; this crate exists to make failure schedules reproducible)
use ems_rng::StdRng;
use std::sync::Mutex;

/// An instrumented point in the pipeline where a fault can surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// Stage boundary: log ingestion / model building.
    Ingest,
    /// Writing snapshot bytes to a temp file.
    StoreWrite,
    /// Flushing a snapshot (file or directory fsync).
    StoreFsync,
    /// The atomic rename that commits a snapshot.
    StoreRename,
    /// Reading a snapshot back.
    StoreRead,
    /// Stage boundary: the fixpoint solve.
    Solve,
}

impl FaultSite {
    /// Every site, in deterministic order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::Ingest,
        FaultSite::StoreWrite,
        FaultSite::StoreFsync,
        FaultSite::StoreRename,
        FaultSite::StoreRead,
        FaultSite::Solve,
    ];

    /// Dense index for per-site operation counters.
    pub fn index(self) -> usize {
        match self {
            FaultSite::Ingest => 0,
            FaultSite::StoreWrite => 1,
            FaultSite::StoreFsync => 2,
            FaultSite::StoreRename => 3,
            FaultSite::StoreRead => 4,
            FaultSite::Solve => 5,
        }
    }

    /// Stable lowercase name (telemetry labels, error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Ingest => "ingest",
            FaultSite::StoreWrite => "store-write",
            FaultSite::StoreFsync => "store-fsync",
            FaultSite::StoreRename => "store-rename",
            FaultSite::StoreRead => "store-read",
            FaultSite::Solve => "solve",
        }
    }
}

/// What kind of failure is injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write stops partway: only `keep_permille`/1000 of the bytes
    /// reach the file. Models a crash or partial flush mid-write.
    TornWrite {
        /// Fraction of the payload that survives, in permille (0..=999).
        keep_permille: u16,
    },
    /// A read returns fewer bytes than the file holds.
    ShortRead {
        /// Fraction of the file that is returned, in permille (0..=999).
        keep_permille: u16,
    },
    /// `ENOSPC`-style hard failure: the device rejects the operation and
    /// retrying will not help.
    NoSpace,
    /// A transient I/O error that a retry is expected to clear.
    TransientIo,
    /// Mid-solve resource exhaustion: the run's budget runs out and the
    /// engine must degrade to closed-form estimation.
    BudgetExhaust,
}

impl FaultKind {
    /// Whether a retry of the same operation is expected to succeed.
    pub fn is_transient(self) -> bool {
        matches!(self, FaultKind::TransientIo)
    }

    /// Stable lowercase name (telemetry labels, error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TornWrite { .. } => "torn-write",
            FaultKind::ShortRead { .. } => "short-read",
            FaultKind::NoSpace => "no-space",
            FaultKind::TransientIo => "transient-io",
            FaultKind::BudgetExhaust => "budget-exhaust",
        }
    }
}

/// One scheduled fault: at `site`, on that site's `op`-th operation
/// (0-based), inject `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// Where the fault fires.
    pub site: FaultSite,
    /// Zero-based operation index at that site.
    pub op: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A reproducible schedule of faults, fully determined by its seed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The seed this plan was generated from (0 for [`FaultPlan::none`]).
    pub seed: u64,
    /// The scheduled faults, sorted by `(site, op)`.
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// The empty plan: no faults ever fire.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Derives a plan of one to three faults from `seed`. The mapping is
    /// pure: equal seeds yield equal plans on every platform, so a chaos
    /// failure is replayed by its seed alone. Kinds are drawn only from
    /// those meaningful at the chosen site (e.g. [`FaultKind::ShortRead`]
    /// only at [`FaultSite::StoreRead`], [`FaultKind::BudgetExhaust`]
    /// only at [`FaultSite::Solve`]), and early operation indices are
    /// preferred so short pipelines still reach the faults.
    pub fn generate(seed: u64) -> Self {
        // ems-lint: allow(wall-clock-randomness, seeded plan generation: the schedule is a pure function of the seed)
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1..=3usize);
        let mut faults: Vec<PlannedFault> = Vec::new();
        for _ in 0..count {
            // Store sites are listed twice: persistence faults are the
            // interesting bulk of the matrix, stage faults the seasoning.
            const WEIGHTED: [FaultSite; 10] = [
                FaultSite::Ingest,
                FaultSite::StoreWrite,
                FaultSite::StoreWrite,
                FaultSite::StoreFsync,
                FaultSite::StoreFsync,
                FaultSite::StoreRename,
                FaultSite::StoreRename,
                FaultSite::StoreRead,
                FaultSite::StoreRead,
                FaultSite::Solve,
            ];
            let site = WEIGHTED[rng.gen_range(0..WEIGHTED.len())];
            let op = rng.gen_range(0..4u64);
            let kind = match site {
                FaultSite::Ingest => match rng.gen_range(0..2u8) {
                    0 => FaultKind::TransientIo,
                    _ => FaultKind::NoSpace,
                },
                FaultSite::StoreWrite => match rng.gen_range(0..3u8) {
                    0 => FaultKind::TornWrite {
                        keep_permille: rng.gen_range(0..=999u16),
                    },
                    1 => FaultKind::NoSpace,
                    _ => FaultKind::TransientIo,
                },
                FaultSite::StoreFsync | FaultSite::StoreRename => match rng.gen_range(0..2u8) {
                    0 => FaultKind::NoSpace,
                    _ => FaultKind::TransientIo,
                },
                FaultSite::StoreRead => match rng.gen_range(0..2u8) {
                    0 => FaultKind::ShortRead {
                        keep_permille: rng.gen_range(0..=999u16),
                    },
                    _ => FaultKind::TransientIo,
                },
                FaultSite::Solve => FaultKind::BudgetExhaust,
            };
            if !faults.iter().any(|f| f.site == site && f.op == op) {
                faults.push(PlannedFault { site, op, kind });
            }
        }
        faults.sort_by_key(|f| (f.site, f.op));
        FaultPlan { seed, faults }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// An armed [`FaultPlan`]: counts operations per site and reports which
/// scheduled faults fire. Thread-safe via interior mutability so one
/// injector can be shared (`Arc`) between a store and a session.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    ops: Mutex<[u64; FaultSite::ALL.len()]>,
    fired: Mutex<Vec<PlannedFault>>,
}

/// Recovers the guarded value even if a panicking thread poisoned the
/// lock — fault bookkeeping must never compound a failure.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl FaultInjector {
    /// Arms a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            ops: Mutex::new([0; FaultSite::ALL.len()]),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// An injector that never fires — the production default.
    pub fn inert() -> Self {
        FaultInjector::new(FaultPlan::none())
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Registers one operation at `site` and returns the fault scheduled
    /// for that operation index, if any. Every instrumented operation —
    /// including retries — must call this exactly once, so a transient
    /// fault is naturally cleared by the retry advancing the counter.
    pub fn next_op(&self, site: FaultSite) -> Option<FaultKind> {
        let op = {
            let mut ops = lock(&self.ops);
            let op = ops[site.index()];
            ops[site.index()] += 1;
            op
        };
        let hit = self
            .plan
            .faults
            .iter()
            .find(|f| f.site == site && f.op == op)
            .map(|f| f.kind);
        if let Some(kind) = hit {
            lock(&self.fired).push(PlannedFault { site, op, kind });
        }
        hit
    }

    /// Operations counted at `site` so far.
    pub fn ops_at(&self, site: FaultSite) -> u64 {
        lock(&self.ops)[site.index()]
    }

    /// The faults that have actually fired, in firing order.
    pub fn fired(&self) -> Vec<PlannedFault> {
        lock(&self.fired).clone()
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::inert()
    }
}

/// Retry policy for transient faults. Backoff is *virtual*: delays are
/// deterministic seeded numbers for telemetry and tests, never slept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (minimum 1).
    pub max_attempts: u32,
    /// Base virtual backoff in microseconds; attempt `k` backs off
    /// `base << k` plus seeded jitter.
    pub base_us: u64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_us: 100,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Virtual backoff before retrying after failed attempt `attempt`
    /// (0-based): exponential in the attempt with seeded jitter, a pure
    /// function of `(seed, attempt)`.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        // ems-lint: allow(wall-clock-randomness, jitter is a pure function of (policy seed, attempt) — recorded, never slept)
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let base = self.base_us.saturating_mul(1u64 << attempt.min(16));
        base.saturating_add(rng.gen_range(0..=self.base_us.max(1)))
    }
}

/// The result of [`run_with_retry`]: the final outcome plus how much
/// retrying it took.
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    /// The last attempt's result.
    pub result: Result<T, E>,
    /// Attempts performed (1 = first try succeeded or failed terminally).
    pub attempts: u32,
    /// Total virtual backoff accumulated across retries, in microseconds.
    pub backoff_us: u64,
}

/// Runs `op` up to `policy.max_attempts` times, retrying only failures
/// `is_transient` accepts and accumulating virtual backoff between
/// attempts. `op` receives the 0-based attempt index.
pub fn run_with_retry<T, E>(
    policy: &RetryPolicy,
    is_transient: impl Fn(&E) -> bool,
    mut op: impl FnMut(u32) -> Result<T, E>,
) -> RetryOutcome<T, E> {
    let max = policy.max_attempts.max(1);
    let mut backoff_us = 0u64;
    let mut attempt = 0u32;
    loop {
        match op(attempt) {
            Ok(v) => {
                return RetryOutcome {
                    result: Ok(v),
                    attempts: attempt + 1,
                    backoff_us,
                }
            }
            Err(e) if attempt + 1 < max && is_transient(&e) => {
                backoff_us = backoff_us.saturating_add(policy.backoff_us(attempt));
                attempt += 1;
            }
            Err(e) => {
                return RetryOutcome {
                    result: Err(e),
                    attempts: attempt + 1,
                    backoff_us,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in 0..200u64 {
            let a = FaultPlan::generate(seed);
            let b = FaultPlan::generate(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(!a.is_empty(), "seed {seed} produced an empty plan");
            assert!(a.faults.len() <= 3);
        }
        assert_ne!(FaultPlan::generate(1), FaultPlan::generate(2));
    }

    #[test]
    fn plans_are_sorted_and_deduplicated() {
        for seed in 0..500u64 {
            let plan = FaultPlan::generate(seed);
            for w in plan.faults.windows(2) {
                assert!(
                    (w[0].site, w[0].op) < (w[1].site, w[1].op),
                    "seed {seed}: unsorted or duplicate (site, op)"
                );
            }
        }
    }

    #[test]
    fn kinds_match_their_sites() {
        for seed in 0..500u64 {
            for f in FaultPlan::generate(seed).faults {
                let ok = match f.site {
                    FaultSite::Ingest => {
                        matches!(f.kind, FaultKind::TransientIo | FaultKind::NoSpace)
                    }
                    FaultSite::StoreWrite => matches!(
                        f.kind,
                        FaultKind::TornWrite { .. } | FaultKind::NoSpace | FaultKind::TransientIo
                    ),
                    FaultSite::StoreFsync | FaultSite::StoreRename => {
                        matches!(f.kind, FaultKind::NoSpace | FaultKind::TransientIo)
                    }
                    FaultSite::StoreRead => {
                        matches!(f.kind, FaultKind::ShortRead { .. } | FaultKind::TransientIo)
                    }
                    FaultSite::Solve => matches!(f.kind, FaultKind::BudgetExhaust),
                };
                assert!(ok, "seed {seed}: {f:?} at wrong site");
            }
        }
    }

    #[test]
    fn injector_fires_at_scheduled_op_only() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![PlannedFault {
                site: FaultSite::StoreWrite,
                op: 2,
                kind: FaultKind::NoSpace,
            }],
        };
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.next_op(FaultSite::StoreWrite), None);
        assert_eq!(inj.next_op(FaultSite::StoreRead), None);
        assert_eq!(inj.next_op(FaultSite::StoreWrite), None);
        assert_eq!(inj.next_op(FaultSite::StoreWrite), Some(FaultKind::NoSpace));
        assert_eq!(inj.next_op(FaultSite::StoreWrite), None);
        assert_eq!(inj.ops_at(FaultSite::StoreWrite), 4);
        assert_eq!(inj.fired().len(), 1);
    }

    #[test]
    fn transient_fault_clears_on_retry() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![PlannedFault {
                site: FaultSite::StoreRead,
                op: 0,
                kind: FaultKind::TransientIo,
            }],
        };
        let inj = FaultInjector::new(plan);
        let policy = RetryPolicy::default();
        let out = run_with_retry(
            &policy,
            |k: &FaultKind| k.is_transient(),
            |_| match inj.next_op(FaultSite::StoreRead) {
                Some(k) => Err(k),
                None => Ok(42),
            },
        );
        assert_eq!(out.result, Ok(42));
        assert_eq!(out.attempts, 2);
        assert!(out.backoff_us > 0);
    }

    #[test]
    fn terminal_fault_is_not_retried() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![PlannedFault {
                site: FaultSite::StoreWrite,
                op: 0,
                kind: FaultKind::NoSpace,
            }],
        };
        let inj = FaultInjector::new(plan);
        let out = run_with_retry(
            &RetryPolicy::default(),
            |k: &FaultKind| k.is_transient(),
            |_| match inj.next_op(FaultSite::StoreWrite) {
                Some(k) => Err(k),
                None => Ok(()),
            },
        );
        assert_eq!(out.result, Err(FaultKind::NoSpace));
        assert_eq!(out.attempts, 1);
        assert_eq!(out.backoff_us, 0);
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_us(0), p.backoff_us(0));
        assert_eq!(p.backoff_us(3), p.backoff_us(3));
        assert!(p.backoff_us(4) > p.backoff_us(0));
        let other = RetryPolicy {
            seed: 999,
            ..RetryPolicy::default()
        };
        assert_ne!(p.backoff_us(0), other.backoff_us(0));
    }

    #[test]
    fn retry_exhaustion_returns_last_error() {
        let out = run_with_retry(
            &RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            |_: &&str| true,
            |attempt| -> Result<(), &str> {
                assert!(attempt < 3);
                Err("still down")
            },
        );
        assert_eq!(out.result, Err("still down"));
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn inert_injector_never_fires() {
        let inj = FaultInjector::inert();
        for site in FaultSite::ALL {
            for _ in 0..10 {
                assert_eq!(inj.next_op(site), None);
            }
        }
        assert!(inj.fired().is_empty());
    }
}
