//! Aggregation of per-pair scores across a testbed: summary statistics and
//! bootstrap confidence intervals.
//!
//! The paper reports single averages per testbed; for a reproduction it is
//! worth knowing how wide those averages are. The bootstrap here uses an
//! internal deterministic xorshift generator so reports are reproducible
//! without pulling a dependency into the evaluation crate.

/// Summary statistics of a sample of scores.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Aggregate {
    /// Computes summary statistics of `values`.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Aggregate {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Aggregate {
            n,
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

impl std::fmt::Display for Aggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (n={}, range {:.3}..{:.3})",
            self.mean, self.std_dev, self.n, self.min, self.max
        )
    }
}

/// Percentile-bootstrap confidence interval for the mean of `values`.
///
/// Resamples `values` with replacement `resamples` times and returns the
/// `(1-confidence)/2` and `1-(1-confidence)/2` percentiles of the resampled
/// means. Deterministic given `seed`. Returns `(mean, mean)` for samples of
/// size < 2.
pub fn bootstrap_mean_ci(
    values: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> (f64, f64) {
    assert!((0.0..1.0).contains(&confidence), "confidence in (0,1)");
    let n = values.len();
    if n < 2 {
        let m = Aggregate::of(values).mean;
        return (m, m);
    }
    let mut rng = XorShift64::new(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += values[rng.next_below(n)];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64) * alpha) as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)) as usize).min(resamples - 1);
    (means[lo_idx], means[hi_idx])
}

/// A minimal deterministic xorshift64* generator for the bootstrap.
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.max(1), // xorshift must not start at 0
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_of_known_sample() {
        let a = Aggregate::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.n, 4);
        assert!((a.mean - 2.5).abs() < 1e-12);
        // Sample variance: ((1.5^2)*2 + (0.5^2)*2)/3 = 5/3.
        assert!((a.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
    }

    #[test]
    fn aggregate_edge_cases() {
        let empty = Aggregate::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Aggregate::of(&[0.7]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.min, 0.7);
    }

    #[test]
    fn display_is_compact() {
        let text = Aggregate::of(&[0.5, 0.7]).to_string();
        assert!(text.contains("0.600 ±"));
        assert!(text.contains("n=2"));
    }

    #[test]
    fn ci_contains_the_mean_and_is_deterministic() {
        let values = [0.4, 0.5, 0.55, 0.6, 0.62, 0.7, 0.75, 0.8];
        let mean = Aggregate::of(&values).mean;
        let (lo, hi) = bootstrap_mean_ci(&values, 2000, 0.95, 42);
        assert!(lo <= mean && mean <= hi, "{lo} <= {mean} <= {hi}");
        assert!(lo < hi);
        assert_eq!(bootstrap_mean_ci(&values, 2000, 0.95, 42), (lo, hi));
        // Width shrinks with confidence.
        let (lo50, hi50) = bootstrap_mean_ci(&values, 2000, 0.5, 42);
        assert!(hi50 - lo50 < hi - lo);
    }

    #[test]
    fn ci_degenerates_gracefully() {
        assert_eq!(bootstrap_mean_ci(&[], 100, 0.95, 1), (0.0, 0.0));
        assert_eq!(bootstrap_mean_ci(&[0.3], 100, 0.95, 1), (0.3, 0.3));
        // Constant sample: zero-width interval.
        let (lo, hi) = bootstrap_mean_ci(&[0.5; 10], 100, 0.95, 1);
        assert_eq!((lo, hi), (0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn ci_validates_confidence() {
        let _ = bootstrap_mean_ci(&[0.1, 0.2], 10, 1.5, 1);
    }
}
