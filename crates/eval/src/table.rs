//! Text and CSV result tables for the experiment binaries.

use std::fmt::Write as _;

/// A small column-aligned results table that also serializes to CSV —
/// each experiment binary prints one per figure panel.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: impl Into<String>, headers: Vec<S>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|&w| "-".repeat(w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders a GitHub-flavored markdown table (title as a heading).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| s.replace('|', "\\|");
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// Renders CSV (headers + rows; fields with commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `path`.
    pub fn write_csv(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Figure 3 (a): f-measure", vec!["method", "DS-F", "DS-B"]);
        t.row(vec!["EMS", "0.82", "0.80"]);
        t.row(vec!["BHV", "0.74", "0.55"]);
        t
    }

    #[test]
    fn text_is_aligned_and_titled() {
        let text = sample().to_text();
        assert!(text.starts_with("## Figure 3"));
        assert!(text.contains("method"));
        assert!(text.contains("EMS"));
        // Column alignment: both data rows have the same width.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn markdown_renders_pipes_safely() {
        let mut t = Table::new("md", vec!["a"]);
        t.row(vec!["x|y"]);
        let md = t.to_markdown();
        assert!(md.starts_with("### md"));
        assert!(md.contains("| a |"));
        assert!(md.contains("x\\|y") || md.contains("x\\|y"));
        assert!(md.contains("|---|"));
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new("t", vec!["a"]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
