#![forbid(unsafe_code)]
//! Evaluation harness: accuracy metrics, timing, result tables.
//!
//! The paper scores matchers with precision, recall and F-measure against
//! expert-identified ground truth (Section 5.1):
//!
//! ```text
//! precision = |truth ∩ found| / |found|
//! recall    = |truth ∩ found| / |truth|
//! f-measure = 2 · precision · recall / (precision + recall)
//! ```
//!
//! [`score`] computes those over name-pair sets (m:n correspondences are
//! just multiple pairs). [`expand_merged`] unfolds correspondences involving
//! merged composite events (`"c+d" ↔ "4"` becomes `c↔4` and `d↔4`) so that
//! composite matchers are scored on the original event alphabets.
//! [`Stopwatch`] and [`Table`] support the experiment binaries.

mod aggregate;
mod metrics;
mod table;
mod timer;

pub use aggregate::{bootstrap_mean_ci, Aggregate};
pub use metrics::{expand_merged, score, Accuracy};
pub use table::Table;
pub use timer::Stopwatch;
