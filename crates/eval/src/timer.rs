//! Wall-clock timing for the experiment binaries.

use std::time::{Duration, Instant};

/// A simple accumulating stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    started: Option<Instant>,
    accumulated: Duration,
}

impl Stopwatch {
    /// A stopped stopwatch at zero.
    pub fn new() -> Self {
        Stopwatch {
            started: None,
            accumulated: Duration::ZERO,
        }
    }

    /// Starts (or restarts) measuring.
    pub fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    /// Stops measuring, adding to the accumulated total.
    pub fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.accumulated += s.elapsed();
        }
    }

    /// Total measured time (includes the running span if started).
    pub fn elapsed(&self) -> Duration {
        self.accumulated + self.started.map(|s| s.elapsed()).unwrap_or(Duration::ZERO)
    }

    /// Times a closure and returns `(result, duration)`.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let start = Instant::now();
        let result = f();
        (result, start.elapsed())
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_spans() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(2));
        sw.stop();
        let first = sw.elapsed();
        assert!(first >= Duration::from_millis(2));
        sw.start();
        std::thread::sleep(Duration::from_millis(2));
        sw.stop();
        assert!(sw.elapsed() > first);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut sw = Stopwatch::new();
        sw.stop();
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn time_closure() {
        let (v, d) = Stopwatch::time(|| {
            std::thread::sleep(Duration::from_millis(1));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(1));
    }
}
