//! Precision / recall / F-measure over correspondence sets.

use std::collections::BTreeSet;

/// Matching accuracy against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// `|truth ∩ found| / |found|` (1.0 when nothing was found — an empty
    /// answer makes no false claims).
    pub precision: f64,
    /// `|truth ∩ found| / |truth|` (1.0 when there is nothing to find).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub f_measure: f64,
    /// Number of found pairs that are true.
    pub true_positives: usize,
    /// Number of distinct found pairs.
    pub num_found: usize,
    /// Number of distinct truth pairs.
    pub num_truth: usize,
}

/// Scores `found` correspondences against `truth`. Both are sets of
/// `(left name, right name)` pairs; duplicates are ignored.
pub fn score<'a, T, F>(truth: T, found: F) -> Accuracy
where
    T: IntoIterator<Item = (&'a str, &'a str)>,
    F: IntoIterator<Item = (&'a str, &'a str)>,
{
    let truth: BTreeSet<(&str, &str)> = truth.into_iter().collect();
    let found: BTreeSet<(&str, &str)> = found.into_iter().collect();
    let tp = found.intersection(&truth).count();
    let precision = if found.is_empty() {
        1.0
    } else {
        tp as f64 / found.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        tp as f64 / truth.len() as f64
    };
    let f_measure = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Accuracy {
        precision,
        recall,
        f_measure,
        true_positives: tp,
        num_found: found.len(),
        num_truth: truth.len(),
    }
}

/// Expands correspondences that involve merged composite events: any side
/// whose name is listed in `merged` (a map from merged name to its original
/// parts) is unfolded into one pair per part.
///
/// `("c+d", "4")` with `merged["c+d"] = ["c", "d"]` becomes
/// `("c", "4"), ("d", "4")` — the m:n convention the ground truth uses.
pub fn expand_merged(
    pairs: &[(String, String)],
    merged_left: &std::collections::HashMap<String, Vec<String>>,
    merged_right: &std::collections::HashMap<String, Vec<String>>,
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (l, r) in pairs {
        let lefts: Vec<&str> = match merged_left.get(l) {
            Some(parts) => parts.iter().map(String::as_str).collect(),
            None => vec![l.as_str()],
        };
        let rights: Vec<&str> = match merged_right.get(r) {
            Some(parts) => parts.iter().map(String::as_str).collect(),
            None => vec![r.as_str()],
        };
        for &le in &lefts {
            for &ri in &rights {
                out.push((le.to_owned(), ri.to_owned()));
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn perfect_match() {
        let truth = [("a", "1"), ("b", "2")];
        let a = score(truth, truth);
        assert_eq!(a.precision, 1.0);
        assert_eq!(a.recall, 1.0);
        assert_eq!(a.f_measure, 1.0);
        assert_eq!(a.true_positives, 2);
    }

    #[test]
    fn partial_match() {
        let truth = [("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")];
        let found = [("a", "1"), ("b", "9")];
        let a = score(truth, found);
        assert_eq!(a.precision, 0.5);
        assert_eq!(a.recall, 0.25);
        let f = 2.0 * 0.5 * 0.25 / 0.75;
        assert!((a.f_measure - f).abs() < 1e-12);
    }

    #[test]
    fn empty_found_and_empty_truth() {
        let a = score([("a", "1")], []);
        assert_eq!(a.precision, 1.0);
        assert_eq!(a.recall, 0.0);
        assert_eq!(a.f_measure, 0.0);
        let a = score([], [("a", "1")]);
        assert_eq!(a.recall, 1.0);
        assert_eq!(a.precision, 0.0);
        let a = score([], []);
        assert_eq!(a.f_measure, 1.0);
    }

    #[test]
    fn duplicates_count_once() {
        let a = score([("a", "1")], [("a", "1"), ("a", "1")]);
        assert_eq!(a.num_found, 1);
        assert_eq!(a.precision, 1.0);
    }

    #[test]
    fn expand_merged_unfolds_composites() {
        let mut left = HashMap::new();
        left.insert("c+d".to_owned(), vec!["c".to_owned(), "d".to_owned()]);
        let right = HashMap::new();
        let pairs = vec![
            ("c+d".to_owned(), "4".to_owned()),
            ("a".to_owned(), "1".to_owned()),
        ];
        let expanded = expand_merged(&pairs, &left, &right);
        assert_eq!(
            expanded,
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("c".to_owned(), "4".to_owned()),
                ("d".to_owned(), "4".to_owned()),
            ]
        );
    }

    #[test]
    fn expand_merged_both_sides() {
        let mut left = HashMap::new();
        left.insert("x+y".to_owned(), vec!["x".to_owned(), "y".to_owned()]);
        let mut right = HashMap::new();
        right.insert("u+v".to_owned(), vec!["u".to_owned(), "v".to_owned()]);
        let pairs = vec![("x+y".to_owned(), "u+v".to_owned())];
        let expanded = expand_merged(&pairs, &left, &right);
        assert_eq!(expanded.len(), 4);
    }
}
