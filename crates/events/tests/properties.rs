//! Property tests of the event model's invariants.

use ems_events::{cut_prefix, cut_suffix, merge_composite, EventId, EventLog, Trace};
use proptest::prelude::*;

/// Strategy: a log of 1..20 traces over a small alphabet.
fn arb_log() -> impl Strategy<Value = EventLog> {
    prop::collection::vec(
        prop::collection::vec(0usize..8, 0..12),
        1..20,
    )
    .prop_map(|traces| {
        let mut log = EventLog::new();
        for t in traces {
            log.push_trace(t.iter().map(|i| format!("ev{i}")));
        }
        log
    })
}

proptest! {
    #[test]
    fn frequencies_are_normalized(log in arb_log()) {
        for i in 0..log.alphabet_size() {
            let id = EventId::from_index(i);
            let f = log.event_frequency(id);
            prop_assert!((0.0..=1.0).contains(&f));
            for j in 0..log.alphabet_size() {
                let pf = log.pair_frequency(id, EventId::from_index(j));
                prop_assert!((0.0..=1.0).contains(&pf));
            }
        }
    }

    /// A trace with the pair `ab` contains both `a` and `b`:
    /// f(a,b) ≤ min(f(a), f(b)).
    #[test]
    fn pair_frequency_bounded_by_node_frequencies(log in arb_log()) {
        for i in 0..log.alphabet_size() {
            for j in 0..log.alphabet_size() {
                let a = EventId::from_index(i);
                let b = EventId::from_index(j);
                let pf = log.pair_frequency(a, b);
                prop_assert!(pf <= log.event_frequency(a) + 1e-12);
                prop_assert!(pf <= log.event_frequency(b) + 1e-12);
            }
        }
    }

    #[test]
    fn cut_prefix_removes_exactly_m_or_everything(log in arb_log(), m in 0usize..6) {
        let (cut, _) = cut_prefix(&log, m);
        prop_assert_eq!(cut.num_traces(), log.num_traces());
        for (orig, cut_t) in log.traces().iter().zip(cut.traces()) {
            prop_assert_eq!(cut_t.len(), orig.len().saturating_sub(m));
        }
    }

    #[test]
    fn cut_suffix_preserves_prefixes(log in arb_log(), m in 0usize..6) {
        let (cut, _) = cut_suffix(&log, m);
        for (orig, cut_t) in log.traces().iter().zip(cut.traces()) {
            for (k, &e) in cut_t.events().iter().enumerate() {
                prop_assert_eq!(cut.name_of(e), log.name_of(orig.events()[k]));
            }
        }
    }

    /// Merging then counting: every replaced occurrence shrinks the trace by
    /// |parts| - 1; total event count is conserved accordingly.
    #[test]
    fn merge_composite_conserves_unmatched_events(log in arb_log()) {
        prop_assume!(log.alphabet_size() >= 2);
        let a = EventId::from_index(0);
        let b = EventId::from_index(1);
        let (merged, merged_id) = merge_composite(&log, &[a, b], "a+b");
        prop_assert_eq!(merged.num_traces(), log.num_traces());
        match merged_id {
            None => {
                // Nothing merged: same shape.
                for (o, m) in log.traces().iter().zip(merged.traces()) {
                    prop_assert_eq!(o.len(), m.len());
                }
            }
            Some(id) => {
                for (o, m) in log.traces().iter().zip(merged.traces()) {
                    let replaced = m.events().iter().filter(|&&e| e == id).count();
                    prop_assert_eq!(o.len(), m.len() + replaced);
                }
            }
        }
    }

    #[test]
    fn compact_preserves_trace_shapes_and_names(log in arb_log()) {
        let (compacted, map) = log.compact();
        prop_assert_eq!(compacted.num_traces(), log.num_traces());
        for (o, c) in log.traces().iter().zip(compacted.traces()) {
            prop_assert_eq!(o.len(), c.len());
            for (&oe, &ce) in o.events().iter().zip(c.events()) {
                prop_assert_eq!(log.name_of(oe), compacted.name_of(ce));
                prop_assert_eq!(map[oe.index()], Some(ce));
            }
        }
    }

    #[test]
    fn consecutive_pairs_count(events in prop::collection::vec(0u32..5, 0..20)) {
        let trace: Trace = events.iter().map(|&e| EventId(e)).collect();
        prop_assert_eq!(
            trace.consecutive_pairs().count(),
            trace.len().saturating_sub(1)
        );
    }
}
