//! Randomized property tests of the event model's invariants, driven by the
//! deterministic `ems-rng` generator.

use ems_events::{cut_prefix, cut_suffix, merge_composite, EventId, EventLog, Trace};
use ems_rng::StdRng;

/// A log of 1..20 traces over a small alphabet.
fn random_log(rng: &mut StdRng) -> EventLog {
    let num_traces = rng.gen_range(1..20usize);
    let mut log = EventLog::new();
    for _ in 0..num_traces {
        let len = rng.gen_range(0..12usize);
        log.push_trace((0..len).map(|_| format!("ev{}", rng.gen_range(0..8usize))));
    }
    log
}

#[test]
fn frequencies_are_normalized() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for _ in 0..64 {
        let log = random_log(&mut rng);
        for i in 0..log.alphabet_size() {
            let id = EventId::from_index(i);
            let f = log.event_frequency(id);
            assert!((0.0..=1.0).contains(&f));
            for j in 0..log.alphabet_size() {
                let pf = log.pair_frequency(id, EventId::from_index(j));
                assert!((0.0..=1.0).contains(&pf));
            }
        }
    }
}

/// A trace with the pair `ab` contains both `a` and `b`:
/// f(a,b) ≤ min(f(a), f(b)).
#[test]
fn pair_frequency_bounded_by_node_frequencies() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    for _ in 0..64 {
        let log = random_log(&mut rng);
        for i in 0..log.alphabet_size() {
            for j in 0..log.alphabet_size() {
                let a = EventId::from_index(i);
                let b = EventId::from_index(j);
                let pf = log.pair_frequency(a, b);
                assert!(pf <= log.event_frequency(a) + 1e-12);
                assert!(pf <= log.event_frequency(b) + 1e-12);
            }
        }
    }
}

#[test]
fn cut_prefix_removes_exactly_m_or_everything() {
    let mut rng = StdRng::seed_from_u64(0xE3);
    for _ in 0..64 {
        let log = random_log(&mut rng);
        let m = rng.gen_range(0..6usize);
        let (cut, _) = cut_prefix(&log, m);
        assert_eq!(cut.num_traces(), log.num_traces());
        for (orig, cut_t) in log.traces().iter().zip(cut.traces()) {
            assert_eq!(cut_t.len(), orig.len().saturating_sub(m));
        }
    }
}

#[test]
fn cut_suffix_preserves_prefixes() {
    let mut rng = StdRng::seed_from_u64(0xE4);
    for _ in 0..64 {
        let log = random_log(&mut rng);
        let m = rng.gen_range(0..6usize);
        let (cut, _) = cut_suffix(&log, m);
        for (orig, cut_t) in log.traces().iter().zip(cut.traces()) {
            for (k, &e) in cut_t.events().iter().enumerate() {
                assert_eq!(cut.name_of(e), log.name_of(orig.events()[k]));
            }
        }
    }
}

/// Merging then counting: every replaced occurrence shrinks the trace by
/// |parts| - 1; total event count is conserved accordingly.
#[test]
fn merge_composite_conserves_unmatched_events() {
    let mut rng = StdRng::seed_from_u64(0xE5);
    let mut checked = 0;
    while checked < 64 {
        let log = random_log(&mut rng);
        if log.alphabet_size() < 2 {
            continue;
        }
        checked += 1;
        let a = EventId::from_index(0);
        let b = EventId::from_index(1);
        let (merged, merged_id) = merge_composite(&log, &[a, b], "a+b");
        assert_eq!(merged.num_traces(), log.num_traces());
        match merged_id {
            None => {
                // Nothing merged: same shape.
                for (o, m) in log.traces().iter().zip(merged.traces()) {
                    assert_eq!(o.len(), m.len());
                }
            }
            Some(id) => {
                for (o, m) in log.traces().iter().zip(merged.traces()) {
                    let replaced = m.events().iter().filter(|&&e| e == id).count();
                    assert_eq!(o.len(), m.len() + replaced);
                }
            }
        }
    }
}

#[test]
fn compact_preserves_trace_shapes_and_names() {
    let mut rng = StdRng::seed_from_u64(0xE6);
    for _ in 0..64 {
        let log = random_log(&mut rng);
        let (compacted, map) = log.compact();
        assert_eq!(compacted.num_traces(), log.num_traces());
        for (o, c) in log.traces().iter().zip(compacted.traces()) {
            assert_eq!(o.len(), c.len());
            for (&oe, &ce) in o.events().iter().zip(c.events()) {
                assert_eq!(log.name_of(oe), compacted.name_of(ce));
                assert_eq!(map[oe.index()], Some(ce));
            }
        }
    }
}

#[test]
fn consecutive_pairs_count() {
    let mut rng = StdRng::seed_from_u64(0xE7);
    for _ in 0..64 {
        let len = rng.gen_range(0..20usize);
        let trace: Trace = (0..len).map(|_| EventId(rng.gen_range(0..5u32))).collect();
        assert_eq!(
            trace.consecutive_pairs().count(),
            trace.len().saturating_sub(1)
        );
    }
}
