//! Trace-variant analysis: grouping identical event sequences.
//!
//! Process logs are highly redundant — a handful of *variants* (distinct
//! event sequences) usually covers most traces. Variant analysis is the
//! standard first look at a log, and the matcher benefits too: dependency-
//! graph construction only needs each variant once, weighted by its
//! multiplicity.

use crate::{EventLog, Trace};
use std::collections::HashMap;

/// One trace variant: a distinct event sequence and its multiplicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// The shared event sequence.
    pub trace: Trace,
    /// How many traces of the log have exactly this sequence.
    pub count: usize,
}

/// The variant decomposition of a log, ordered by descending count (ties
/// broken by sequence for determinism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variants {
    variants: Vec<Variant>,
    total: usize,
}

impl Variants {
    /// Computes the variants of `log`.
    pub fn of(log: &EventLog) -> Self {
        let mut counts: HashMap<&Trace, usize> = HashMap::new();
        for t in log.traces() {
            *counts.entry(t).or_insert(0) += 1;
        }
        // ems-lint: allow(nondeterminism, drained into a Vec that is fully sorted under a total order before any consumer sees it)
        let mut variants: Vec<Variant> = counts
            .into_iter()
            .map(|(trace, count)| Variant {
                trace: trace.clone(),
                count,
            })
            .collect();
        variants.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.trace.events().cmp(b.trace.events()))
        });
        Variants {
            variants,
            total: log.num_traces(),
        }
    }

    /// The variants, most frequent first.
    pub fn iter(&self) -> impl Iterator<Item = &Variant> {
        self.variants.iter()
    }

    /// Number of distinct variants.
    pub fn len(&self) -> usize {
        self.variants.len()
    }

    /// Whether the log had no traces.
    pub fn is_empty(&self) -> bool {
        self.variants.is_empty()
    }

    /// Fraction of all traces covered by the `k` most frequent variants.
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let covered: usize = self.variants.iter().take(k).map(|v| v.count).sum();
        covered as f64 / self.total as f64
    }

    /// The smallest number of variants covering at least `fraction` of the
    /// traces.
    pub fn variants_for_coverage(&self, fraction: f64) -> usize {
        let needed = (fraction * self.total as f64).ceil() as usize;
        let mut covered = 0;
        for (i, v) in self.variants.iter().enumerate() {
            covered += v.count;
            if covered >= needed {
                return i + 1;
            }
        }
        self.variants.len()
    }

    /// Rebuilds a log containing one trace per variant, discarding
    /// multiplicities — useful to inspect the control flow without
    /// repetition. Note that dependency-graph *frequencies* change
    /// (Definition 1 counts traces), so matching should use the original log.
    pub fn distinct_log(&self, original: &EventLog) -> EventLog {
        let mut out = EventLog::new();
        if let Some(n) = original.name() {
            out.set_name(format!("{n} (variants)"));
        }
        for v in &self.variants {
            out.push_trace(v.trace.events().iter().map(|&e| original.name_of(e)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> EventLog {
        let mut log = EventLog::with_name("demo");
        for _ in 0..5 {
            log.push_trace(["a", "b", "c"]);
        }
        for _ in 0..3 {
            log.push_trace(["a", "c", "b"]);
        }
        log.push_trace(["a"]);
        log.push_trace(["a"]);
        log
    }

    #[test]
    fn variants_are_counted_and_ordered() {
        let v = Variants::of(&log());
        assert_eq!(v.len(), 3);
        let counts: Vec<usize> = v.iter().map(|x| x.count).collect();
        assert_eq!(counts, vec![5, 3, 2]);
    }

    #[test]
    fn coverage_accumulates() {
        let v = Variants::of(&log());
        assert!((v.coverage(1) - 0.5).abs() < 1e-12);
        assert!((v.coverage(2) - 0.8).abs() < 1e-12);
        assert_eq!(v.coverage(99), 1.0);
        assert_eq!(v.variants_for_coverage(0.5), 1);
        assert_eq!(v.variants_for_coverage(0.8), 2);
        assert_eq!(v.variants_for_coverage(1.0), 3);
    }

    #[test]
    fn distinct_log_has_one_trace_per_variant() {
        let original = log();
        let v = Variants::of(&original);
        let d = v.distinct_log(&original);
        assert_eq!(d.num_traces(), 3);
        assert_eq!(d.name(), Some("demo (variants)"));
        // Most frequent variant first.
        let names: Vec<&str> = d.traces()[0]
            .events()
            .iter()
            .map(|&e| d.name_of(e))
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn empty_log() {
        let v = Variants::of(&EventLog::new());
        assert!(v.is_empty());
        assert_eq!(v.coverage(1), 1.0);
        assert_eq!(v.variants_for_coverage(0.9), 0);
    }
}
