//! Aggregate statistics over an event log.

use crate::{EventLog, Trace};

/// Summary statistics of an [`EventLog`], useful for reporting and for sizing
/// data structures before building dependency graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct LogStats {
    /// Number of traces (multiset size).
    pub num_traces: usize,
    /// Number of distinct event names.
    pub alphabet_size: usize,
    /// Total event occurrences.
    pub total_events: usize,
    /// Shortest trace length (0 for an empty log).
    pub min_trace_len: usize,
    /// Longest trace length.
    pub max_trace_len: usize,
    /// Mean trace length.
    pub mean_trace_len: f64,
    /// Number of distinct trace variants (distinct event sequences).
    pub num_variants: usize,
}

impl LogStats {
    /// Computes statistics for `log`.
    pub fn of(log: &EventLog) -> Self {
        let lens: Vec<usize> = log.traces().iter().map(Trace::len).collect();
        let total: usize = lens.iter().sum();
        let mut variants: Vec<&Trace> = log.traces().iter().collect();
        variants.sort_by(|a, b| a.events().cmp(b.events()));
        variants.dedup_by(|a, b| a.events() == b.events());
        LogStats {
            num_traces: log.num_traces(),
            alphabet_size: log.alphabet_size(),
            total_events: total,
            min_trace_len: lens.iter().copied().min().unwrap_or(0),
            max_trace_len: lens.iter().copied().max().unwrap_or(0),
            mean_trace_len: if lens.is_empty() {
                0.0
            } else {
                total as f64 / lens.len() as f64
            },
            num_variants: variants.len(),
        }
    }
}

impl std::fmt::Display for LogStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} traces ({} variants), {} distinct events, {} occurrences, trace len {}..{} (mean {:.1})",
            self.num_traces,
            self.num_variants,
            self.alphabet_size,
            self.total_events,
            self.min_trace_len,
            self.max_trace_len,
            self.mean_trace_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLog;

    #[test]
    fn stats_of_small_log() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c"]);
        log.push_trace(["a", "b", "c"]);
        log.push_trace(["a"]);
        let s = LogStats::of(&log);
        assert_eq!(s.num_traces, 3);
        assert_eq!(s.num_variants, 2);
        assert_eq!(s.alphabet_size, 3);
        assert_eq!(s.total_events, 7);
        assert_eq!(s.min_trace_len, 1);
        assert_eq!(s.max_trace_len, 3);
        assert!((s.mean_trace_len - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_log() {
        let s = LogStats::of(&EventLog::new());
        assert_eq!(s.num_traces, 0);
        assert_eq!(s.mean_trace_len, 0.0);
        assert_eq!(s.num_variants, 0);
    }

    #[test]
    fn display_is_humane() {
        let mut log = EventLog::new();
        log.push_trace(["a"]);
        let text = LogStats::of(&log).to_string();
        assert!(text.contains("1 traces"));
    }
}
