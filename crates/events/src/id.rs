//! Compact interned event identifiers.

use std::fmt;

/// A compact identifier for an event name (a.k.a. activity label) within one
/// [`EventLog`](crate::EventLog).
///
/// Ids are dense: the `n` distinct event names of a log are assigned ids
/// `0..n` in first-appearance order, which lets downstream similarity kernels
/// index dense matrices directly by id.
///
/// An `EventId` is only meaningful relative to the [`Interner`](crate::Interner)
/// (or log) that produced it; comparing ids across logs compares positions,
/// not names.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

impl EventId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "event id overflow");
        EventId(i as u32)
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for EventId {
    fn from(v: u32) -> Self {
        EventId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let id = EventId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, EventId(42));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", EventId(7)), "e7");
        assert_eq!(format!("{}", EventId(7)), "7");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(EventId(1) < EventId(2));
        assert_eq!(EventId::from(5u32), EventId(5));
    }
}
