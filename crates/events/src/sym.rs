//! Cross-log label symbols and content fingerprints.
//!
//! [`EventId`]s are scoped to a single [`EventLog`](crate::EventLog): id 3 of
//! log A and id 3 of log B usually name different activities. Matching,
//! caching, and composite merging all need a *shared* identity space where
//! equal labels compare equal across logs without touching the strings. A
//! [`SymbolTable`] provides that space: it interns names into dense
//! [`LabelSym`]s that are stable for the lifetime of the table (typically a
//! `MatchSession`), so hot paths compare `u32`s and strings are only
//! materialized at the parse and report edges.
//!
//! The module also provides [`Fnv1a`], a dependency-free 64-bit FNV-1a hasher
//! used to fingerprint logs and graphs for cache keys. Unlike
//! `std::collections::hash_map::DefaultHasher`, its output is specified and
//! stable across processes and Rust releases, so fingerprints can appear in
//! exported telemetry without breaking byte-identity contracts.

use crate::EventLog;
use std::collections::HashMap;
use std::fmt;

/// A compact label identity shared across logs within one [`SymbolTable`].
///
/// Like [`EventId`](crate::EventId), symbols are dense (`0..n` in
/// first-intern order), but their scope is the table — usually a whole
/// matching session — so the same activity name maps to the same symbol in
/// every log, graph, and candidate that the session touches.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelSym(pub u32);

impl LabelSym {
    /// The symbol as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "label symbol overflow");
        LabelSym(i as u32)
    }
}

impl fmt::Debug for LabelSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for LabelSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Interns label strings into dense cross-log [`LabelSym`]s.
///
/// Symbols are assigned in first-intern order and never invalidated; a table
/// only grows. Lookup is `O(1)` in both directions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    names: Vec<String>,
    // ems-lint: allow(string-keyed-map, this interner IS the parse edge: one string probe per label at intern time; everything downstream keys by LabelSym)
    index: HashMap<String, LabelSym>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> LabelSym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = LabelSym::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// Returns the symbol of `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<LabelSym> {
        self.index.get(name).copied()
    }

    /// Returns the name for `sym`, or `None` if out of range.
    pub fn name(&self, sym: LabelSym) -> Option<&str> {
        self.names.get(sym.index()).map(String::as_str)
    }

    /// Returns the name for `sym`, panicking on out-of-range symbols.
    pub fn resolve(&self, sym: LabelSym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(sym, name)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelSym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelSym::from_index(i), n.as_str()))
    }

    /// Interns every event name of `log`, returning the per-[`EventId`]
    /// symbol column: entry `i` is the symbol of the log's event id `i`.
    pub fn symbolize(&mut self, log: &EventLog) -> Vec<LabelSym> {
        (0..log.alphabet_size())
            .map(|i| self.intern(log.name_of(crate::EventId::from_index(i))))
            .collect()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hasher with a specified, process-stable output.
///
/// Used for fingerprint cache keys; not a defense against adversarial
/// collisions (cache keys here only ever mix trusted inputs).
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl Fnv1a {
    /// Creates a hasher in the standard FNV-1a initial state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length or index (as `u64`, so 32/64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Returns the current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Content fingerprint of a log: hashes the trace structure over event
/// *names* (not ids), so two logs with identical content fingerprint equal
/// regardless of interning order, process, or platform.
pub fn fingerprint_log(log: &EventLog) -> u64 {
    let mut h = Fnv1a::new();
    h.write_usize(log.num_traces());
    for trace in log.traces() {
        h.write_usize(trace.len());
        for &id in trace.events() {
            let name = log.name_of(id);
            h.write_usize(name.len());
            h.write(name.as_bytes());
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_shared_across_logs() {
        let mut table = SymbolTable::new();
        let mut l1 = EventLog::new();
        l1.push_trace(["b", "a"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["a", "c"]);
        let s1 = table.symbolize(&l1);
        let s2 = table.symbolize(&l2);
        // "a" is id 1 in l1 but id 0 in l2; one symbol in the shared table.
        assert_eq!(s1[1], s2[0]);
        assert_ne!(s1[0], s2[1]);
        assert_eq!(table.len(), 3);
        assert_eq!(table.resolve(s1[1]), "a");
    }

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut table = SymbolTable::new();
        assert_eq!(table.intern("x"), LabelSym(0));
        assert_eq!(table.intern("y"), LabelSym(1));
        assert_eq!(table.intern("x"), LabelSym(0));
        assert_eq!(table.get("y"), Some(LabelSym(1)));
        assert_eq!(table.get("z"), None);
        assert_eq!(table.name(LabelSym(9)), None);
        let pairs: Vec<_> = table
            .iter()
            .map(|(s, n)| (s.index(), n.to_owned()))
            .collect();
        assert_eq!(pairs, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let mut a = EventLog::new();
        a.push_trace(["x", "y"]);
        // Same content built through a different path hashes identically.
        let mut builder = crate::LogBuilder::new();
        builder.begin_trace();
        builder.event("x");
        builder.event("y");
        builder.end_trace();
        let b = builder.finish();
        assert_eq!(fingerprint_log(&a), fingerprint_log(&b));

        let mut c = EventLog::new();
        c.push_trace(["x", "z"]);
        assert_ne!(fingerprint_log(&a), fingerprint_log(&c));

        // Trace boundaries matter: ["x","y"] != ["x"],["y"].
        let mut d = EventLog::new();
        d.push_trace(["x"]);
        d.push_trace(["y"]);
        assert_ne!(fingerprint_log(&a), fingerprint_log(&d));
    }
}
