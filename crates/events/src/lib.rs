#![forbid(unsafe_code)]
//! Event model for heterogeneous event-log matching.
//!
//! This crate provides the data model shared by every other crate in the
//! workspace: interned [`EventId`]s, [`Trace`]s (finite sequences of events),
//! and [`EventLog`]s (multisets of traces, per Section 2 of the paper
//! *Matching Heterogeneous Event Data*, SIGMOD 2014).
//!
//! Event names are interned once per log into compact `u32` ids so that the
//! similarity kernels downstream can use dense matrices indexed by id instead
//! of hashing strings.
//!
//! # Example
//!
//! ```
//! use ems_events::EventLog;
//!
//! let mut log = EventLog::new();
//! log.push_trace(["Paid by Cash", "Check Inventory", "Validate"]);
//! log.push_trace(["Order", "Check Inventory", "Validate"]);
//! assert_eq!(log.num_traces(), 2);
//! assert_eq!(log.alphabet_size(), 4);
//! // "Check Inventory" occurs in every trace:
//! let id = log.id_of("Check Inventory").unwrap();
//! assert_eq!(log.event_frequency(id), 1.0);
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod error;
mod id;
mod interner;
mod log;
mod stats;
mod sym;
mod trace;
mod transform;
mod variants;

pub use error::EventsError;
pub use id::EventId;
pub use interner::Interner;
pub use log::{EventLog, LogBuilder};
pub use stats::LogStats;
pub use sym::{fingerprint_log, Fnv1a, LabelSym, SymbolTable};
pub use trace::Trace;
pub use transform::{
    cut_prefix, cut_suffix, merge_composite, opaque_rename, rename_events, try_merge_composite,
    try_rename_events, OpaqueStyle,
};
pub use variants::{Variant, Variants};
