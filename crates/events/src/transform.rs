//! Trace transforms used to prepare logs and to inject the paper's
//! heterogeneity features (dislocation, opaque names, composite events) into
//! synthetic data.

use crate::{EventId, EventLog, Trace};

/// Removes the first `m` events of every trace (shorter traces become empty),
/// producing the *dislocated* logs of Figure 9: "we synthetically remove the
/// first m events of each trace in one event log".
///
/// The returned log is compacted: events that no longer occur anywhere are
/// dropped from the alphabet. Also returns the old→new id map.
pub fn cut_prefix(log: &EventLog, m: usize) -> (EventLog, Vec<Option<EventId>>) {
    cut(log, m, true)
}

/// Removes the last `m` events of every trace; the mirror of [`cut_prefix`]
/// used to build the DS-F testbed (dislocation at the end of traces).
pub fn cut_suffix(log: &EventLog, m: usize) -> (EventLog, Vec<Option<EventId>>) {
    cut(log, m, false)
}

fn cut(log: &EventLog, m: usize, front: bool) -> (EventLog, Vec<Option<EventId>>) {
    let mut out = EventLog::new();
    if let Some(n) = log.name() {
        out.set_name(n);
    }
    for trace in log.traces() {
        let evs = trace.events();
        let kept: &[EventId] = if m >= evs.len() {
            &[]
        } else if front {
            &evs[m..]
        } else {
            &evs[..evs.len() - m]
        };
        out.push_trace(kept.iter().map(|&e| log.name_of(e)));
    }
    let map = (0..log.alphabet_size())
        .map(|i| out.id_of(log.name_of(EventId::from_index(i))))
        .collect();
    (out, map)
}

/// Replaces every maximal occurrence of the consecutive sequence `parts`
/// within each trace by the single composite event named `merged_name`.
///
/// This is the log-level realization of "treat each composite event as one
/// node" (Section 4): rebuilding the dependency graph from the transformed
/// log keeps Definition 1's frequencies consistent.
///
/// Occurrences are matched greedily left-to-right and must be strictly
/// consecutive. Returns the transformed log and the id of the merged event in
/// the new alphabet (`None` if the sequence never occurred).
pub fn merge_composite(
    log: &EventLog,
    parts: &[EventId],
    merged_name: &str,
) -> (EventLog, Option<EventId>) {
    assert!(!parts.is_empty(), "composite must have at least one part");
    merge_composite_inner(log, parts, merged_name)
}

/// Non-panicking variant of [`merge_composite`]: returns a typed error when
/// `parts` is empty or references ids outside `log`'s alphabet.
pub fn try_merge_composite(
    log: &EventLog,
    parts: &[EventId],
    merged_name: &str,
) -> Result<(EventLog, Option<EventId>), crate::EventsError> {
    if parts.is_empty() {
        return Err(crate::EventsError::EmptyComposite);
    }
    if let Some(bad) = parts.iter().find(|p| p.index() >= log.alphabet_size()) {
        return Err(crate::EventsError::IdOutOfRange {
            id: bad.index(),
            alphabet: log.alphabet_size(),
        });
    }
    Ok(merge_composite_inner(log, parts, merged_name))
}

fn merge_composite_inner(
    log: &EventLog,
    parts: &[EventId],
    merged_name: &str,
) -> (EventLog, Option<EventId>) {
    let mut out = EventLog::new();
    if let Some(n) = log.name() {
        out.set_name(n);
    }
    for trace in log.traces() {
        let evs = trace.events();
        let mut names: Vec<&str> = Vec::with_capacity(evs.len());
        let mut i = 0;
        while i < evs.len() {
            if evs[i..].starts_with(parts) {
                names.push(merged_name);
                i += parts.len();
            } else {
                names.push(log.name_of(evs[i]));
                i += 1;
            }
        }
        out.push_trace(names);
    }
    let merged_id = out.id_of(merged_name);
    (out, merged_id)
}

/// How opaque names are produced by [`opaque_rename`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpaqueStyle {
    /// Replace each name with a meaningless numbered token (`"evt_17"`),
    /// simulating labels from a foreign encoding: no typographic signal at all.
    Numbered,
    /// Reverse the characters of each name, destroying most q-gram overlap
    /// while keeping length and character distribution.
    Reversed,
    /// Replace every character with `'?'` (as the paper's garbled
    /// `"?????(5)"`) — names collide unless lengths differ.
    Garbled,
}

/// Renames every event according to `style`, returning the renamed log and
/// the mapping `old id -> new name`.
///
/// Trace structure is untouched; only labels change. Ids are preserved
/// (the renamed log interns names in the same first-appearance order).
pub fn opaque_rename(log: &EventLog, style: OpaqueStyle) -> (EventLog, Vec<String>) {
    let names: Vec<String> = (0..log.alphabet_size())
        .map(|i| {
            let old = log.name_of(EventId::from_index(i));
            match style {
                OpaqueStyle::Numbered => format!("evt_{i}"),
                OpaqueStyle::Reversed => old.chars().rev().collect(),
                OpaqueStyle::Garbled => "?".repeat(old.chars().count().max(1)),
            }
        })
        .collect();
    (rename_events(log, &names), names)
}

/// Renames event `id` to `names[id.index()]` for every event.
///
/// `names` must have one entry per alphabet slot. Distinct old events may be
/// given the same new name (they then merge into one event in the result).
pub fn rename_events(log: &EventLog, names: &[String]) -> EventLog {
    assert_eq!(
        names.len(),
        log.alphabet_size(),
        "need exactly one new name per event"
    );
    rename_events_inner(log, names)
}

/// Non-panicking variant of [`rename_events`]: returns a typed error when
/// `names` does not supply exactly one entry per alphabet slot.
pub fn try_rename_events(log: &EventLog, names: &[String]) -> Result<EventLog, crate::EventsError> {
    if names.len() != log.alphabet_size() {
        return Err(crate::EventsError::NameCountMismatch {
            expected: log.alphabet_size(),
            got: names.len(),
        });
    }
    Ok(rename_events_inner(log, names))
}

fn rename_events_inner(log: &EventLog, names: &[String]) -> EventLog {
    let mut out = EventLog::new();
    if let Some(n) = log.name() {
        out.set_name(n);
    }
    // Pre-intern in id order so ids remain aligned when names are unique.
    let ids: Vec<EventId> = names.iter().map(|n| out.intern(n)).collect();
    for trace in log.traces() {
        let t: Trace = trace.events().iter().map(|e| ids[e.index()]).collect();
        out.push_trace_ids(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log3() -> EventLog {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c", "d"]);
        log.push_trace(["a", "b", "d"]);
        log
    }

    #[test]
    fn cut_prefix_removes_leading_events() {
        let (cut, map) = cut_prefix(&log3(), 1);
        assert_eq!(cut.traces()[0].len(), 3);
        assert_eq!(cut.traces()[1].len(), 2);
        // "a" no longer occurs anywhere.
        assert_eq!(cut.id_of("a"), None);
        assert_eq!(map[log3().id_of("a").unwrap().index()], None);
        assert!(map[log3().id_of("b").unwrap().index()].is_some());
    }

    #[test]
    fn cut_longer_than_trace_yields_empty_trace() {
        let (cut, _) = cut_prefix(&log3(), 10);
        assert_eq!(cut.num_traces(), 2);
        assert!(cut.traces().iter().all(|t| t.is_empty()));
        assert_eq!(cut.alphabet_size(), 0);
    }

    #[test]
    fn cut_suffix_removes_trailing_events() {
        let (cut, _) = cut_suffix(&log3(), 2);
        assert_eq!(cut.traces()[0].events().len(), 2);
        assert_eq!(cut.name_of(cut.traces()[0].events()[1]), "b");
    }

    #[test]
    fn merge_composite_replaces_consecutive_run() {
        let log = log3();
        let b = log.id_of("b").unwrap();
        let c = log.id_of("c").unwrap();
        let (merged, id) = merge_composite(&log, &[b, c], "b+c");
        let id = id.expect("bc occurs");
        // First trace: a, b+c, d.
        assert_eq!(merged.traces()[0].len(), 3);
        assert_eq!(merged.name_of(merged.traces()[0].events()[1]), "b+c");
        // Second trace has no "bc" run: untouched.
        assert_eq!(merged.traces()[1].len(), 3);
        assert!(merged.traces()[1].events().iter().all(|&e| e != id));
    }

    #[test]
    fn merge_composite_not_occurring_returns_none() {
        let log = log3();
        let d = log.id_of("d").unwrap();
        let a = log.id_of("a").unwrap();
        let (_, id) = merge_composite(&log, &[d, a], "d+a");
        assert_eq!(id, None);
    }

    #[test]
    fn merge_composite_matches_repeatedly() {
        let mut log = EventLog::new();
        log.push_trace(["x", "y", "x", "y"]);
        let x = log.id_of("x").unwrap();
        let y = log.id_of("y").unwrap();
        let (merged, _) = merge_composite(&log, &[x, y], "xy");
        assert_eq!(merged.traces()[0].len(), 2);
    }

    #[test]
    fn opaque_numbered_destroys_names_not_structure() {
        let log = log3();
        let (op, names) = opaque_rename(&log, OpaqueStyle::Numbered);
        assert_eq!(op.num_traces(), log.num_traces());
        assert_eq!(op.alphabet_size(), log.alphabet_size());
        assert_eq!(names[0], "evt_0");
        // Structure is preserved: same trace lengths.
        assert_eq!(op.traces()[0].len(), 4);
    }

    #[test]
    fn opaque_reversed_reverses_chars() {
        let mut log = EventLog::new();
        log.push_trace(["abc"]);
        let (op, _) = opaque_rename(&log, OpaqueStyle::Reversed);
        assert!(op.id_of("cba").is_some());
    }

    #[test]
    fn opaque_garbled_uses_question_marks() {
        let mut log = EventLog::new();
        log.push_trace(["ship", "pay"]);
        let (op, names) = opaque_rename(&log, OpaqueStyle::Garbled);
        assert_eq!(names[0], "????");
        assert_eq!(names[1], "???");
        assert_eq!(op.alphabet_size(), 2);
    }

    #[test]
    fn garbled_name_collisions_merge_events() {
        let mut log = EventLog::new();
        log.push_trace(["ab", "cd"]); // both garble to "??"
        let (op, _) = opaque_rename(&log, OpaqueStyle::Garbled);
        assert_eq!(op.alphabet_size(), 1);
        assert_eq!(op.traces()[0].len(), 2);
    }

    #[test]
    fn rename_preserves_ids_for_unique_names() {
        let log = log3();
        let names: Vec<String> = (0..log.alphabet_size()).map(|i| format!("n{i}")).collect();
        let renamed = rename_events(&log, &names);
        for i in 0..log.alphabet_size() {
            assert_eq!(renamed.name_of(EventId::from_index(i)), format!("n{i}"));
        }
    }
}
