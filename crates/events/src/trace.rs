//! Traces: finite sequences of events.

use crate::EventId;

/// A trace is a finite sequence of events from the log's alphabet, recording
/// the steps of one process instance (case) in order of occurrence.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Trace {
    events: Vec<EventId>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace from a sequence of ids.
    pub fn from_ids(ids: impl IntoIterator<Item = EventId>) -> Self {
        Trace {
            events: ids.into_iter().collect(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, id: EventId) {
        self.events.push(id);
    }

    /// The events in occurrence order.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// Mutable access to the underlying event sequence.
    pub fn events_mut(&mut self) -> &mut Vec<EventId> {
        &mut self.events
    }

    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether event `id` occurs anywhere in the trace.
    pub fn contains(&self, id: EventId) -> bool {
        self.events.contains(&id)
    }

    /// Iterates consecutive event pairs `(t[i], t[i+1])`.
    pub fn consecutive_pairs(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        self.events.windows(2).map(|w| (w[0], w[1]))
    }
}

impl FromIterator<EventId> for Trace {
    fn from_iter<T: IntoIterator<Item = EventId>>(iter: T) -> Self {
        Trace::from_ids(iter)
    }
}

impl From<Vec<EventId>> for Trace {
    fn from(events: Vec<EventId>) -> Self {
        Trace { events }
    }
}

impl std::ops::Index<usize> for Trace {
    type Output = EventId;
    fn index(&self, i: usize) -> &EventId {
        &self.events[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ids: &[u32]) -> Trace {
        ids.iter().copied().map(EventId).collect()
    }

    #[test]
    fn push_and_len() {
        let mut tr = Trace::new();
        assert!(tr.is_empty());
        tr.push(EventId(3));
        tr.push(EventId(1));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0], EventId(3));
        assert_eq!(tr.events(), &[EventId(3), EventId(1)]);
    }

    #[test]
    fn consecutive_pairs_of_short_traces() {
        assert_eq!(t(&[]).consecutive_pairs().count(), 0);
        assert_eq!(t(&[5]).consecutive_pairs().count(), 0);
        let pairs: Vec<_> = t(&[1, 2, 3]).consecutive_pairs().collect();
        assert_eq!(
            pairs,
            vec![(EventId(1), EventId(2)), (EventId(2), EventId(3))]
        );
    }

    #[test]
    fn contains_checks_membership() {
        let tr = t(&[1, 2, 2]);
        assert!(tr.contains(EventId(2)));
        assert!(!tr.contains(EventId(7)));
    }

    #[test]
    fn from_vec_preserves_order() {
        let tr = Trace::from(vec![EventId(4), EventId(2)]);
        assert_eq!(tr.events(), &[EventId(4), EventId(2)]);
    }
}
