//! Typed errors for the event model.

use ems_error::EmsError;
use std::fmt;

/// Errors raised by event-model operations on invalid data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventsError {
    /// A composite merge was requested with an empty part list.
    EmptyComposite,
    /// A rename supplied the wrong number of names for the alphabet.
    NameCountMismatch {
        /// Alphabet size of the log.
        expected: usize,
        /// Number of names supplied.
        got: usize,
    },
    /// An [`crate::EventId`] does not belong to this log's alphabet.
    IdOutOfRange {
        /// The offending id's index.
        id: usize,
        /// The log's alphabet size.
        alphabet: usize,
    },
    /// A named event does not occur in the log.
    UnknownEvent {
        /// The name that was looked up.
        name: String,
    },
}

impl fmt::Display for EventsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventsError::EmptyComposite => {
                write!(f, "composite must have at least one part")
            }
            EventsError::NameCountMismatch { expected, got } => {
                write!(
                    f,
                    "need exactly one new name per event: expected {expected}, got {got}"
                )
            }
            EventsError::IdOutOfRange { id, alphabet } => {
                write!(f, "event id {id} out of range for alphabet of {alphabet}")
            }
            EventsError::UnknownEvent { name } => {
                write!(f, "event {name:?} does not occur in the log")
            }
        }
    }
}

impl std::error::Error for EventsError {}

impl From<EventsError> for EmsError {
    fn from(e: EventsError) -> Self {
        EmsError::Input {
            message: e.to_string(),
        }
    }
}
