//! String interner mapping event names to dense [`EventId`]s.

use crate::EventId;
use std::collections::HashMap;

/// Interns event-name strings into dense [`EventId`]s.
///
/// Names are assigned ids in first-appearance order. Lookup is `O(1)` in both
/// directions: name→id via a hash map, id→name via a vector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interner {
    names: Vec<String>,
    // ems-lint: allow(string-keyed-map, this interner IS the parse edge: one string probe per event at ingest; everything downstream keys by EventId)
    index: HashMap<String, EventId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> EventId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = EventId::from_index(self.names.len());
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Returns the id of `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<EventId> {
        self.index.get(name).copied()
    }

    /// Returns the name for `id`, or `None` if `id` is out of range.
    pub fn name(&self, id: EventId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Returns the name for `id`, panicking on out-of-range ids.
    pub fn resolve(&self, id: EventId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (EventId::from_index(i), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        assert_ne!(a, b);
        assert_eq!(it.intern("a"), a);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_first_appearance_order() {
        let mut it = Interner::new();
        assert_eq!(it.intern("x"), EventId(0));
        assert_eq!(it.intern("y"), EventId(1));
        assert_eq!(it.intern("x"), EventId(0));
        assert_eq!(it.intern("z"), EventId(2));
    }

    #[test]
    fn bidirectional_lookup() {
        let mut it = Interner::new();
        let id = it.intern("Ship Goods");
        assert_eq!(it.get("Ship Goods"), Some(id));
        assert_eq!(it.name(id), Some("Ship Goods"));
        assert_eq!(it.resolve(id), "Ship Goods");
        assert_eq!(it.get("missing"), None);
        assert_eq!(it.name(EventId(99)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut it = Interner::new();
        it.intern("a");
        it.intern("b");
        let collected: Vec<_> = it
            .iter()
            .map(|(id, n)| (id.index(), n.to_owned()))
            .collect();
        assert_eq!(collected, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn empty_interner() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}
