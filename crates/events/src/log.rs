//! Event logs: multisets of traces over an interned alphabet.

use crate::{EventId, Interner, Trace};

/// An event log: a multiset of [`Trace`]s over a shared, interned alphabet of
/// event names (Section 2 of the paper).
///
/// Duplicate traces are kept — frequencies in the dependency graph are
/// fractions of *traces*, so multiplicity matters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventLog {
    interner: Interner,
    traces: Vec<Trace>,
    /// Optional human-readable name (e.g. source file or subsidiary).
    name: Option<String>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty log with a display name.
    pub fn with_name(name: impl Into<String>) -> Self {
        EventLog {
            name: Some(name.into()),
            ..Self::default()
        }
    }

    /// The log's display name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Sets the display name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// Interns `name` into this log's alphabet, returning its id.
    pub fn intern(&mut self, name: &str) -> EventId {
        self.interner.intern(name)
    }

    /// Appends a trace given by event names, interning as needed.
    pub fn push_trace<I, S>(&mut self, names: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let trace = names
            .into_iter()
            .map(|n| self.interner.intern(n.as_ref()))
            .collect();
        self.traces.push(trace);
    }

    /// Appends an already-interned trace.
    ///
    /// The caller must ensure all ids were produced by this log's interner
    /// (debug-asserted).
    pub fn push_trace_ids(&mut self, trace: Trace) {
        debug_assert!(
            trace
                .events()
                .iter()
                .all(|e| e.index() < self.interner.len()),
            "trace contains ids outside this log's alphabet"
        );
        self.traces.push(trace);
    }

    /// The traces of the log in insertion order.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Number of traces (multiset size).
    pub fn num_traces(&self) -> usize {
        self.traces.len()
    }

    /// Total number of event occurrences across all traces.
    pub fn num_events(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// Number of distinct event names.
    pub fn alphabet_size(&self) -> usize {
        self.interner.len()
    }

    /// The interner mapping names to ids.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Id of `name` if it occurs in the alphabet.
    pub fn id_of(&self, name: &str) -> Option<EventId> {
        self.interner.get(name)
    }

    /// Name of `id` (panics if out of range).
    ///
    /// # Panics
    ///
    /// Panics when `id` was not produced by this log's interner. Use
    /// [`EventLog::try_name_of`] when the id may come from another log.
    pub fn name_of(&self, id: EventId) -> &str {
        self.interner.resolve(id)
    }

    /// Name of `id`, or a typed error when `id` is outside this log's
    /// alphabet (e.g. an id produced by a different log).
    pub fn try_name_of(&self, id: EventId) -> Result<&str, crate::EventsError> {
        self.interner
            .name(id)
            .ok_or(crate::EventsError::IdOutOfRange {
                id: id.index(),
                alphabet: self.interner.len(),
            })
    }

    /// Fraction of traces that contain `id` at least once — the normalized
    /// event frequency `f(v)` of Definition 1.
    ///
    /// Returns 0 for an empty log.
    pub fn event_frequency(&self, id: EventId) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        let n = self.traces.iter().filter(|t| t.contains(id)).count();
        n as f64 / self.traces.len() as f64
    }

    /// Fraction of traces in which `a` is immediately followed by `b` at least
    /// once — the normalized edge frequency `f(a,b)` of Definition 1.
    pub fn pair_frequency(&self, a: EventId, b: EventId) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        let n = self
            .traces
            .iter()
            .filter(|t| t.consecutive_pairs().any(|(x, y)| x == a && y == b))
            .count();
        n as f64 / self.traces.len() as f64
    }

    /// Rebuilds this log with a fresh dense alphabet containing only events
    /// that actually occur in some trace. Returns the mapping
    /// `old id -> new id` (`None` for names that no longer occur).
    ///
    /// Useful after transforms that drop events (e.g. dislocation cuts).
    pub fn compact(&self) -> (EventLog, Vec<Option<EventId>>) {
        let mut out = EventLog {
            name: self.name.clone(),
            ..EventLog::default()
        };
        let mut map: Vec<Option<EventId>> = vec![None; self.interner.len()];
        for trace in &self.traces {
            let mut new_trace = Trace::new();
            for &e in trace.events() {
                let new_id = *map[e.index()]
                    .get_or_insert_with(|| out.interner.intern(self.interner.resolve(e)));
                new_trace.push(new_id);
            }
            out.traces.push(new_trace);
        }
        (out, map)
    }
}

/// Incremental builder for an [`EventLog`], convenient when traces arrive
/// event-by-event (e.g. from a streaming parser).
#[derive(Debug, Default)]
pub struct LogBuilder {
    log: EventLog,
    current: Option<Trace>,
}

impl LogBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the log name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.log.set_name(name);
        self
    }

    /// Starts a new trace; any open trace is finished first.
    pub fn begin_trace(&mut self) -> &mut Self {
        self.end_trace();
        self.current = Some(Trace::new());
        self
    }

    /// Appends an event to the current trace, opening one if none is open.
    pub fn event(&mut self, name: &str) -> &mut Self {
        let id = self.log.intern(name);
        self.current.get_or_insert_with(Trace::new).push(id);
        self
    }

    /// Finishes the current trace, committing it to the log (empty traces are
    /// committed too — a case can legitimately have no recorded events).
    pub fn end_trace(&mut self) -> &mut Self {
        if let Some(t) = self.current.take() {
            self.log.push_trace_ids(t);
        }
        self
    }

    /// Finishes the open trace if any and returns the log.
    pub fn finish(mut self) -> EventLog {
        self.end_trace();
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_log() -> EventLog {
        // Mirrors L1 of Figure 1: traces over A..F.
        let mut log = EventLog::with_name("L1");
        log.push_trace(["A", "C", "D", "E", "F"]);
        log.push_trace(["A", "C", "D", "F", "E"]);
        log.push_trace(["B", "C", "D", "E", "F"]);
        log.push_trace(["B", "C", "D", "F", "E"]);
        log.push_trace(["B", "C", "D", "E", "F"]);
        log
    }

    #[test]
    fn frequencies_match_definition_1() {
        let log = example_log();
        let a = log.id_of("A").unwrap();
        let b = log.id_of("B").unwrap();
        let c = log.id_of("C").unwrap();
        assert!((log.event_frequency(a) - 0.4).abs() < 1e-12);
        assert!((log.event_frequency(b) - 0.6).abs() < 1e-12);
        assert!((log.event_frequency(c) - 1.0).abs() < 1e-12);
        assert!((log.pair_frequency(a, c) - 0.4).abs() < 1e-12);
        assert!((log.pair_frequency(c, a) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn pair_frequency_counts_traces_not_occurrences() {
        let mut log = EventLog::new();
        // "xy" occurs twice in one trace: still counts that trace once.
        log.push_trace(["x", "y", "x", "y"]);
        log.push_trace(["x", "z"]);
        let x = log.id_of("x").unwrap();
        let y = log.id_of("y").unwrap();
        assert!((log.pair_frequency(x, y) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_log_frequencies_are_zero() {
        let log = EventLog::new();
        assert_eq!(log.event_frequency(EventId(0)), 0.0);
        assert_eq!(log.pair_frequency(EventId(0), EventId(1)), 0.0);
    }

    #[test]
    fn builder_accumulates_traces() {
        let mut b = LogBuilder::new();
        b.name("demo");
        b.begin_trace().event("a").event("b");
        b.begin_trace().event("c");
        let log = b.finish();
        assert_eq!(log.name(), Some("demo"));
        assert_eq!(log.num_traces(), 2);
        assert_eq!(log.num_events(), 3);
    }

    #[test]
    fn builder_event_without_begin_opens_trace() {
        let mut b = LogBuilder::new();
        b.event("solo");
        let log = b.finish();
        assert_eq!(log.num_traces(), 1);
    }

    #[test]
    fn compact_drops_unused_names() {
        let mut log = EventLog::new();
        let _unused = log.intern("ghost");
        log.push_trace(["a", "b"]);
        let (compacted, map) = log.compact();
        assert_eq!(compacted.alphabet_size(), 2);
        assert_eq!(map[log.id_of("ghost").unwrap().index()], None);
        let a_old = log.id_of("a").unwrap();
        let a_new = map[a_old.index()].unwrap();
        assert_eq!(compacted.name_of(a_new), "a");
    }

    #[test]
    fn duplicate_traces_are_kept() {
        let mut log = EventLog::new();
        log.push_trace(["a"]);
        log.push_trace(["a"]);
        assert_eq!(log.num_traces(), 2);
    }
}
