//! Log simulation (playout) of process trees.

use crate::tree::ProcessTree;
use ems_events::EventLog;
use ems_rng::StdRng;

/// Parameters of a playout run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlayoutConfig {
    /// Number of traces to simulate.
    pub num_traces: usize,
    /// RNG seed (independent of the tree's generation seed).
    pub seed: u64,
    /// Hard cap on loop rounds per loop node, to bound trace length.
    pub max_loop_rounds: usize,
}

impl Default for PlayoutConfig {
    fn default() -> Self {
        PlayoutConfig {
            num_traces: 100,
            seed: 1,
            max_loop_rounds: 3,
        }
    }
}

/// Simulates `config.num_traces` traces of `tree` into an [`EventLog`]:
/// XOR branches are drawn by weight, AND children are randomly interleaved,
/// and loops repeat geometrically (capped).
pub fn playout(tree: &ProcessTree, config: &PlayoutConfig) -> EventLog {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut log = EventLog::new();
    for _ in 0..config.num_traces {
        let mut trace: Vec<&str> = Vec::new();
        emit(tree, &mut rng, config, &mut trace);
        log.push_trace(trace);
    }
    log
}

fn emit<'t>(
    tree: &'t ProcessTree,
    rng: &mut StdRng,
    config: &PlayoutConfig,
    out: &mut Vec<&'t str>,
) {
    match tree {
        ProcessTree::Activity(a) => out.push(a),
        ProcessTree::Sequence(cs) => cs.iter().for_each(|c| emit(c, rng, config, out)),
        ProcessTree::Xor(cs) => {
            let total: f64 = cs.iter().map(|(_, w)| w).sum();
            let mut roll = rng.gen::<f64>() * total;
            for (c, w) in cs {
                roll -= w;
                if roll <= 0.0 {
                    emit(c, rng, config, out);
                    return;
                }
            }
            // Floating-point slack: take the last branch.
            if let Some((c, _)) = cs.last() {
                emit(c, rng, config, out);
            }
        }
        ProcessTree::And(cs) => {
            // Emit each child into its own buffer, then interleave by
            // randomly drawing from the fronts — a uniform random shuffle of
            // the concurrent executions that preserves each child's order.
            let buffers: Vec<Vec<&'t str>> = cs
                .iter()
                .map(|c| {
                    let mut b = Vec::new();
                    emit(c, rng, config, &mut b);
                    b
                })
                .collect();
            let mut fronts = vec![0usize; buffers.len()];
            let total: usize = buffers.iter().map(Vec::len).sum();
            for _ in 0..total {
                // Draw a child proportionally to its remaining length.
                let remaining: Vec<usize> = buffers
                    .iter()
                    .zip(&fronts)
                    .map(|(b, &f)| b.len() - f)
                    .collect();
                let sum: usize = remaining.iter().sum();
                let mut roll = rng.gen_range(0..sum);
                let mut pick = 0usize;
                for (i, &r) in remaining.iter().enumerate() {
                    if roll < r {
                        pick = i;
                        break;
                    }
                    roll -= r;
                }
                out.push(buffers[pick][fronts[pick]]);
                fronts[pick] += 1;
            }
        }
        ProcessTree::Loop { body, repeat } => {
            emit(body, rng, config, out);
            let mut rounds = 0;
            while rounds < config.max_loop_rounds && rng.gen::<f64>() < *repeat {
                emit(body, rng, config, out);
                rounds += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{generate_tree, TreeConfig};

    fn seq(names: &[&str]) -> ProcessTree {
        ProcessTree::Sequence(
            names
                .iter()
                .map(|n| ProcessTree::Activity((*n).to_owned()))
                .collect(),
        )
    }

    #[test]
    fn sequence_plays_out_in_order() {
        let log = playout(&seq(&["a", "b", "c"]), &PlayoutConfig::default());
        assert_eq!(log.num_traces(), 100);
        for t in log.traces() {
            let names: Vec<&str> = t.events().iter().map(|&e| log.name_of(e)).collect();
            assert_eq!(names, ["a", "b", "c"]);
        }
    }

    #[test]
    fn xor_respects_weights_roughly() {
        let tree = ProcessTree::Xor(vec![
            (ProcessTree::Activity("x".into()), 0.8),
            (ProcessTree::Activity("y".into()), 0.2),
        ]);
        let log = playout(
            &tree,
            &PlayoutConfig {
                num_traces: 2000,
                ..PlayoutConfig::default()
            },
        );
        let fx = log.event_frequency(log.id_of("x").unwrap());
        assert!((fx - 0.8).abs() < 0.05, "x frequency {fx}");
    }

    #[test]
    fn and_preserves_per_child_order() {
        let tree = ProcessTree::And(vec![seq(&["a", "b"]), seq(&["x", "y"])]);
        let log = playout(&tree, &PlayoutConfig::default());
        let mut saw_interleaving = false;
        for t in log.traces() {
            let names: Vec<&str> = t.events().iter().map(|&e| log.name_of(e)).collect();
            assert_eq!(names.len(), 4);
            let pos = |n: &str| names.iter().position(|&m| m == n).unwrap();
            assert!(pos("a") < pos("b"));
            assert!(pos("x") < pos("y"));
            if names != ["a", "b", "x", "y"] && names != ["x", "y", "a", "b"] {
                saw_interleaving = true;
            }
        }
        assert!(saw_interleaving, "AND never interleaved in 100 traces");
    }

    #[test]
    fn loop_repeats_but_is_capped() {
        let tree = ProcessTree::Loop {
            body: Box::new(ProcessTree::Activity("r".into())),
            repeat: 0.9,
        };
        let cfg = PlayoutConfig {
            num_traces: 500,
            max_loop_rounds: 3,
            ..PlayoutConfig::default()
        };
        let log = playout(&tree, &cfg);
        let max_len = log.traces().iter().map(|t| t.len()).max().unwrap();
        let min_len = log.traces().iter().map(|t| t.len()).min().unwrap();
        assert!(max_len <= 4); // 1 + up to 3 repeats
        assert!(max_len >= 2, "loop with repeat=0.9 never repeated");
        assert_eq!(min_len.max(1), min_len);
    }

    #[test]
    fn playout_is_deterministic() {
        let tree = generate_tree(&TreeConfig::default());
        let cfg = PlayoutConfig::default();
        assert_eq!(playout(&tree, &cfg), playout(&tree, &cfg));
        let other = PlayoutConfig {
            seed: 99,
            ..PlayoutConfig::default()
        };
        assert_ne!(playout(&tree, &cfg), playout(&tree, &other));
    }

    #[test]
    fn every_activity_eventually_appears() {
        let tree = generate_tree(&TreeConfig {
            num_activities: 30,
            seed: 11,
            ..TreeConfig::default()
        });
        let log = playout(
            &tree,
            &PlayoutConfig {
                num_traces: 500,
                ..PlayoutConfig::default()
            },
        );
        // XOR branches make some activities rare, but 500 traces should
        // touch nearly all of them.
        assert!(log.alphabet_size() >= 25, "only {}", log.alphabet_size());
    }
}
