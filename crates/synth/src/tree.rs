//! Block-structured process trees and their random generation.

use ems_rng::StdRng;

/// A block-structured process specification.
///
/// This is the standard process-tree model used by process-mining log
/// generators: the control flow is a tree whose leaves are activities and
/// whose inner nodes are operators.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessTree {
    /// A single activity occurrence.
    Activity(String),
    /// Children execute in order.
    Sequence(Vec<ProcessTree>),
    /// Exactly one child executes; children are weighted.
    Xor(Vec<(ProcessTree, f64)>),
    /// All children execute, interleaved arbitrarily.
    And(Vec<ProcessTree>),
    /// The body executes once, then repeats with probability `repeat`.
    Loop {
        /// The repeated block.
        body: Box<ProcessTree>,
        /// Probability of another round after each completion.
        repeat: f64,
    },
}

impl ProcessTree {
    /// Number of distinct activities (leaves) in the tree.
    pub fn num_activities(&self) -> usize {
        match self {
            ProcessTree::Activity(_) => 1,
            ProcessTree::Sequence(cs) | ProcessTree::And(cs) => {
                cs.iter().map(ProcessTree::num_activities).sum()
            }
            ProcessTree::Xor(cs) => cs.iter().map(|(c, _)| c.num_activities()).sum(),
            ProcessTree::Loop { body, .. } => body.num_activities(),
        }
    }

    /// Collects the activity names in left-to-right order.
    pub fn activities(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            ProcessTree::Activity(a) => out.push(a),
            ProcessTree::Sequence(cs) | ProcessTree::And(cs) => {
                cs.iter().for_each(|c| c.collect(out))
            }
            ProcessTree::Xor(cs) => cs.iter().for_each(|(c, _)| c.collect(out)),
            ProcessTree::Loop { body, .. } => body.collect(out),
        }
    }
}

/// Parameters of random tree generation.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Number of distinct activities the tree must contain.
    pub num_activities: usize,
    /// Probability that an inner block becomes an XOR (vs sequence).
    pub xor_weight: f64,
    /// Probability that an inner block becomes an AND.
    pub and_weight: f64,
    /// Probability that an inner block becomes a loop.
    pub loop_weight: f64,
    /// Largest activity budget a non-sequence block may take: blocks larger
    /// than this are forced to be sequences. Keeps traces long (they visit
    /// most activities) the way real business processes do — a top-level XOR
    /// over half the process would make every trace skip half the events.
    pub max_branch: usize,
    /// RNG seed — generation is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            num_activities: 20,
            xor_weight: 0.25,
            and_weight: 0.15,
            loop_weight: 0.05,
            max_branch: usize::MAX,
            seed: 42,
        }
    }
}

/// Generates a random process tree with exactly `config.num_activities`
/// distinct activities named `a0, a1, ...` in left-to-right order.
pub fn generate_tree(config: &TreeConfig) -> ProcessTree {
    assert!(config.num_activities >= 1, "need at least one activity");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut next_id = 0usize;
    build(config.num_activities, config, &mut rng, &mut next_id, 0)
}

fn build(
    budget: usize,
    config: &TreeConfig,
    rng: &mut StdRng,
    next_id: &mut usize,
    depth: usize,
) -> ProcessTree {
    if budget == 1 {
        let a = ProcessTree::Activity(format!("a{}", *next_id));
        *next_id += 1;
        return a;
    }
    // Choose the operator. Deep blocks and tiny budgets fall back to
    // sequences so traces stay readable and loops stay rare.
    let roll: f64 = rng.gen();
    let op = if depth >= 4 || budget < 3 || budget > config.max_branch {
        Op::Seq
    } else if roll < config.loop_weight {
        Op::Loop
    } else if roll < config.loop_weight + config.and_weight {
        Op::And
    } else if roll < config.loop_weight + config.and_weight + config.xor_weight {
        Op::Xor
    } else {
        Op::Seq
    };
    match op {
        Op::Loop => ProcessTree::Loop {
            body: Box::new(build(budget, config, rng, next_id, depth + 1)),
            repeat: rng.gen_range(0.1..0.4),
        },
        Op::Seq | Op::Xor | Op::And => {
            // Split the budget into 2..=4 children.
            let parts = rng.gen_range(2..=4usize).min(budget);
            let sizes = split_budget(budget, parts, rng);
            let children: Vec<ProcessTree> = sizes
                .into_iter()
                .map(|s| build(s, config, rng, next_id, depth + 1))
                .collect();
            match op {
                Op::Seq => ProcessTree::Sequence(children),
                Op::And => ProcessTree::And(children),
                Op::Xor => {
                    let weighted = children
                        .into_iter()
                        .map(|c| {
                            let w: f64 = rng.gen_range(0.2..1.0);
                            (c, w)
                        })
                        .collect();
                    ProcessTree::Xor(weighted)
                }
                // ems-lint: allow(panic-surface, Op::Loop is rewritten into tail recursion before this match; reaching it is a generator bug worth aborting on)
                Op::Loop => unreachable!(),
            }
        }
    }
}

/// Returns a copy of `tree` with every XOR weight and loop-repeat
/// probability multiplied by an independent factor drawn uniformly from
/// `[1 - amount, 1 + amount]` — simulating two subsidiaries implementing the
/// same process with different branch preferences, so that the two logs'
/// frequencies differ systematically, not just by sampling noise.
pub fn jitter_weights(tree: &ProcessTree, amount: f64, rng: &mut StdRng) -> ProcessTree {
    assert!(
        (0.0..1.0).contains(&amount),
        "jitter amount must be in [0,1)"
    );
    match tree {
        ProcessTree::Activity(a) => ProcessTree::Activity(a.clone()),
        ProcessTree::Sequence(cs) => {
            ProcessTree::Sequence(cs.iter().map(|c| jitter_weights(c, amount, rng)).collect())
        }
        ProcessTree::And(cs) => {
            ProcessTree::And(cs.iter().map(|c| jitter_weights(c, amount, rng)).collect())
        }
        ProcessTree::Xor(cs) => ProcessTree::Xor(
            cs.iter()
                .map(|(c, w)| {
                    let factor = rng.gen_range(1.0 - amount..=1.0 + amount);
                    (jitter_weights(c, amount, rng), w * factor)
                })
                .collect(),
        ),
        ProcessTree::Loop { body, repeat } => {
            let factor = rng.gen_range(1.0 - amount..=1.0 + amount);
            ProcessTree::Loop {
                body: Box::new(jitter_weights(body, amount, rng)),
                repeat: (repeat * factor).clamp(0.0, 0.95),
            }
        }
    }
}

/// Inserts `k` fresh activities named `{prefix}0..{prefix}k` at random
/// positions of random sequence blocks — events unique to one
/// implementation, like `Order Accepted(1)` existing only in L2 of the
/// paper's Example 1.
pub fn insert_extras(tree: &ProcessTree, k: usize, prefix: &str, rng: &mut StdRng) -> ProcessTree {
    let mut out = tree.clone();
    for i in 0..k {
        let leaf = ProcessTree::Activity(format!("{prefix}{i}"));
        if !try_insert(&mut out, leaf.clone(), rng) {
            // No sequence block anywhere: wrap the root.
            out = ProcessTree::Sequence(vec![leaf, out]);
        }
    }
    out
}

fn try_insert(tree: &mut ProcessTree, leaf: ProcessTree, rng: &mut StdRng) -> bool {
    match tree {
        ProcessTree::Sequence(cs) => {
            // Descend with probability 1/2 if a child is an inner node,
            // otherwise insert here.
            let inner: Vec<usize> = cs
                .iter()
                .enumerate()
                .filter(|(_, c)| !matches!(c, ProcessTree::Activity(_)))
                .map(|(i, _)| i)
                .collect();
            if !inner.is_empty() && rng.gen::<f64>() < 0.5 {
                let pick = inner[rng.gen_range(0..inner.len())];
                if try_insert(&mut cs[pick], leaf.clone(), rng) {
                    return true;
                }
            }
            let pos = rng.gen_range(0..=cs.len());
            cs.insert(pos, leaf);
            true
        }
        ProcessTree::And(cs) => {
            for i in 0..cs.len() {
                let pick = rng.gen_range(0..cs.len());
                let _ = i;
                if try_insert(&mut cs[pick], leaf.clone(), rng) {
                    return true;
                }
            }
            false
        }
        ProcessTree::Xor(cs) => {
            // Inserting under XOR would make the extra event rare; try the
            // heaviest branch only.
            if let Some((c, _)) = cs.iter_mut().max_by(|a, b| a.1.total_cmp(&b.1)) {
                try_insert(c, leaf, rng)
            } else {
                false
            }
        }
        ProcessTree::Loop { body, .. } => try_insert(body, leaf, rng),
        ProcessTree::Activity(_) => false,
    }
}

/// With probability `prob` per sequence block, swaps one random adjacent
/// child pair — two implementations often order the same steps differently.
pub fn reorder_blocks(tree: &ProcessTree, prob: f64, rng: &mut StdRng) -> ProcessTree {
    match tree {
        ProcessTree::Activity(a) => ProcessTree::Activity(a.clone()),
        ProcessTree::Sequence(cs) => {
            let mut cs: Vec<ProcessTree> =
                cs.iter().map(|c| reorder_blocks(c, prob, rng)).collect();
            if cs.len() >= 2 && rng.gen::<f64>() < prob {
                let i = rng.gen_range(0..cs.len() - 1);
                cs.swap(i, i + 1);
            }
            ProcessTree::Sequence(cs)
        }
        ProcessTree::And(cs) => {
            ProcessTree::And(cs.iter().map(|c| reorder_blocks(c, prob, rng)).collect())
        }
        ProcessTree::Xor(cs) => ProcessTree::Xor(
            cs.iter()
                .map(|(c, w)| (reorder_blocks(c, prob, rng), *w))
                .collect(),
        ),
        ProcessTree::Loop { body, repeat } => ProcessTree::Loop {
            body: Box::new(reorder_blocks(body, prob, rng)),
            repeat: *repeat,
        },
    }
}

enum Op {
    Seq,
    Xor,
    And,
    Loop,
}

fn split_budget(budget: usize, parts: usize, rng: &mut StdRng) -> Vec<usize> {
    debug_assert!(parts >= 1 && parts <= budget);
    // Random composition of `budget` into `parts` positive integers.
    let mut cuts: Vec<usize> = (1..budget).collect();
    // Partial Fisher-Yates to pick parts-1 distinct cut points.
    for i in 0..parts - 1 {
        let j = rng.gen_range(i..cuts.len());
        cuts.swap(i, j);
    }
    let mut chosen: Vec<usize> = cuts[..parts - 1].to_vec();
    chosen.sort_unstable();
    let mut sizes = Vec::with_capacity(parts);
    let mut prev = 0;
    for &c in &chosen {
        sizes.push(c - prev);
        prev = c;
    }
    sizes.push(budget - prev);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_tree_has_exact_activity_count() {
        for n in [1, 2, 5, 10, 50, 100] {
            let tree = generate_tree(&TreeConfig {
                num_activities: n,
                ..TreeConfig::default()
            });
            assert_eq!(tree.num_activities(), n, "n = {n}");
        }
    }

    #[test]
    fn activities_are_uniquely_named_in_order() {
        let tree = generate_tree(&TreeConfig {
            num_activities: 30,
            ..TreeConfig::default()
        });
        let acts = tree.activities();
        let expected: Vec<String> = (0..30).map(|i| format!("a{i}")).collect();
        assert_eq!(
            acts,
            expected.iter().map(String::as_str).collect::<Vec<_>>()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TreeConfig {
            num_activities: 25,
            seed: 7,
            ..TreeConfig::default()
        };
        assert_eq!(generate_tree(&cfg), generate_tree(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_tree(&TreeConfig {
            num_activities: 25,
            seed: 1,
            ..TreeConfig::default()
        });
        let b = generate_tree(&TreeConfig {
            num_activities: 25,
            seed: 2,
            ..TreeConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn split_budget_sums_and_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let budget = rng.gen_range(2..50usize);
            let parts = rng.gen_range(1..=budget.min(4));
            let sizes = split_budget(budget, parts, &mut rng);
            assert_eq!(sizes.iter().sum::<usize>(), budget);
            assert!(sizes.iter().all(|&s| s >= 1));
            assert_eq!(sizes.len(), parts);
        }
    }

    #[test]
    fn jitter_changes_weights_not_structure() {
        let tree = generate_tree(&TreeConfig {
            num_activities: 30,
            seed: 5,
            ..TreeConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(9);
        let jittered = jitter_weights(&tree, 0.5, &mut rng);
        assert_eq!(jittered.activities(), tree.activities());
        assert_eq!(jittered.num_activities(), tree.num_activities());
        // With XOR nodes present, at least one weight must have moved.
        fn weights(t: &ProcessTree, out: &mut Vec<f64>) {
            match t {
                ProcessTree::Activity(_) => {}
                ProcessTree::Sequence(cs) | ProcessTree::And(cs) => {
                    cs.iter().for_each(|c| weights(c, out))
                }
                ProcessTree::Xor(cs) => cs.iter().for_each(|(c, w)| {
                    out.push(*w);
                    weights(c, out);
                }),
                ProcessTree::Loop { body, repeat } => {
                    out.push(*repeat);
                    weights(body, out);
                }
            }
        }
        let mut w1 = Vec::new();
        let mut w2 = Vec::new();
        weights(&tree, &mut w1);
        weights(&jittered, &mut w2);
        if !w1.is_empty() {
            assert!(w1.iter().zip(&w2).any(|(a, b)| (a - b).abs() > 1e-9));
        }
    }

    #[test]
    fn jitter_zero_is_identity_on_structure_and_near_identity_on_weights() {
        let tree = generate_tree(&TreeConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let j = jitter_weights(&tree, 0.0, &mut rng);
        assert_eq!(j, tree);
    }

    #[test]
    fn insert_extras_adds_unique_activities() {
        let tree = generate_tree(&TreeConfig {
            num_activities: 10,
            seed: 3,
            ..TreeConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let extended = insert_extras(&tree, 3, "x", &mut rng);
        assert_eq!(extended.num_activities(), 13);
        let acts = extended.activities();
        for i in 0..3 {
            assert!(acts.contains(&format!("x{i}").as_str()));
        }
    }

    #[test]
    fn reorder_keeps_activity_set() {
        let tree = generate_tree(&TreeConfig {
            num_activities: 25,
            seed: 6,
            ..TreeConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(8);
        let shuffled = reorder_blocks(&tree, 1.0, &mut rng);
        let mut a1: Vec<_> = tree.activities();
        let mut a2: Vec<_> = shuffled.activities();
        a1.sort_unstable();
        a2.sort_unstable();
        assert_eq!(a1, a2);
        assert_ne!(shuffled, tree); // prob 1.0 must move something
    }

    #[test]
    #[should_panic(expected = "at least one activity")]
    fn zero_activities_rejected() {
        let _ = generate_tree(&TreeConfig {
            num_activities: 0,
            ..TreeConfig::default()
        });
    }
}
