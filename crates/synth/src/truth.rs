//! Ground-truth correspondence sets.

use std::collections::BTreeSet;

/// The exact correspondence between the events of a generated log pair:
/// a set of `(name in log 1, name in log 2)` pairs.
///
/// m:n correspondences appear as multiple pairs sharing a side — e.g. a
/// composite `c+d ↔ 4` contributes `("c", "4")` and `("d", "4")`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    pairs: BTreeSet<(String, String)>,
}

impl GroundTruth {
    /// An empty truth set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a correspondence.
    pub fn add(&mut self, left: impl Into<String>, right: impl Into<String>) {
        self.pairs.insert((left.into(), right.into()));
    }

    /// Removes every correspondence touching `left` on the log-1 side.
    pub fn remove_left(&mut self, left: &str) {
        self.pairs.retain(|(l, _)| l != left);
    }

    /// Removes every correspondence touching `right` on the log-2 side.
    pub fn remove_right(&mut self, right: &str) {
        self.pairs.retain(|(_, r)| r != right);
    }

    /// Whether `(left, right)` is a true correspondence.
    pub fn contains(&self, left: &str, right: &str) -> bool {
        // BTreeSet<(String, String)> lookup without allocating.
        self.pairs.iter().any(|(l, r)| l == left && r == right)
    }

    /// Number of true pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the truth set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates the true pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(l, r)| (l.as_str(), r.as_str()))
    }
}

impl FromIterator<(String, String)> for GroundTruth {
    fn from_iter<T: IntoIterator<Item = (String, String)>>(iter: T) -> Self {
        GroundTruth {
            pairs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_contains_len() {
        let mut t = GroundTruth::new();
        assert!(t.is_empty());
        t.add("a", "1");
        t.add("a", "1"); // duplicate
        t.add("b", "2");
        assert_eq!(t.len(), 2);
        assert!(t.contains("a", "1"));
        assert!(!t.contains("a", "2"));
    }

    #[test]
    fn m_to_n_pairs_coexist() {
        let mut t = GroundTruth::new();
        t.add("c", "4");
        t.add("d", "4");
        assert_eq!(t.len(), 2);
        assert!(t.contains("c", "4"));
        assert!(t.contains("d", "4"));
    }

    #[test]
    fn removals() {
        let mut t = GroundTruth::new();
        t.add("a", "1");
        t.add("a", "2");
        t.add("b", "2");
        t.remove_left("a");
        assert_eq!(t.len(), 1);
        t.remove_right("2");
        assert!(t.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let t: GroundTruth = [
            ("b".to_owned(), "2".to_owned()),
            ("a".to_owned(), "1".to_owned()),
        ]
        .into_iter()
        .collect();
        let v: Vec<_> = t.iter().collect();
        assert_eq!(v, vec![("a", "1"), ("b", "2")]);
    }
}
