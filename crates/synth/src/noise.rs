//! Log-quality noise models: real exporters drop, duplicate and garble
//! entries. These transforms inject such defects deterministically so
//! robustness can be measured (they are also the knobs behind the
//! `swap_noise` already built into [`PairConfig`](crate::PairConfig)).

use ems_events::{EventId, EventLog};
use ems_rng::StdRng;

/// Noise configuration: each probability applies independently per event
/// occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Probability that an event occurrence is silently dropped (lost log
    /// entry).
    pub drop_prob: f64,
    /// Probability that an event occurrence is written twice (retry /
    /// at-least-once delivery).
    pub duplicate_prob: f64,
    /// Probability that two adjacent occurrences are swapped (clock skew
    /// between writers).
    pub swap_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            swap_prob: 0.0,
            seed: 0,
        }
    }
}

impl NoiseConfig {
    /// Validates probability ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("swap_prob", self.swap_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0,1], got {p}"));
            }
        }
        Ok(())
    }
}

/// Applies `config` to `log`, returning the noisy copy. Trace count is
/// preserved; traces may shrink (drops) or grow (duplicates).
///
/// # Panics
/// If the configuration is invalid.
pub fn apply_noise(log: &EventLog, config: &NoiseConfig) -> EventLog {
    config
        .validate()
        // ems-lint: allow(panic-surface, documented '# Panics' contract for invalid generator configs; validate() is the fallible path)
        .unwrap_or_else(|m| panic!("invalid noise config: {m}"));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = EventLog::new();
    if let Some(n) = log.name() {
        out.set_name(n);
    }
    for trace in log.traces() {
        let mut events: Vec<EventId> = Vec::with_capacity(trace.len());
        for &e in trace.events() {
            if config.drop_prob > 0.0 && rng.gen::<f64>() < config.drop_prob {
                continue;
            }
            events.push(e);
            if config.duplicate_prob > 0.0 && rng.gen::<f64>() < config.duplicate_prob {
                events.push(e);
            }
        }
        if config.swap_prob > 0.0 {
            let mut i = 0;
            while i + 1 < events.len() {
                if rng.gen::<f64>() < config.swap_prob {
                    events.swap(i, i + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
        out.push_trace(events.iter().map(|&e| log.name_of(e)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> EventLog {
        let mut log = EventLog::with_name("clean");
        for _ in 0..50 {
            log.push_trace(["a", "b", "c", "d"]);
        }
        log
    }

    #[test]
    fn zero_noise_is_identity_modulo_interning() {
        let l = log();
        let noisy = apply_noise(&l, &NoiseConfig::default());
        assert_eq!(noisy.num_traces(), l.num_traces());
        assert_eq!(noisy.num_events(), l.num_events());
        assert_eq!(noisy.name(), Some("clean"));
    }

    #[test]
    fn drops_shrink_and_duplicates_grow() {
        let l = log();
        let dropped = apply_noise(
            &l,
            &NoiseConfig {
                drop_prob: 0.3,
                seed: 1,
                ..NoiseConfig::default()
            },
        );
        assert!(dropped.num_events() < l.num_events());
        let duplicated = apply_noise(
            &l,
            &NoiseConfig {
                duplicate_prob: 0.3,
                seed: 1,
                ..NoiseConfig::default()
            },
        );
        assert!(duplicated.num_events() > l.num_events());
        // Expected counts are roughly proportional.
        let drop_rate = 1.0 - dropped.num_events() as f64 / l.num_events() as f64;
        assert!((drop_rate - 0.3).abs() < 0.1, "drop rate {drop_rate}");
    }

    #[test]
    fn swaps_preserve_multiset() {
        let l = log();
        let swapped = apply_noise(
            &l,
            &NoiseConfig {
                swap_prob: 0.5,
                seed: 2,
                ..NoiseConfig::default()
            },
        );
        assert_eq!(swapped.num_events(), l.num_events());
        // Same per-trace multiset of names.
        for (o, s) in l.traces().iter().zip(swapped.traces()) {
            let mut a: Vec<&str> = o.events().iter().map(|&e| l.name_of(e)).collect();
            let mut b: Vec<&str> = s.events().iter().map(|&e| swapped.name_of(e)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        // And at least one order changed.
        assert_ne!(
            l.traces()
                .iter()
                .map(|t| t.events().to_vec())
                .collect::<Vec<_>>(),
            swapped
                .traces()
                .iter()
                .map(|t| t.events().to_vec())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn noise_is_deterministic() {
        let l = log();
        let cfg = NoiseConfig {
            drop_prob: 0.1,
            duplicate_prob: 0.1,
            swap_prob: 0.1,
            seed: 9,
        };
        assert_eq!(apply_noise(&l, &cfg), apply_noise(&l, &cfg));
    }

    #[test]
    #[should_panic(expected = "invalid noise config")]
    fn invalid_probability_panics() {
        let _ = apply_noise(
            &log(),
            &NoiseConfig {
                drop_prob: 1.5,
                ..NoiseConfig::default()
            },
        );
    }
}
