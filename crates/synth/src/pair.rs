//! Log-pair generation with controlled heterogeneity and exact ground truth.

use crate::playout::{playout, PlayoutConfig};
use crate::tree::{generate_tree, insert_extras, jitter_weights, reorder_blocks, TreeConfig};
use crate::truth::GroundTruth;
use ems_events::{cut_prefix, cut_suffix, merge_composite, rename_events, EventId, EventLog};
use ems_rng::StdRng;
use std::collections::{BTreeMap, HashMap};

/// Where dislocation is injected — which part of log 2's traces is removed,
/// mirroring the paper's DS-F / DS-B / DS-FB testbeds and the Figure 9
/// protocol ("synthetically remove the first m events of each trace in one
/// event log").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dislocation {
    /// No dislocation: the two logs cover the same span.
    None,
    /// Remove the first `m` events of every trace of log 2 (DS-B: the
    /// dislocated correspondence sits at the *beginning* of traces).
    Front(usize),
    /// Remove the last `m` events of every trace of log 2 (DS-F).
    Back(usize),
    /// Remove `m` events at each end (DS-FB).
    Both(usize),
}

/// Configuration of a generated log pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairConfig {
    /// The shared process specification.
    pub tree: TreeConfig,
    /// Traces simulated per log.
    pub traces_per_log: usize,
    /// Seed for playout and injection randomness (independent of the tree
    /// seed).
    pub seed: u64,
    /// Dislocation injected into log 2.
    pub dislocation: Dislocation,
    /// Fraction of log 2's events renamed to opaque tokens (`evt_k` with a
    /// shuffled numbering): `1.0` destroys all typographic signal (Figure 3),
    /// `0.0` keeps every name (typographic similarity fully informative).
    pub opaque_fraction: f64,
    /// Number of always-consecutive runs merged into single composite events
    /// in log 2 (the matcher must then merge their counterparts in log 1).
    pub num_composites: usize,
    /// Length of each injected composite run (2 = pairs, 3 = triples...).
    /// Longer runs create a larger structural mismatch for the matcher to
    /// repair. Values below 2 are treated as 2.
    pub composite_len: usize,
    /// XOR-weight jitter applied to log 2's copy of the specification: each
    /// branch weight is scaled by a factor in `[1-j, 1+j]`, simulating two
    /// subsidiaries with different branch preferences (systematically
    /// different frequencies, not just sampling noise).
    pub xor_jitter: f64,
    /// Probability that each adjacent event pair in a log-2 trace is swapped
    /// — recording/order noise between heterogeneous systems.
    pub swap_noise: f64,
    /// Number of implementation-specific activities inserted into *each*
    /// log's copy of the specification (named `u1_k` / `u2_k`): events with
    /// no counterpart in the other log, like `Order Accepted(1)` existing
    /// only in L2 of the paper's Example 1.
    pub extra_events: usize,
    /// Probability per sequence block that log 2's implementation orders two
    /// adjacent steps differently.
    pub reorder_prob: f64,
}

impl Default for PairConfig {
    fn default() -> Self {
        PairConfig {
            tree: TreeConfig::default(),
            traces_per_log: 100,
            seed: 7,
            dislocation: Dislocation::None,
            opaque_fraction: 1.0,
            num_composites: 0,
            composite_len: 2,
            xor_jitter: 0.0,
            swap_noise: 0.0,
            extra_events: 0,
            reorder_prob: 0.0,
        }
    }
}

/// A generated pair of heterogeneous logs with its exact correspondence set.
#[derive(Debug, Clone)]
pub struct LogPair {
    /// The "clean" log.
    pub log1: EventLog,
    /// The heterogeneous log: possibly dislocated, opaque, with composites.
    pub log2: EventLog,
    /// The true correspondences `(name in log1, name in log2)`.
    pub truth: GroundTruth,
}

/// Deterministic generator of [`LogPair`]s.
#[derive(Debug, Clone)]
pub struct PairGenerator {
    config: PairConfig,
}

impl PairGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: PairConfig) -> Self {
        PairGenerator { config }
    }

    /// Generates the pair.
    pub fn generate(&self) -> LogPair {
        let cfg = &self.config;
        let tree = generate_tree(&cfg.tree);
        // Each side is its own implementation: private extra activities,
        // and log 2 additionally reorders steps and re-weights branches.
        let mut mrng = StdRng::seed_from_u64(cfg.seed ^ 0x4A17E6);
        let tree1 = if cfg.extra_events > 0 {
            insert_extras(&tree, cfg.extra_events, "u1_", &mut mrng)
        } else {
            tree.clone()
        };
        let log1 = playout(
            &tree1,
            &PlayoutConfig {
                num_traces: cfg.traces_per_log,
                seed: cfg.seed.wrapping_mul(2).wrapping_add(1),
                ..PlayoutConfig::default()
            },
        );
        let mut tree2 = if cfg.extra_events > 0 {
            insert_extras(&tree, cfg.extra_events, "u2_", &mut mrng)
        } else {
            tree.clone()
        };
        if cfg.reorder_prob > 0.0 {
            tree2 = reorder_blocks(&tree2, cfg.reorder_prob, &mut mrng);
        }
        if cfg.xor_jitter > 0.0 {
            tree2 = jitter_weights(&tree2, cfg.xor_jitter, &mut mrng);
        }
        let tree2 = tree2;
        let mut log2 = playout(
            &tree2,
            &PlayoutConfig {
                num_traces: cfg.traces_per_log,
                seed: cfg.seed.wrapping_mul(2).wrapping_add(2),
                ..PlayoutConfig::default()
            },
        );
        // Identity truth over the shared alphabet.
        let mut truth = GroundTruth::new();
        for i in 0..log2.alphabet_size() {
            let name = log2.name_of(EventId::from_index(i));
            if log1.id_of(name).is_some() {
                truth.add(name, name);
            }
        }

        // Composite injection: merge always-consecutive runs in log 2,
        // extending qualifying pairs into chains of `composite_len`. A later
        // merge may consume an earlier composite; `components` maps every
        // merged name to the original singletons it covers, so the truth
        // keeps one pair per original event.
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0FFEE);
        let want_len = cfg.composite_len.max(2);
        let mut merged = 0usize;
        let mut consumed: Vec<String> = Vec::new();
        let mut components: HashMap<String, Vec<String>> = HashMap::new();
        while merged < cfg.num_composites {
            let pairs = always_consecutive_pairs(&log2);
            // Chain qualifying pairs into runs up to the requested length.
            let mut run: Vec<EventId> = Vec::new();
            'outer: for &(a, b) in &pairs {
                let names = [log2.name_of(a), log2.name_of(b)];
                if names.iter().any(|n| consumed.iter().any(|c| c == n)) {
                    continue;
                }
                run = vec![a, b];
                while run.len() < want_len {
                    let Some(&last) = run.last() else { break };
                    match pairs.iter().find(|&&(x, _)| x == last) {
                        Some(&(_, nxt)) if !run.contains(&nxt) => run.push(nxt),
                        _ => break,
                    }
                }
                break 'outer;
            }
            if run.len() < 2 {
                break; // no more qualifying runs
            }
            let names: Vec<String> = run.iter().map(|&e| log2.name_of(e).to_owned()).collect();
            let merged_name = names.join("+");
            let (next, merged_id) = merge_composite(&log2, &run, &merged_name);
            if merged_id.is_none() {
                break;
            }
            log2 = next.compact().0;
            let originals: Vec<String> = names
                .iter()
                .flat_map(|n| {
                    components
                        .get(n)
                        .cloned()
                        .unwrap_or_else(|| vec![n.clone()])
                })
                .collect();
            for n in &names {
                truth.remove_right(n);
                consumed.push(n.clone());
            }
            for o in &originals {
                if log1.id_of(o).is_some() {
                    truth.add(o, &merged_name);
                }
            }
            components.insert(merged_name, originals);
            merged += 1;
        }

        // Order noise: swap adjacent events with probability `swap_noise`.
        if cfg.swap_noise > 0.0 {
            let mut srng = StdRng::seed_from_u64(cfg.seed ^ 0x5A5A5A);
            let mut noisy = EventLog::new();
            for trace in log2.traces() {
                let mut evs: Vec<EventId> = trace.events().to_vec();
                let mut i = 0;
                while i + 1 < evs.len() {
                    if srng.gen::<f64>() < cfg.swap_noise {
                        evs.swap(i, i + 1);
                        i += 2; // a swapped pair is not re-swapped
                    } else {
                        i += 1;
                    }
                }
                noisy.push_trace(evs.iter().map(|&e| log2.name_of(e)));
            }
            log2 = noisy;
        }

        // Dislocation injection.
        let before: Vec<String> = alphabet(&log2);
        log2 = match cfg.dislocation {
            Dislocation::None => log2,
            Dislocation::Front(m) => cut_prefix(&log2, m).0,
            Dislocation::Back(m) => cut_suffix(&log2, m).0,
            Dislocation::Both(m) => {
                let (cut, _) = cut_prefix(&log2, m);
                cut_suffix(&cut, m).0
            }
        };
        for name in &before {
            if log2.id_of(name).is_none() {
                truth.remove_right(name);
            }
        }

        // Opaque renaming of a fraction of log 2's alphabet. Names become
        // random tokens (like text through a wrong encoding): crucially they
        // share no systematic q-gram overlap with each other, unlike a
        // numbered scheme such as `evt_17`, which would leak spurious label
        // similarity between unrelated opaque events.
        if cfg.opaque_fraction > 0.0 && log2.alphabet_size() > 0 {
            let n = log2.alphabet_size();
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let renamed_count = ((n as f64) * cfg.opaque_fraction).round() as usize;
            let mut names: Vec<String> = alphabet(&log2);
            let mut mapping: HashMap<String, String> = HashMap::new();
            for (rank, &idx) in order.iter().enumerate() {
                if rank < renamed_count {
                    let new_name = opaque_token(&mut rng, rank);
                    mapping.insert(names[idx].clone(), new_name.clone());
                    names[idx] = new_name;
                }
            }
            log2 = rename_events(&log2, &names);
            if !mapping.is_empty() {
                truth = truth
                    .iter()
                    .map(|(l, r)| {
                        let r = mapping.get(r).map(String::as_str).unwrap_or(r);
                        (l.to_owned(), r.to_owned())
                    })
                    .collect();
            }
        }

        LogPair { log1, log2, truth }
    }
}

/// A random opaque token: 5-9 letters with no systematic structure, plus a
/// rank-derived suffix guaranteeing uniqueness.
fn opaque_token(rng: &mut StdRng, rank: usize) -> String {
    let len = rng.gen_range(5..=9);
    let mut s: String = (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect();
    // Uniqueness guard: random letters could collide.
    s.push_str(&format!("{rank:02}"));
    s
}

fn alphabet(log: &EventLog) -> Vec<String> {
    (0..log.alphabet_size())
        .map(|i| log.name_of(EventId::from_index(i)).to_owned())
        .collect()
}

/// Finds event pairs `(a, b)` such that every occurrence of `a` is
/// immediately followed by `b` and every occurrence of `b` immediately
/// preceded by `a` — safe to merge into a composite without changing any
/// other dependency. Sorted by support (most frequent first).
fn always_consecutive_pairs(log: &EventLog) -> Vec<(EventId, EventId)> {
    let n = log.alphabet_size();
    let mut occ = vec![0u32; n];
    let mut follows: BTreeMap<(usize, usize), u32> = BTreeMap::new();
    for trace in log.traces() {
        for &e in trace.events() {
            occ[e.index()] += 1;
        }
        for (a, b) in trace.consecutive_pairs() {
            *follows.entry((a.index(), b.index())).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(u32, EventId, EventId)> = follows
        .iter()
        .filter(|&(&(a, b), &cnt)| a != b && cnt == occ[a] && cnt == occ[b])
        .map(|(&(a, b), &cnt)| (cnt, EventId::from_index(a), EventId::from_index(b)))
        .collect();
    out.sort_by(|x, y| y.0.cmp(&x.0).then((x.1, x.2).cmp(&(y.1, y.2))));
    out.into_iter().map(|(_, a, b)| (a, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config() -> PairConfig {
        PairConfig {
            tree: TreeConfig {
                num_activities: 20,
                seed: 5,
                ..TreeConfig::default()
            },
            traces_per_log: 200,
            seed: 9,
            dislocation: Dislocation::None,
            opaque_fraction: 1.0,
            num_composites: 0,
            composite_len: 2,
            xor_jitter: 0.0,
            swap_noise: 0.0,
            extra_events: 0,
            reorder_prob: 0.0,
        }
    }

    #[test]
    fn triple_composites_merge_three_events() {
        let pair = PairGenerator::new(PairConfig {
            num_composites: 1,
            composite_len: 3,
            opaque_fraction: 0.0,
            ..base_config()
        })
        .generate();
        // If a triple run existed, its merged name has two '+'; otherwise a
        // pair was merged (or none was possible).
        let merged: Vec<_> = pair
            .truth
            .iter()
            .filter(|(_, r)| r.contains('+'))
            .map(|(_, r)| r.to_owned())
            .collect();
        if let Some(name) = merged.first() {
            let parts = name.split('+').count();
            assert!(parts == 2 || parts == 3);
            // All parts appear as truth lefts.
            assert!(merged.len() >= parts.min(2));
        }
    }

    #[test]
    fn extras_have_no_truth_pairs() {
        let pair = PairGenerator::new(PairConfig {
            extra_events: 2,
            opaque_fraction: 0.0,
            ..base_config()
        })
        .generate();
        assert!(pair.log1.id_of("u1_0").is_some());
        assert!(pair.log2.id_of("u2_0").is_some());
        for (l, r) in pair.truth.iter() {
            assert!(!l.starts_with("u1_"), "extra leaked into truth: {l}");
            assert!(!r.starts_with("u2_"), "extra leaked into truth: {r}");
        }
    }

    #[test]
    fn reorder_changes_log2_structure() {
        // Keep names readable: under full opacity an adjacent-activity swap
        // can be invisible (ids are assigned by first appearance, so the
        // renamed logs come out structurally identical).
        let readable = PairConfig {
            opaque_fraction: 0.0,
            ..base_config()
        };
        let clean = PairGenerator::new(readable.clone()).generate();
        let reordered = PairGenerator::new(PairConfig {
            reorder_prob: 1.0,
            ..readable
        })
        .generate();
        assert_eq!(clean.log1, reordered.log1);
        assert_ne!(clean.log2, reordered.log2);
    }

    #[test]
    fn jitter_and_noise_change_log2_only() {
        let clean = PairGenerator::new(base_config()).generate();
        let noisy = PairGenerator::new(PairConfig {
            xor_jitter: 0.5,
            swap_noise: 0.1,
            ..base_config()
        })
        .generate();
        assert_eq!(clean.log1, noisy.log1);
        assert_ne!(clean.log2, noisy.log2);
        // Truth still resolves.
        for (l, r) in noisy.truth.iter() {
            assert!(noisy.log1.id_of(l).is_some());
            assert!(noisy.log2.id_of(r).is_some());
        }
    }

    #[test]
    fn clean_pair_has_identity_truth_modulo_rare_events() {
        let pair = PairGenerator::new(base_config()).generate();
        assert!(pair.truth.len() >= 15);
        // Opaque renaming: none of log 2's original (a<k>) names survive.
        for i in 0..pair.log2.alphabet_size() {
            let name = pair.log2.name_of(EventId::from_index(i));
            let looks_original =
                name.starts_with('a') && name[1..].chars().all(|c| c.is_ascii_digit());
            assert!(!looks_original, "original name survived: {name}");
        }
        // Truth pairs resolve in both logs.
        for (l, r) in pair.truth.iter() {
            assert!(pair.log1.id_of(l).is_some());
            assert!(pair.log2.id_of(r).is_some());
        }
    }

    #[test]
    fn zero_opaque_fraction_keeps_names() {
        let pair = PairGenerator::new(PairConfig {
            opaque_fraction: 0.0,
            ..base_config()
        })
        .generate();
        for (l, r) in pair.truth.iter() {
            assert_eq!(l, r);
        }
    }

    #[test]
    fn partial_opaque_fraction_renames_some() {
        let pair = PairGenerator::new(PairConfig {
            opaque_fraction: 0.5,
            ..base_config()
        })
        .generate();
        let opaque = (0..pair.log2.alphabet_size())
            .filter(|&i| {
                let name = pair.log2.name_of(EventId::from_index(i));
                pair.log1.id_of(name).is_none() && !name.contains('+')
            })
            .count();
        let n = pair.log2.alphabet_size();
        assert!(opaque > 0 && opaque < n, "opaque {opaque} of {n}");
    }

    #[test]
    fn front_dislocation_shortens_traces_and_prunes_truth() {
        let base = PairGenerator::new(base_config()).generate();
        let cut = PairGenerator::new(PairConfig {
            dislocation: Dislocation::Front(3),
            ..base_config()
        })
        .generate();
        let mean = |l: &EventLog| {
            l.traces().iter().map(|t| t.len()).sum::<usize>() as f64 / l.num_traces() as f64
        };
        assert!(mean(&cut.log2) < mean(&base.log2));
        assert!(cut.truth.len() <= base.truth.len());
        assert!(!cut.truth.is_empty());
    }

    #[test]
    fn both_dislocation_cuts_both_ends() {
        let front = PairGenerator::new(PairConfig {
            dislocation: Dislocation::Front(2),
            ..base_config()
        })
        .generate();
        let both = PairGenerator::new(PairConfig {
            dislocation: Dislocation::Both(2),
            ..base_config()
        })
        .generate();
        let mean = |l: &EventLog| {
            l.traces().iter().map(|t| t.len()).sum::<usize>() as f64 / l.num_traces() as f64
        };
        assert!(mean(&both.log2) < mean(&front.log2));
    }

    #[test]
    fn composites_create_m_to_n_truth() {
        let pair = PairGenerator::new(PairConfig {
            num_composites: 2,
            opaque_fraction: 0.0,
            ..base_config()
        })
        .generate();
        // Some truth pair must map two log-1 names to the same log-2 name.
        let merged: Vec<_> = pair.truth.iter().filter(|(_, r)| r.contains('+')).collect();
        assert!(
            merged.len() >= 2,
            "expected m:n pairs, truth: {:?}",
            pair.truth.iter().collect::<Vec<_>>()
        );
        // The merged event exists in log 2, its parts exist in log 1.
        for (l, r) in merged {
            assert!(pair.log2.id_of(r).is_some());
            assert!(pair.log1.id_of(l).is_some());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PairGenerator::new(base_config()).generate();
        let b = PairGenerator::new(base_config()).generate();
        assert_eq!(a.log1, b.log1);
        assert_eq!(a.log2, b.log2);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn always_consecutive_finder_is_strict() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c"]);
        log.push_trace(["a", "b", "d"]);
        let pairs = always_consecutive_pairs(&log);
        let names: Vec<_> = pairs
            .iter()
            .map(|&(a, b)| (log.name_of(a), log.name_of(b)))
            .collect();
        assert!(names.contains(&("a", "b")));
        assert!(!names.contains(&("b", "c"))); // b not always followed by c
    }
}
