//! Graphviz DOT export of dependency graphs for inspection and debugging.

use crate::graph::DependencyGraph;
use std::fmt::Write as _;

/// Renders `g` as a Graphviz `digraph`. Artificial nodes and edges are drawn
/// dashed, like Figure 2 of the paper.
pub fn to_dot(g: &DependencyGraph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "  rankdir=LR;");
    for v in g.real_nodes() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\nf={:.2}\"];",
            v.index(),
            escape(g.name(v)),
            g.node_frequency(v)
        );
    }
    let x = g.artificial();
    let _ = writeln!(
        out,
        "  n{} [label=\"v^X\", style=dashed, shape=doublecircle];",
        x.index()
    );
    for v in g.real_nodes() {
        for &(t, f) in g.post(v) {
            let style = if g.is_artificial(t) {
                ", style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{:.2}\"{}];",
                v.index(),
                t.index(),
                f,
                style
            );
        }
    }
    for &(t, f) in g.post(x) {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{:.2}\", style=dashed];",
            x.index(),
            t.index(),
            f
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b"]);
        let g = DependencyGraph::from_log(&log);
        let dot = to_dot(&g, "demo");
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("label=\"a"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn names_are_escaped() {
        let mut log = EventLog::new();
        log.push_trace(["say \"hi\""]);
        let g = DependencyGraph::from_log(&log);
        let dot = to_dot(&g, "t\"t");
        assert!(dot.contains("say \\\"hi\\\""));
        assert!(dot.contains("digraph \"t\\\"t\""));
    }
}
