//! Longest distances `l(v)` from the artificial event — the basis of the
//! early-convergence pruning of Proposition 2.
//!
//! `l(v)` is the length of the longest path from `v^X` to `v`; it is `∞` when
//! a cycle lies on some path from `v^X` to `v` (then paths of unbounded
//! length exist). The computation deliberately ignores the artificial
//! *in*-edges `(v, v^X)`: similarities involving `v^X` are never updated
//! during iteration, so change cannot propagate back out through `v^X`, and
//! including those edges would wrongly make every node cyclic.

use crate::graph::{DependencyGraph, NodeId};

/// A possibly-infinite longest distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Distance {
    /// A finite longest distance.
    Finite(u32),
    /// Unbounded: the node is on or downstream of a cycle reachable from
    /// `v^X`.
    Infinite,
}

impl Distance {
    /// The distance as `Option<u32>` (`None` for infinity).
    pub fn finite(self) -> Option<u32> {
        match self {
            Distance::Finite(d) => Some(d),
            Distance::Infinite => None,
        }
    }

    /// Whether the pair bound `min(l(v1), l(v2))` allows convergence by
    /// iteration `i` (Proposition 2): the pair is frozen once `i >= min(..)`.
    pub fn min(a: Distance, b: Distance) -> Distance {
        std::cmp::min(a, b)
    }
}

impl std::fmt::Display for Distance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Distance::Finite(d) => write!(f, "{d}"),
            Distance::Infinite => write!(f, "∞"),
        }
    }
}

/// Computes `l(v)` for every node of `g` (indexed by node id; the artificial
/// node's own entry is `Finite(0)`).
///
/// Algorithm: Tarjan SCC condensation of the subgraph that excludes edges
/// into `v^X`, then a longest-path DP over the (acyclic) condensation. Nodes
/// in a nontrivial SCC — or reachable from one — get [`Distance::Infinite`].
/// Unreachable nodes (frequency 0, no artificial edges) also get `Infinite`
/// so they are never considered converged prematurely.
pub fn longest_distances(g: &DependencyGraph) -> Vec<Distance> {
    longest_distances_dir(g, false)
}

/// The mirror of [`longest_distances`] on the reversed graph: longest
/// distance from `v^X` following edges backwards.
///
/// This is the convergence bound for the *backward* similarity of
/// Section 3.6, which propagates over post-sets: a pair is frozen once the
/// iteration index reaches `min(l_b(v1), l_b(v2))`.
pub fn longest_distances_backward(g: &DependencyGraph) -> Vec<Distance> {
    longest_distances_dir(g, true)
}

fn longest_distances_dir(g: &DependencyGraph, backward: bool) -> Vec<Distance> {
    let n = g.num_nodes();
    let x = g.artificial();
    // Adjacency in walking direction, excluding edges back into the
    // artificial node (they cannot carry change: pairs with v^X are pinned).
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            let neighbors = if backward {
                g.pre(NodeId::from_index(v))
            } else {
                g.post(NodeId::from_index(v))
            };
            neighbors
                .iter()
                .filter(|&&(t, _)| t != x)
                .map(|&(t, _)| t.index())
                .collect()
        })
        .collect();

    // Phase 1: reachability from v^X.
    let mut reachable = vec![false; n];
    let mut queue = vec![x.index()];
    reachable[x.index()] = true;
    while let Some(v) = queue.pop() {
        for &t in &adj[v] {
            if !reachable[t] {
                reachable[t] = true;
                queue.push(t);
            }
        }
    }

    // Phase 2: cyclic components via Tarjan SCC, then propagate infinity to
    // everything downstream of a reachable cyclic component.
    let scc = tarjan_scc(&adj);
    let mut comp_size = vec![0usize; scc.count];
    let mut has_self_loop = vec![false; scc.count];
    for v in 0..n {
        comp_size[scc.comp[v]] += 1;
        if adj[v].contains(&v) {
            has_self_loop[scc.comp[v]] = true;
        }
    }
    let mut inf = vec![false; n];
    let mut queue: Vec<usize> = (0..n)
        .filter(|&v| reachable[v] && (comp_size[scc.comp[v]] > 1 || has_self_loop[scc.comp[v]]))
        .collect();
    for &v in &queue {
        inf[v] = true;
    }
    while let Some(v) = queue.pop() {
        for &t in &adj[v] {
            if !inf[t] {
                inf[t] = true;
                queue.push(t);
            }
        }
    }

    // Phase 3: longest path over the remaining (acyclic) reachable nodes.
    // Tarjan emits sink-most components first, so decreasing component id is
    // a topological order of the condensation; acyclic reachable nodes are
    // singleton components, so this orders them topologically too.
    let mut order: Vec<usize> = (0..n).filter(|&v| reachable[v] && !inf[v]).collect();
    order.sort_by(|&a, &b| scc.comp[b].cmp(&scc.comp[a]));
    let mut dist = vec![0u32; n];
    for &v in &order {
        for &t in &adj[v] {
            if reachable[t] && !inf[t] {
                dist[t] = dist[t].max(dist[v] + 1);
            }
        }
    }

    (0..n)
        .map(|v| {
            if !reachable[v] || inf[v] {
                // Cyclic, downstream of a cycle, or unreachable (isolated
                // zero-frequency node): never considered converged.
                Distance::Infinite
            } else {
                Distance::Finite(dist[v])
            }
        })
        .collect()
}

struct SccResult {
    comp: Vec<usize>,
    count: usize,
}

/// Iterative Tarjan strongly-connected components.
fn tarjan_scc(adj: &[Vec<usize>]) -> SccResult {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Explicit DFS stack: (node, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        call.push((start, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    // v is on the stack by the Tarjan invariant, so this
                    // drains at most down to v and never underflows.
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    SccResult { comp, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use ems_events::EventLog;

    fn figure1_l1() -> EventLog {
        let mut log = EventLog::new();
        log.push_trace(["A", "C", "D", "E", "F"]);
        log.push_trace(["A", "C", "D", "F", "E"]);
        log.push_trace(["B", "C", "D", "E", "F"]);
        log.push_trace(["B", "C", "D", "F", "E"]);
        log.push_trace(["B", "C", "D", "E", "F"]);
        log
    }

    #[test]
    fn example5_distances() {
        // Example 5: l(A)=1, C converges after iteration 2, D after 3.
        let g = DependencyGraph::from_log(&figure1_l1());
        let l = longest_distances(&g);
        let at = |n: &str| l[g.node_by_name(n).unwrap().index()];
        assert_eq!(l[g.artificial().index()], Distance::Finite(0));
        assert_eq!(at("A"), Distance::Finite(1));
        assert_eq!(at("B"), Distance::Finite(1));
        assert_eq!(at("C"), Distance::Finite(2));
        assert_eq!(at("D"), Distance::Finite(3));
        // E and F swap order across traces: E->F and F->E both exist,
        // forming a 2-cycle, so both are infinite.
        assert_eq!(at("E"), Distance::Infinite);
        assert_eq!(at("F"), Distance::Infinite);
    }

    #[test]
    fn acyclic_chain_distances() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c"]);
        let g = DependencyGraph::from_log(&log);
        let l = longest_distances(&g);
        let at = |n: &str| l[g.node_by_name(n).unwrap().index()];
        assert_eq!(at("a"), Distance::Finite(1));
        assert_eq!(at("b"), Distance::Finite(2));
        assert_eq!(at("c"), Distance::Finite(3));
    }

    #[test]
    fn longest_not_shortest_path_wins() {
        // b reachable in 1 step (vX->b) but also via a: l(b) = 2.
        let g = DependencyGraph::from_parts(
            vec!["a".into(), "b".into()],
            vec![1.0, 1.0],
            &[(0, 1, 1.0)],
        );
        let l = longest_distances(&g);
        assert_eq!(l[0], Distance::Finite(1));
        assert_eq!(l[1], Distance::Finite(2));
    }

    #[test]
    fn self_loop_is_infinite() {
        let mut log = EventLog::new();
        log.push_trace(["a", "a", "b"]);
        let g = DependencyGraph::from_log(&log);
        let l = longest_distances(&g);
        let at = |n: &str| l[g.node_by_name(n).unwrap().index()];
        assert_eq!(at("a"), Distance::Infinite);
        // b is downstream of the loop.
        assert_eq!(at("b"), Distance::Infinite);
    }

    #[test]
    fn node_upstream_of_cycle_is_finite() {
        let mut log = EventLog::new();
        log.push_trace(["s", "x", "y", "x", "t"]);
        let g = DependencyGraph::from_log(&log);
        let l = longest_distances(&g);
        let at = |n: &str| l[g.node_by_name(n).unwrap().index()];
        assert_eq!(at("s"), Distance::Finite(1));
        assert_eq!(at("x"), Distance::Infinite);
        assert_eq!(at("y"), Distance::Infinite);
        assert_eq!(at("t"), Distance::Infinite); // downstream of x-y cycle
    }

    #[test]
    fn isolated_node_is_infinite() {
        let g = DependencyGraph::from_parts(vec!["ghost".into()], vec![0.0], &[]);
        let l = longest_distances(&g);
        assert_eq!(l[0], Distance::Infinite);
    }

    #[test]
    fn backward_distances_mirror_forward() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c"]);
        let g = DependencyGraph::from_log(&log);
        let l = longest_distances_backward(&g);
        let at = |n: &str| l[g.node_by_name(n).unwrap().index()];
        // Walking backwards from v^X: c is 1 step, a is 3.
        assert_eq!(at("c"), Distance::Finite(1));
        assert_eq!(at("b"), Distance::Finite(2));
        assert_eq!(at("a"), Distance::Finite(3));
    }

    #[test]
    fn distance_ordering_and_min() {
        assert!(Distance::Finite(3) < Distance::Infinite);
        assert!(Distance::Finite(2) < Distance::Finite(5));
        assert_eq!(
            Distance::min(Distance::Infinite, Distance::Finite(4)),
            Distance::Finite(4)
        );
        assert_eq!(Distance::Finite(7).finite(), Some(7));
        assert_eq!(Distance::Infinite.finite(), None);
        assert_eq!(Distance::Infinite.to_string(), "∞");
        assert_eq!(Distance::Finite(2).to_string(), "2");
    }
}
