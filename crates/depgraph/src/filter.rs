//! Minimum-frequency edge filtering (Section 2).
//!
//! Edges with low normalized frequency carry little statistical information;
//! removing them lowers the average degree and accelerates the similarity
//! iteration, trading accuracy for efficiency. Artificial edges are never
//! removed — every real event must stay connected to `v^X` or dislocated
//! matching breaks.

use crate::graph::DependencyGraph;

/// Returns a copy of `g` with every real edge of frequency `< threshold`
/// removed, along with the number of edges removed.
///
/// A `threshold` of `0.0` removes nothing.
pub fn filter_min_frequency(g: &DependencyGraph, threshold: f64) -> (DependencyGraph, usize) {
    let mut out = g.clone();
    let doomed: Vec<_> = g
        .real_edges()
        .into_iter()
        .filter(|&(_, _, f)| f < threshold)
        .collect();
    for &(a, b, _) in &doomed {
        out.remove_edge(a, b);
    }
    (out, doomed.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn graph() -> DependencyGraph {
        let mut log = EventLog::new();
        // ab in all traces, bc in 1 of 4.
        log.push_trace(["a", "b", "c"]);
        log.push_trace(["a", "b"]);
        log.push_trace(["a", "b"]);
        log.push_trace(["a", "b"]);
        DependencyGraph::from_log(&log)
    }

    #[test]
    fn low_frequency_edges_are_dropped() {
        let g = graph();
        let (filtered, removed) = filter_min_frequency(&g, 0.5);
        assert_eq!(removed, 1);
        let b = filtered.node_by_name("b").unwrap();
        let c = filtered.node_by_name("c").unwrap();
        assert_eq!(filtered.edge_frequency(b, c), None);
        let a = filtered.node_by_name("a").unwrap();
        assert!(filtered.edge_frequency(a, b).is_some());
    }

    #[test]
    fn artificial_edges_survive_any_threshold() {
        let g = graph();
        let (filtered, _) = filter_min_frequency(&g, 1.1);
        let x = filtered.artificial();
        let c = filtered.node_by_name("c").unwrap();
        // f(v^X, c) = 0.25 < 1.1 but must survive.
        assert!(filtered.edge_frequency(x, c).is_some());
        assert!(filtered.real_edges().is_empty());
    }

    #[test]
    fn zero_threshold_is_identity() {
        let g = graph();
        let (filtered, removed) = filter_min_frequency(&g, 0.0);
        assert_eq!(removed, 0);
        assert_eq!(filtered, g);
    }

    #[test]
    fn average_degree_decreases() {
        let g = graph();
        let (filtered, _) = filter_min_frequency(&g, 0.5);
        assert!(filtered.avg_degree() < g.avg_degree());
    }
}
