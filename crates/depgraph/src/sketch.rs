//! Graph sketches: constant-size structural summaries with a **sound**
//! upper bound on the pairwise EMS score, built for catalog-scale
//! candidate pruning (one query against K pinned references).
//!
//! A [`GraphSketch`] captures, per dependency graph:
//!
//! * the **frequency class table** — the sorted distinct normalized
//!   frequencies of vertices and edges (trace-count fractions, so a graph
//!   has few distinct values);
//! * the **vertex profile histogram** — each real vertex reduced to its
//!   frequency class plus the class multisets of its real pre/post edge
//!   frequencies, deduplicated with multiplicities (this subsumes the
//!   vertex- and edge-frequency histograms, which are exposed as views);
//! * a **label-fingerprint minhash** over the per-vertex FNV-1a label
//!   hashes — a cheap Jaccard estimate of alphabet overlap used for
//!   deterministic candidate ordering, never for pruning decisions.
//!
//! # The upper bound, and why it is sound
//!
//! Let `F` be the EMS iteration map of formula (1): for a pair `(v1, v2)`
//! and a similarity matrix `S` over real-vertex pairs (with the artificial
//! pair pinned at `S(vˣ, vˣ) = 1` and artificial/real cross pairs at 0),
//!
//! ```text
//! F(S)(v1, v2) = clamp(α·(s12(S) + s21(S))/2 + (1−α)·label(v1, v2), 0, 1)
//! s12(S)(v1, v2) = (1/|pre(v1)|)·Σ_{u1 ∈ pre(v1)} max_{u2 ∈ pre(v2)}
//!                      C(f(u1,v1), f(u2,v2)) · S(u1, u2)
//! C(f_o, f_i) = c·(1 − |f_o − f_i|/(f_o + f_i))
//! ```
//!
//! Every summand is a non-negative multiple of an `S` entry, so `F` is
//! **monotone** on the box `[0,1]^(n1×n2)`, and by Theorem 1 the exact
//! similarity is its unique fixpoint `S* = F(S*)`. The engine iterates
//! from the all-zeros matrix, so every iterate — and every early-retired
//! (Proposition 2) or frozen (Proposition 4) value it may return — is an
//! `F`-image of a matrix inside the box. Monotonicity then gives, for any
//! such matrix `X ≤ 1` entrywise:
//!
//! ```text
//! F(X) ≤ F(1)   entrywise, where 1 is the all-ones matrix.
//! ```
//!
//! `U := F(1)` is computable **without iterating** and without the cross
//! product of vertices: with `S_prev ≡ 1` on real pairs, the inner `max`
//! over `pre(v2)` collapses to the largest compatibility factor between
//! `u1`'s edge class and *any* real edge class of `v2`, the artificial
//! outer lane contributes exactly `C(f(v1), f(v2))` (its only non-zero
//! inner candidate is the pinned artificial pair), and the label term is
//! handled separately below. `U(v1, v2)` therefore depends only on the two
//! vertices' *profiles*, so it is evaluated once per distinct profile pair.
//!
//! The per-pair bound is lifted to the retrieval score by the same
//! monotone functional the catalog uses for exact outcomes — the
//! symmetric best-correspondence average
//!
//! ```text
//! score(S) = (avg_v1 max_v2 S(v1,v2) + avg_v2 max_v1 S(v1,v2)) / 2
//! ```
//!
//! which is monotone in every entry, so `score(S*) ≤ score(U)`. The value
//! returned by [`GraphSketch::score_upper_bound`] is `score(U)`; pruning a
//! reference whose bound is strictly below the current k-th best exact
//! score can therefore never drop a true top-k candidate (recall 1.0 —
//! pinned by the property suite in `ems-catalog`).
//!
//! # Bounding the label term
//!
//! The score lift treats the two terms of `F` separately. With
//! `T(v1, v2)` the structural part under `S_prev ≡ 1`,
//!
//! ```text
//! S*(v1, v2)  ≤ α·T(v1, v2) + (1−α)·label(v1, v2)
//! max_v2 S*   ≤ α·max_v2 T + (1−α)·max_v2 label     (max is subadditive)
//! avg_v1 …    ≤ α·avgmax(T) + (1−α)·avg_v1 max_v2 label
//! ```
//!
//! Under an *arbitrary* label measure the best available cap on the last
//! average is `1` ([`LabelBound::Any`] — the classic lift). Under the
//! **exact-equality** measure ([`LabelBound::ExactName`]), `label(v1, v2)`
//! is `1` only when the names are identical, so `max_v2 label(v1, ·) ≤
//! [name(v1) ∈ names(G2)]` and the side-1 average is capped by the
//! fraction of side 1's vertices whose name occurs verbatim in side 2.
//! The sketch carries the exact sorted set of distinct per-vertex FNV-1a
//! name hashes for this: hash membership can only *overestimate* true
//! name membership (collisions merge names, never separate them), and the
//! vertices a within-graph collision could hide behind one hash are added
//! back pessimistically (`n − |H|` surplus counted as matching), so the
//! cap stays sound. Graded measures (q-grams, edit distance, …) admit no
//! such cap from name sets alone — two disjoint alphabets can still score
//! near 1 pairwise — which is why [`LabelBound::ExactName`] must only be
//! passed when the matcher really runs exact-equality labels.
//!
//! Both directions are bounded (`pre` sets forward, `post` sets backward)
//! and combined with [`BoundCombine`]: `Average` mirrors the default
//! aggregation exactly; `Max` dominates every monotone combine whose value
//! never exceeds its larger argument (min, weighted means, forward-only),
//! so a caller with a non-average aggregation stays sound at some loss of
//! tightness.

use crate::error::GraphError;
use crate::graph::DependencyGraph;
use ems_events::Fnv1a;

/// Number of minhash lanes carried by every sketch.
pub const MINHASH_LANES: usize = 64;

/// One deduplicated vertex profile: everything `F(1)` needs to know about
/// a vertex. Vertices with equal profiles are interchangeable for the
/// bound, so each profile carries a multiplicity in [`GraphSketch`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct VertexProfile {
    /// Class id of the vertex frequency `f(v)`.
    pub freq_class: u32,
    /// Sorted class-id multiset of the *real* incoming edge frequencies.
    pub pre_classes: Vec<u32>,
    /// Sorted class-id multiset of the *real* outgoing edge frequencies.
    pub post_classes: Vec<u32>,
}

/// How the forward and backward direction bounds combine into one
/// per-pair bound. See the module docs for the soundness argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundCombine {
    /// `(fwd + bwd) / 2` — exact for the default `Average` aggregation.
    Average,
    /// `max(fwd, bwd)` — dominates every aggregation that never exceeds
    /// its larger argument (min, weighted means, forward/backward-only).
    Max,
}

/// How the label term of formula (1) is bounded at the sketch level. See
/// the module docs ("Bounding the label term") for the soundness argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelBound {
    /// No assumption on the measure: the label term is only known to be
    /// `≤ 1`. Sound for every measure; the only sound choice for graded
    /// measures (q-gram cosine, edit distance, …).
    #[default]
    Any,
    /// The matcher runs the *exact-equality* measure: the label term is
    /// capped per side by the name-set overlap fraction carried in the
    /// sketch. Unsound for any other measure — callers must derive this
    /// from the parameters actually used for exact scoring.
    ExactName,
}

/// A constant-size structural summary of one dependency graph. Build with
/// [`GraphSketch::of`]; persist through the `ems-core` sketch codec.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSketch {
    fingerprint: u64,
    num_real: u32,
    num_edges: u64,
    /// Sorted distinct normalized frequencies (vertex and edge), each in
    /// `(0, 1]` for edges and `[0, 1]` for vertices.
    classes: Vec<f64>,
    /// Deduplicated vertex profiles, sorted for a canonical encoding.
    profiles: Vec<VertexProfile>,
    /// Multiplicity of each profile; sums to `num_real`.
    counts: Vec<u32>,
    /// Minhash lanes over the per-vertex FNV-1a label hashes.
    minhash: Vec<u64>,
    /// Sorted distinct per-vertex FNV-1a label hashes — the exact name
    /// set behind the [`LabelBound::ExactName`] overlap cap.
    label_hashes: Vec<u64>,
}

/// SplitMix64 finalizer: a fixed bijective mix so each minhash lane sees
/// an independent permutation of the label-hash universe.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl GraphSketch {
    /// Builds the sketch of a graph. Deterministic: the sketch is a pure
    /// function of the graph content (same fingerprint ⇒ same sketch).
    pub fn of(g: &DependencyGraph) -> GraphSketch {
        // Frequency class table: sorted distinct vertex + edge values.
        // Total order is safe: frequencies are finite and non-negative by
        // the graph's construction invariants.
        let mut values: Vec<u64> = Vec::new();
        for v in g.real_nodes() {
            values.push(g.node_frequency(v).to_bits());
            for &(u, f) in g.pre(v) {
                if !g.is_artificial(u) {
                    values.push(f.to_bits());
                }
            }
        }
        values.sort_unstable();
        values.dedup();
        let classes: Vec<f64> = values.iter().map(|&b| f64::from_bits(b)).collect();
        let class_of = |f: f64| -> u32 {
            // The table was built from these exact bit patterns.
            match values.binary_search(&f.to_bits()) {
                Ok(i) => i as u32,
                Err(i) => i as u32, // unreachable by construction
            }
        };

        let mut num_edges = 0u64;
        let mut profiles: Vec<VertexProfile> = Vec::new();
        for v in g.real_nodes() {
            let mut pre_classes: Vec<u32> = g
                .pre(v)
                .iter()
                .filter(|(u, _)| !g.is_artificial(*u))
                .map(|&(_, f)| class_of(f))
                .collect();
            let mut post_classes: Vec<u32> = g
                .post(v)
                .iter()
                .filter(|(u, _)| !g.is_artificial(*u))
                .map(|&(_, f)| class_of(f))
                .collect();
            pre_classes.sort_unstable();
            post_classes.sort_unstable();
            num_edges += pre_classes.len() as u64;
            profiles.push(VertexProfile {
                freq_class: class_of(g.node_frequency(v)),
                pre_classes,
                post_classes,
            });
        }
        profiles.sort();
        let mut dedup: Vec<VertexProfile> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for p in profiles {
            match dedup.last() {
                Some(last) if *last == p => {
                    if let Some(c) = counts.last_mut() {
                        *c += 1;
                    }
                }
                _ => {
                    dedup.push(p);
                    counts.push(1);
                }
            }
        }

        // Minhash over per-vertex label fingerprints, plus the exact
        // sorted set of those fingerprints for the label-overlap cap.
        let mut minhash = vec![u64::MAX; MINHASH_LANES];
        let mut label_hashes: Vec<u64> = Vec::with_capacity(g.num_real());
        for v in g.real_nodes() {
            let mut h = Fnv1a::new();
            h.write(g.name(v).as_bytes());
            let base = h.finish();
            label_hashes.push(base);
            for (lane, slot) in minhash.iter_mut().enumerate() {
                let salted = base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(lane as u64 + 1);
                let hv = mix64(salted);
                if hv < *slot {
                    *slot = hv;
                }
            }
        }
        label_hashes.sort_unstable();
        label_hashes.dedup();

        GraphSketch {
            fingerprint: g.fingerprint(),
            num_real: g.num_real() as u32,
            num_edges,
            classes,
            profiles: dedup,
            counts,
            minhash,
            label_hashes,
        }
    }

    /// Reassembles a sketch from persisted parts, re-validating every
    /// structural invariant — a corrupted payload is rejected, never
    /// served into pruning decisions.
    #[allow(clippy::too_many_arguments)] // mirrors the flat persisted payload
    pub fn try_from_parts(
        fingerprint: u64,
        num_real: u32,
        num_edges: u64,
        classes: Vec<f64>,
        profiles: Vec<VertexProfile>,
        counts: Vec<u32>,
        minhash: Vec<u64>,
        label_hashes: Vec<u64>,
    ) -> Result<GraphSketch, GraphError> {
        let invalid = |message: String| GraphError::CorruptSketch { message };
        if minhash.len() != MINHASH_LANES {
            return Err(invalid(format!(
                "sketch carries {} minhash lanes, expected {MINHASH_LANES}",
                minhash.len()
            )));
        }
        if label_hashes.len() > num_real as usize {
            return Err(invalid(format!(
                "{} label hashes for {num_real} vertices",
                label_hashes.len()
            )));
        }
        if !label_hashes.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid("label hashes not strictly sorted".into()));
        }
        let mut prev: Option<f64> = None;
        for &f in &classes {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(invalid(format!("frequency class {f} outside [0, 1]")));
            }
            if let Some(p) = prev {
                if f <= p {
                    return Err(invalid("frequency classes not strictly sorted".into()));
                }
            }
            prev = Some(f);
        }
        if profiles.len() != counts.len() {
            return Err(invalid(format!(
                "{} profiles but {} counts",
                profiles.len(),
                counts.len()
            )));
        }
        let nc = classes.len() as u32;
        let mut total = 0u64;
        let mut edges = 0u64;
        for (p, &cnt) in profiles.iter().zip(&counts) {
            if cnt == 0 {
                return Err(invalid("zero-multiplicity profile".into()));
            }
            total += u64::from(cnt);
            edges += p.pre_classes.len() as u64 * u64::from(cnt);
            let ids = std::iter::once(p.freq_class)
                .chain(p.pre_classes.iter().copied())
                .chain(p.post_classes.iter().copied());
            for id in ids {
                if id >= nc {
                    return Err(invalid(format!(
                        "class id {id} out of range (table has {nc} classes)"
                    )));
                }
            }
        }
        if total != u64::from(num_real) {
            return Err(invalid(format!(
                "profile multiplicities sum to {total}, sketch declares {num_real} vertices"
            )));
        }
        if edges != num_edges {
            return Err(invalid(format!(
                "profile pre-degrees sum to {edges} edges, sketch declares {num_edges}"
            )));
        }
        Ok(GraphSketch {
            fingerprint,
            num_real,
            num_edges,
            classes,
            profiles,
            counts,
            minhash,
            label_hashes,
        })
    }

    /// Fingerprint of the sketched graph.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of real vertices in the sketched graph.
    pub fn num_real(&self) -> usize {
        self.num_real as usize
    }

    /// Number of real edges in the sketched graph.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// The sorted distinct frequency values (vertex and edge classes).
    pub fn classes(&self) -> &[f64] {
        &self.classes
    }

    /// The deduplicated vertex profiles.
    pub fn profiles(&self) -> &[VertexProfile] {
        &self.profiles
    }

    /// Multiplicity of each profile, aligned with [`profiles`](Self::profiles).
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The minhash lanes.
    pub fn minhash(&self) -> &[u64] {
        &self.minhash
    }

    /// The sorted distinct per-vertex FNV-1a label hashes.
    pub fn label_hashes(&self) -> &[u64] {
        &self.label_hashes
    }

    /// Vertex-frequency histogram: `(frequency, vertex count)` per class,
    /// ascending by frequency.
    pub fn vertex_frequency_histogram(&self) -> Vec<(f64, u64)> {
        let mut hist = vec![0u64; self.classes.len()];
        for (p, &cnt) in self.profiles.iter().zip(&self.counts) {
            hist[p.freq_class as usize] += u64::from(cnt);
        }
        self.histogram_view(hist)
    }

    /// Edge-frequency histogram: `(frequency, edge count)` per class,
    /// ascending by frequency (each real edge counted once, at its
    /// target's profile).
    pub fn edge_frequency_histogram(&self) -> Vec<(f64, u64)> {
        let mut hist = vec![0u64; self.classes.len()];
        for (p, &cnt) in self.profiles.iter().zip(&self.counts) {
            for &a in &p.pre_classes {
                hist[a as usize] += u64::from(cnt);
            }
        }
        self.histogram_view(hist)
    }

    fn histogram_view(&self, hist: Vec<u64>) -> Vec<(f64, u64)> {
        self.classes
            .iter()
            .zip(hist)
            .filter(|&(_, n)| n > 0)
            .map(|(&f, n)| (f, n))
            .collect()
    }

    /// Minhash Jaccard estimate of the two label alphabets' overlap, in
    /// `[0, 1]`. An *estimate* — used for deterministic candidate
    /// ordering, never for pruning (only the sound score bound prunes).
    pub fn label_jaccard_estimate(&self, other: &GraphSketch) -> f64 {
        let matching = self
            .minhash
            .iter()
            .zip(&other.minhash)
            .filter(|(a, b)| a == b)
            .count();
        matching as f64 / MINHASH_LANES as f64
    }

    /// Per-side label-overlap caps under the exact-equality measure: the
    /// fraction of each side's vertices whose name *can* occur verbatim on
    /// the other side, computed from the sorted distinct hash sets. Hash
    /// collisions across graphs only overestimate; the `n − |H|` vertices
    /// a within-graph collision could hide are counted as matching, so
    /// each cap is a sound upper bound on the true overlap fraction.
    fn label_overlap_caps(&self, other: &GraphSketch) -> (f64, f64) {
        let mut shared = 0u64;
        let (a, b) = (&self.label_hashes, &other.label_hashes);
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let cap = |n: u32, distinct: usize| -> f64 {
            let surplus = u64::from(n) - distinct as u64;
            (((shared + surplus) as f64) / f64::from(n)).clamp(0.0, 1.0)
        };
        (cap(self.num_real, a.len()), cap(other.num_real, b.len()))
    }

    /// A sound upper bound on the symmetric best-correspondence EMS score
    /// between the sketched graphs (`self` as side 1, `other` as side 2),
    /// for damping constant `c ∈ (0, 1)` and label weight `α ∈ [0, 1]`.
    /// `labels` declares what is known about the label measure; pass
    /// [`LabelBound::ExactName`] only when exact scoring really uses the
    /// equality measure. See the module docs for the proof sketch; the
    /// property suite in `ems-catalog` pins `bound ≥ exact` over seeded
    /// synthetic corpora.
    pub fn score_upper_bound(
        &self,
        other: &GraphSketch,
        alpha: f64,
        c: f64,
        combine: BoundCombine,
        labels: LabelBound,
    ) -> f64 {
        let (n1, n2) = (self.num_real as usize, other.num_real as usize);
        if n1 == 0 || n2 == 0 {
            return 0.0;
        }
        // Class-pair compatibility table, computed once per sketch pair —
        // the same expression as the kernel's `compat`, so the bound and
        // the exact fixpoint see identical factors for identical inputs.
        let (c1, c2) = (self.classes.len(), other.classes.len());
        let mut table = vec![0.0f64; c1 * c2];
        for (i, &fa) in self.classes.iter().enumerate() {
            for (j, &fb) in other.classes.iter().enumerate() {
                table[i * c2 + j] = compat(c, fa, fb);
            }
        }

        // Per-profile-pair *structural* bound entries T; running row and
        // column maxima give the best-correspondence score of T. The label
        // term re-enters per side below (max is subadditive, so splitting
        // the maxima over the two terms only raises the bound).
        let mut row_best = vec![0.0f64; self.profiles.len()];
        let mut col_best = vec![0.0f64; other.profiles.len()];
        for (i, p1) in self.profiles.iter().enumerate() {
            let f1 = self.classes[p1.freq_class as usize];
            for (j, p2) in other.profiles.iter().enumerate() {
                let f2 = other.classes[p2.freq_class as usize];
                // Both artificial lanes exist iff both vertex frequencies
                // are positive; the artificial outer lane then contributes
                // exactly C(f(v1), f(v2)).
                let art = if f1 > 0.0 && f2 > 0.0 {
                    compat(c, f1, f2)
                } else {
                    0.0
                };
                let tab = CompatTable {
                    table: &table,
                    c2,
                    art,
                };
                let lanes = (f1 > 0.0, f2 > 0.0);
                let fwd = side_pair(tab, p1, p2, lanes, Side::Pre);
                let bwd = side_pair(tab, p1, p2, lanes, Side::Post);
                let entry = match combine {
                    BoundCombine::Average => (fwd + bwd) / 2.0,
                    BoundCombine::Max => fwd.max(bwd),
                };
                if entry > row_best[i] {
                    row_best[i] = entry;
                }
                if entry > col_best[j] {
                    col_best[j] = entry;
                }
            }
        }

        // Per-side label caps: 1 unless the exact-equality measure lets
        // the name-set overlap cap the label term.
        let (l1, l2) = match labels {
            LabelBound::Any => (1.0, 1.0),
            LabelBound::ExactName => self.label_overlap_caps(other),
        };

        let weighted = |best: &[f64], counts: &[u32], n: usize| -> f64 {
            let mut sum = 0.0;
            for (&b, &cnt) in best.iter().zip(counts) {
                sum += b * f64::from(cnt);
            }
            sum / n as f64
        };
        let s1 =
            (alpha * weighted(&row_best, &self.counts, n1) + (1.0 - alpha) * l1).clamp(0.0, 1.0);
        let s2 =
            (alpha * weighted(&col_best, &other.counts, n2) + (1.0 - alpha) * l2).clamp(0.0, 1.0);
        ((s1 + s2) / 2.0).clamp(0.0, 1.0)
    }
}

/// The kernel's edge-compatibility factor, reproduced verbatim.
#[inline]
fn compat(c: f64, f_o: f64, f_i: f64) -> f64 {
    c * (1.0 - (f_o - f_i).abs() / (f_o + f_i))
}

#[derive(Clone, Copy)]
enum Side {
    Pre,
    Post,
}

/// Dense class-compatibility lookup shared by both directions of a
/// vertex pair: `table` is row-major with `c2` columns, `art` is the
/// artificial-lane compatibility.
#[derive(Clone, Copy)]
struct CompatTable<'a> {
    table: &'a [f64],
    c2: usize,
    art: f64,
}

/// One direction's `(s12 + s21)/2` under `S_prev ≡ 1`: each real outer
/// lane contributes its best class compatibility against the other side's
/// real classes, the artificial lane contributes `art`, and the average
/// runs over the full neighbor count (artificial lane included). An empty
/// neighbor set yields 0 — exactly what the kernel computes.
fn side_pair(
    tab: CompatTable<'_>,
    p1: &VertexProfile,
    p2: &VertexProfile,
    art_lanes: (bool, bool),
    side: Side,
) -> f64 {
    let CompatTable { table, c2, art } = tab;
    let (art1, art2) = art_lanes;
    let (cl1, cl2) = match side {
        Side::Pre => (&p1.pre_classes, &p2.pre_classes),
        Side::Post => (&p1.post_classes, &p2.post_classes),
    };
    let one_side = |outer: &[u32], inner: &[u32], outer_art: bool, transposed: bool| -> f64 {
        let lanes = outer.len() + usize::from(outer_art);
        if lanes == 0 {
            return 0.0;
        }
        let mut sum = 0.0;
        for &a in outer {
            let mut best = 0.0f64;
            let mut last = u32::MAX;
            for &b in inner {
                if b == last {
                    continue; // sorted multiset: skip duplicate classes
                }
                last = b;
                let v = if transposed {
                    table[b as usize * c2 + a as usize]
                } else {
                    table[a as usize * c2 + b as usize]
                };
                if v > best {
                    best = v;
                }
            }
            sum += best;
        }
        if outer_art {
            sum += art;
        }
        sum / lanes as f64
    };
    let s12 = one_side(cl1, cl2, art1, false);
    let s21 = one_side(cl2, cl1, art2, true);
    (s12 + s21) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn sample_pair() -> (DependencyGraph, DependencyGraph) {
        let mut l1 = EventLog::new();
        l1.push_trace(["cash", "validate", "pack", "ship"]);
        l1.push_trace(["cash", "validate", "pack", "ship"]);
        l1.push_trace(["card", "validate", "pack", "ship"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["e0", "e1", "e2", "e4", "e5"]);
        l2.push_trace(["e0", "e1", "e3", "e4", "e5"]);
        (
            DependencyGraph::from_log(&l1),
            DependencyGraph::from_log(&l2),
        )
    }

    #[test]
    fn sketch_is_a_pure_function_of_graph_content() {
        let (g1, _) = sample_pair();
        let a = GraphSketch::of(&g1);
        let b = GraphSketch::of(&g1);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), g1.fingerprint());
        assert_eq!(a.num_real(), g1.num_real());
    }

    #[test]
    fn histograms_cover_every_vertex_and_edge() {
        let (g1, g2) = sample_pair();
        for g in [&g1, &g2] {
            let s = GraphSketch::of(g);
            let verts: u64 = s.vertex_frequency_histogram().iter().map(|&(_, n)| n).sum();
            assert_eq!(verts, g.num_real() as u64);
            let edges: u64 = s.edge_frequency_histogram().iter().map(|&(_, n)| n).sum();
            assert_eq!(edges, s.num_edges());
            assert_eq!(edges as usize, g.real_edges().len());
        }
    }

    #[test]
    fn identical_graphs_have_identical_minhash() {
        let (g1, g2) = sample_pair();
        let s1 = GraphSketch::of(&g1);
        let s2 = GraphSketch::of(&g2);
        assert_eq!(s1.label_jaccard_estimate(&s1), 1.0);
        // Disjoint alphabets: the estimate should be far below 1.
        assert!(s1.label_jaccard_estimate(&s2) < 0.5);
    }

    #[test]
    fn self_bound_is_high_for_self_similarity() {
        let (g1, _) = sample_pair();
        let s = GraphSketch::of(&g1);
        // A graph matched against itself scores high; the bound must sit
        // at or above any achievable score and below the ceiling.
        let b = s.score_upper_bound(&s, 1.0, 0.8, BoundCombine::Average, LabelBound::Any);
        assert!((0.5..=1.0).contains(&b), "self bound {b}");
    }

    #[test]
    fn bound_is_monotone_in_alpha_toward_label_ceiling() {
        let (g1, g2) = sample_pair();
        let s1 = GraphSketch::of(&g1);
        let s2 = GraphSketch::of(&g2);
        let structural =
            s1.score_upper_bound(&s2, 1.0, 0.8, BoundCombine::Average, LabelBound::Any);
        let labeled = s1.score_upper_bound(&s2, 0.5, 0.8, BoundCombine::Average, LabelBound::Any);
        // The label term is bounded by 1, so lowering alpha can only raise
        // the bound.
        assert!(labeled >= structural);
        assert!(labeled <= 1.0);
    }

    #[test]
    fn max_combine_dominates_average() {
        let (g1, g2) = sample_pair();
        let s1 = GraphSketch::of(&g1);
        let s2 = GraphSketch::of(&g2);
        let avg = s1.score_upper_bound(&s2, 1.0, 0.8, BoundCombine::Average, LabelBound::Any);
        let max = s1.score_upper_bound(&s2, 1.0, 0.8, BoundCombine::Max, LabelBound::Any);
        assert!(max >= avg);
    }

    #[test]
    fn parts_round_trip_and_validation_rejects_corruption() {
        let (g1, _) = sample_pair();
        let s = GraphSketch::of(&g1);
        let rebuilt = GraphSketch::try_from_parts(
            s.fingerprint(),
            s.num_real() as u32,
            s.num_edges(),
            s.classes().to_vec(),
            s.profiles().to_vec(),
            s.counts().to_vec(),
            s.minhash().to_vec(),
            s.label_hashes().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt, s);

        // Class id out of range.
        let mut bad = s.profiles().to_vec();
        bad[0].freq_class = 999;
        assert!(GraphSketch::try_from_parts(
            s.fingerprint(),
            s.num_real() as u32,
            s.num_edges(),
            s.classes().to_vec(),
            bad,
            s.counts().to_vec(),
            s.minhash().to_vec(),
            s.label_hashes().to_vec(),
        )
        .is_err());

        // Multiplicities no longer sum to the vertex count.
        let mut bad_counts = s.counts().to_vec();
        bad_counts[0] += 1;
        assert!(GraphSketch::try_from_parts(
            s.fingerprint(),
            s.num_real() as u32,
            s.num_edges(),
            s.classes().to_vec(),
            s.profiles().to_vec(),
            bad_counts,
            s.minhash().to_vec(),
            s.label_hashes().to_vec(),
        )
        .is_err());

        // Wrong lane count.
        assert!(GraphSketch::try_from_parts(
            s.fingerprint(),
            s.num_real() as u32,
            s.num_edges(),
            s.classes().to_vec(),
            s.profiles().to_vec(),
            s.counts().to_vec(),
            vec![0; 3],
            s.label_hashes().to_vec(),
        )
        .is_err());

        // Unsorted class table.
        let mut bad_classes = s.classes().to_vec();
        bad_classes.reverse();
        assert!(GraphSketch::try_from_parts(
            s.fingerprint(),
            s.num_real() as u32,
            s.num_edges(),
            bad_classes,
            s.profiles().to_vec(),
            s.counts().to_vec(),
            s.minhash().to_vec(),
            s.label_hashes().to_vec(),
        )
        .is_err());

        // Unsorted label hashes.
        let mut bad_hashes = s.label_hashes().to_vec();
        bad_hashes.reverse();
        assert!(GraphSketch::try_from_parts(
            s.fingerprint(),
            s.num_real() as u32,
            s.num_edges(),
            s.classes().to_vec(),
            s.profiles().to_vec(),
            s.counts().to_vec(),
            s.minhash().to_vec(),
            bad_hashes,
        )
        .is_err());

        // More distinct hashes than vertices.
        let mut too_many = s.label_hashes().to_vec();
        let next = too_many.last().copied().unwrap_or(0).wrapping_add(1);
        while too_many.len() <= s.num_real() {
            too_many.push(next + too_many.len() as u64);
        }
        assert!(GraphSketch::try_from_parts(
            s.fingerprint(),
            s.num_real() as u32,
            s.num_edges(),
            s.classes().to_vec(),
            s.profiles().to_vec(),
            s.counts().to_vec(),
            s.minhash().to_vec(),
            too_many,
        )
        .is_err());
    }

    #[test]
    fn label_hashes_are_sorted_distinct_and_cover_the_alphabet() {
        let (g1, _) = sample_pair();
        let s = GraphSketch::of(&g1);
        assert!(s.label_hashes().windows(2).all(|w| w[0] < w[1]));
        // 5 distinct activity names, no collisions at this size.
        assert_eq!(s.label_hashes().len(), g1.num_real());
    }

    #[test]
    fn exact_name_bound_caps_disjoint_alphabets() {
        let (g1, g2) = sample_pair();
        let s1 = GraphSketch::of(&g1);
        let s2 = GraphSketch::of(&g2);
        let (l12, l21) = s1.label_overlap_caps(&s2);
        assert_eq!((l12, l21), (0.0, 0.0));
        let (l11, _) = s1.label_overlap_caps(&s1);
        assert_eq!(l11, 1.0);
        // With disjoint names, the exact-name bound at alpha = 0.5 is half
        // the structural bound plus nothing — strictly below the Any lift.
        let any = s1.score_upper_bound(&s2, 0.5, 0.8, BoundCombine::Average, LabelBound::Any);
        let exact =
            s1.score_upper_bound(&s2, 0.5, 0.8, BoundCombine::Average, LabelBound::ExactName);
        assert!(exact < any, "exact {exact} should undercut any {any}");
        let structural =
            s1.score_upper_bound(&s2, 1.0, 0.8, BoundCombine::Average, LabelBound::ExactName);
        assert!((exact - structural / 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_name_bound_never_exceeds_any_bound() {
        let (g1, g2) = sample_pair();
        let s1 = GraphSketch::of(&g1);
        let s2 = GraphSketch::of(&g2);
        for &alpha in &[0.0, 0.25, 0.5, 1.0] {
            for combine in [BoundCombine::Average, BoundCombine::Max] {
                let any = s1.score_upper_bound(&s2, alpha, 0.8, combine, LabelBound::Any);
                let exact = s1.score_upper_bound(&s2, alpha, 0.8, combine, LabelBound::ExactName);
                assert!(exact <= any + 1e-12, "alpha {alpha}: {exact} > {any}");
            }
        }
    }

    #[test]
    fn empty_side_bounds_to_zero() {
        let (g1, _) = sample_pair();
        let s = GraphSketch::of(&g1);
        let empty = GraphSketch::try_from_parts(
            0,
            0,
            0,
            Vec::new(),
            Vec::new(),
            Vec::new(),
            vec![u64::MAX; MINHASH_LANES],
            Vec::new(),
        )
        .unwrap();
        assert_eq!(
            s.score_upper_bound(&empty, 1.0, 0.8, BoundCombine::Average, LabelBound::Any),
            0.0
        );
        assert_eq!(
            empty.score_upper_bound(&s, 1.0, 0.8, BoundCombine::Average, LabelBound::Any),
            0.0
        );
    }
}
