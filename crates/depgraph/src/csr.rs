//! Flat CSR export of the neighbor structure, consumed by the similarity
//! kernel's precomputation (`PairContext` in `ems-core`).
//!
//! The nested `Vec<Vec<(NodeId, f64)>>` adjacency is ideal for graph
//! construction and mutation, but the fixpoint kernel scans every pre-set
//! (or post-set) of every *real* node millions of times per run. This
//! module flattens those lists once into contiguous arrays:
//!
//! * **entries** — the neighbor list of each real node in its original
//!   order, where each entry is either a *lane* id (a real-source edge) or
//!   the sentinel [`ARTIFICIAL_ENTRY`] for the artificial event `v^X`;
//! * **lanes** — real-source edges numbered densely in CSR order, so the
//!   lanes of one node form a contiguous range and a per-edge-pair
//!   compatibility table can be indexed `lane1 * num_lanes2 + lane2` with a
//!   contiguous inner stride;
//! * **artificial frequencies** — the edge frequency of each node's
//!   `v^X` neighbor (`NaN` when absent), kept out of the lanes because the
//!   artificial event's similarity is pinned and never read from a matrix.
//!
//! Only the neighbor lists of *real* nodes are exported: similarity pairs
//! range over real events, so the artificial node's own pre/post-sets are
//! never an outer or inner set.

use crate::graph::{DependencyGraph, NodeId};
use std::ops::Range;

/// Sentinel entry marking the artificial event `v^X` in a neighbor list.
pub const ARTIFICIAL_ENTRY: u32 = u32::MAX;

/// A flattened, direction-resolved neighbor structure over the real nodes
/// of one [`DependencyGraph`] — see the [module docs](self) for the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborCsr {
    /// Entry ranges per real node (`len = num_nodes + 1`).
    off: Vec<u32>,
    /// Per entry: lane id of a real-source edge, or [`ARTIFICIAL_ENTRY`].
    ent_lane: Vec<u32>,
    /// Lane ranges per real node (`len = num_nodes + 1`).
    lane_off: Vec<u32>,
    /// Per lane: the neighbor's node index.
    lane_src: Vec<u32>,
    /// Per lane: the edge's normalized frequency.
    lane_freq: Vec<f64>,
    /// Per real node: frequency of the artificial neighbor edge, `NaN`
    /// when the node has no artificial neighbor (zero-frequency events).
    art_freq: Vec<f64>,
}

impl NeighborCsr {
    fn build<'g>(
        g: &'g DependencyGraph,
        neighbors: impl Fn(NodeId) -> &'g [(NodeId, f64)],
    ) -> Self {
        let n = g.num_real();
        let mut off = Vec::with_capacity(n + 1);
        let mut lane_off = Vec::with_capacity(n + 1);
        let mut ent_lane = Vec::new();
        let mut lane_src = Vec::new();
        let mut lane_freq = Vec::new();
        let mut art_freq = vec![f64::NAN; n];
        off.push(0);
        lane_off.push(0);
        for (v, af) in art_freq.iter_mut().enumerate() {
            for &(u, f) in neighbors(NodeId::from_index(v)) {
                if g.is_artificial(u) {
                    ent_lane.push(ARTIFICIAL_ENTRY);
                    *af = f;
                } else {
                    ent_lane.push(lane_src.len() as u32);
                    lane_src.push(u.0);
                    lane_freq.push(f);
                }
            }
            off.push(ent_lane.len() as u32);
            lane_off.push(lane_src.len() as u32);
        }
        NeighborCsr {
            off,
            ent_lane,
            lane_off,
            lane_src,
            lane_freq,
            art_freq,
        }
    }

    /// Number of real nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.art_freq.len()
    }

    /// Total number of lanes (real-source edges) across all nodes.
    pub fn num_lanes(&self) -> usize {
        self.lane_src.len()
    }

    /// The neighbor entries of real node `v`, in original adjacency order:
    /// lane ids, with [`ARTIFICIAL_ENTRY`] marking the artificial neighbor.
    pub fn entries(&self, v: usize) -> &[u32] {
        &self.ent_lane[self.off[v] as usize..self.off[v + 1] as usize]
    }

    /// The contiguous lane range of real node `v`.
    pub fn lane_range(&self, v: usize) -> Range<usize> {
        self.lane_off[v] as usize..self.lane_off[v + 1] as usize
    }

    /// Neighbor node index per lane.
    pub fn lane_src(&self) -> &[u32] {
        &self.lane_src
    }

    /// Edge frequency per lane.
    pub fn lane_freq(&self) -> &[f64] {
        &self.lane_freq
    }

    /// Frequency of `v`'s artificial neighbor edge; `NaN` when absent.
    pub fn art_freq(&self, v: usize) -> f64 {
        self.art_freq[v]
    }
}

impl DependencyGraph {
    /// Flattens the pre-sets of all real nodes into a [`NeighborCsr`]
    /// (the forward-similarity substrate).
    pub fn pre_csr(&self) -> NeighborCsr {
        NeighborCsr::build(self, |v| self.pre(v))
    }

    /// Flattens the post-sets of all real nodes into a [`NeighborCsr`]
    /// (the backward-similarity substrate).
    pub fn post_csr(&self) -> NeighborCsr {
        NeighborCsr::build(self, |v| self.post(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn sample_graph() -> DependencyGraph {
        let mut log = EventLog::new();
        log.push_trace(["A", "C", "D"]);
        log.push_trace(["B", "C", "D"]);
        DependencyGraph::from_log(&log)
    }

    #[test]
    fn csr_mirrors_adjacency_in_order() {
        let g = sample_graph();
        let csr = g.pre_csr();
        assert_eq!(csr.num_nodes(), g.num_real());
        for v in 0..g.num_real() {
            let adj = g.pre(NodeId::from_index(v));
            let ents = csr.entries(v);
            assert_eq!(ents.len(), adj.len());
            let mut lane_cursor = csr.lane_range(v).start;
            for (&(u, f), &e) in adj.iter().zip(ents) {
                if g.is_artificial(u) {
                    assert_eq!(e, ARTIFICIAL_ENTRY);
                    assert_eq!(csr.art_freq(v), f);
                } else {
                    assert_eq!(e as usize, lane_cursor);
                    assert_eq!(csr.lane_src()[e as usize] as usize, u.index());
                    assert_eq!(csr.lane_freq()[e as usize], f);
                    lane_cursor += 1;
                }
            }
            assert_eq!(lane_cursor, csr.lane_range(v).end);
        }
    }

    #[test]
    fn post_csr_covers_out_edges() {
        let g = sample_graph();
        let csr = g.post_csr();
        let total_real: usize = (0..g.num_real())
            .map(|v| {
                g.post(NodeId::from_index(v))
                    .iter()
                    .filter(|&&(u, _)| !g.is_artificial(u))
                    .count()
            })
            .sum();
        assert_eq!(csr.num_lanes(), total_real);
    }

    #[test]
    fn zero_frequency_node_has_no_artificial_entry() {
        let mut log = EventLog::new();
        let _ghost = log.intern("ghost");
        log.push_trace(["a"]);
        let g = DependencyGraph::from_log(&log);
        let ghost = g.node_by_name("ghost").unwrap().index();
        let csr = g.pre_csr();
        assert!(csr.entries(ghost).is_empty());
        assert!(csr.art_freq(ghost).is_nan());
        assert!(csr.lane_range(ghost).is_empty());
    }

    #[test]
    fn lanes_are_contiguous_per_node() {
        let g = sample_graph();
        let csr = g.pre_csr();
        let mut seen = 0usize;
        for v in 0..csr.num_nodes() {
            let r = csr.lane_range(v);
            assert_eq!(r.start, seen);
            seen = r.end;
        }
        assert_eq!(seen, csr.num_lanes());
    }
}
