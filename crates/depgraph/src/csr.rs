//! Flat CSR export of the neighbor structure, consumed by the similarity
//! kernel's precomputation (`PairContext` in `ems-core`).
//!
//! The nested `Vec<Vec<(NodeId, f64)>>` adjacency is ideal for graph
//! construction and mutation, but the fixpoint kernel scans every pre-set
//! (or post-set) of every *real* node millions of times per run. This
//! module flattens those lists once into contiguous arrays:
//!
//! * **entries** — the neighbor list of each real node in its original
//!   order, where each entry is either a *lane* id (a real-source edge) or
//!   the sentinel [`ARTIFICIAL_ENTRY`] for the artificial event `v^X`;
//! * **lanes** — real-source edges numbered densely in CSR order, so the
//!   lanes of one node form a contiguous range and a per-edge-pair
//!   compatibility table can be indexed `lane1 * num_lanes2 + lane2` with a
//!   contiguous inner stride;
//! * **artificial frequencies** — the edge frequency of each node's
//!   `v^X` neighbor (`NaN` when absent), kept out of the lanes because the
//!   artificial event's similarity is pinned and never read from a matrix.
//!
//! Only the neighbor lists of *real* nodes are exported: similarity pairs
//! range over real events, so the artificial node's own pre/post-sets are
//! never an outer or inner set.

use crate::graph::{DependencyGraph, NodeId};
use crate::GraphError;
use std::ops::Range;

/// Sentinel entry marking the artificial event `v^X` in a neighbor list.
pub const ARTIFICIAL_ENTRY: u32 = u32::MAX;

/// A flattened, direction-resolved neighbor structure over the real nodes
/// of one [`DependencyGraph`] — see the [module docs](self) for the layout.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborCsr {
    /// Entry ranges per real node (`len = num_nodes + 1`).
    off: Vec<u32>,
    /// Per entry: lane id of a real-source edge, or [`ARTIFICIAL_ENTRY`].
    ent_lane: Vec<u32>,
    /// Lane ranges per real node (`len = num_nodes + 1`).
    lane_off: Vec<u32>,
    /// Per lane: the neighbor's node index.
    lane_src: Vec<u32>,
    /// Per lane: the edge's normalized frequency.
    lane_freq: Vec<f64>,
    /// Per real node: frequency of the artificial neighbor edge, `NaN`
    /// when the node has no artificial neighbor (zero-frequency events).
    art_freq: Vec<f64>,
}

/// The raw columns of a [`NeighborCsr`], exposed for (de)serialization.
///
/// Round-tripping through parts is lossless: `NeighborCsr::try_from_parts`
/// re-validates every structural invariant, so parts read from untrusted
/// bytes (e.g. a durable snapshot) either rebuild the exact original CSR
/// or fail with [`GraphError::CorruptCsr`](crate::GraphError::CorruptCsr).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrParts {
    /// Entry ranges per real node (`len = num_nodes + 1`).
    pub off: Vec<u32>,
    /// Per entry: lane id, or [`ARTIFICIAL_ENTRY`].
    pub ent_lane: Vec<u32>,
    /// Lane ranges per real node (`len = num_nodes + 1`).
    pub lane_off: Vec<u32>,
    /// Per lane: the neighbor's node index.
    pub lane_src: Vec<u32>,
    /// Per lane: the edge's normalized frequency.
    pub lane_freq: Vec<f64>,
    /// Per real node: artificial-neighbor edge frequency (`NaN` if absent).
    pub art_freq: Vec<f64>,
}

impl NeighborCsr {
    fn build<'g>(
        g: &'g DependencyGraph,
        neighbors: impl Fn(NodeId) -> &'g [(NodeId, f64)],
    ) -> Self {
        let n = g.num_real();
        let mut off = Vec::with_capacity(n + 1);
        let mut lane_off = Vec::with_capacity(n + 1);
        let mut ent_lane = Vec::new();
        let mut lane_src = Vec::new();
        let mut lane_freq = Vec::new();
        let mut art_freq = vec![f64::NAN; n];
        off.push(0);
        lane_off.push(0);
        for (v, af) in art_freq.iter_mut().enumerate() {
            for &(u, f) in neighbors(NodeId::from_index(v)) {
                if g.is_artificial(u) {
                    ent_lane.push(ARTIFICIAL_ENTRY);
                    *af = f;
                } else {
                    ent_lane.push(lane_src.len() as u32);
                    lane_src.push(u.0);
                    lane_freq.push(f);
                }
            }
            off.push(ent_lane.len() as u32);
            lane_off.push(lane_src.len() as u32);
        }
        NeighborCsr {
            off,
            ent_lane,
            lane_off,
            lane_src,
            lane_freq,
            art_freq,
        }
    }

    /// Number of real nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.art_freq.len()
    }

    /// Total number of lanes (real-source edges) across all nodes.
    pub fn num_lanes(&self) -> usize {
        self.lane_src.len()
    }

    /// The neighbor entries of real node `v`, in original adjacency order:
    /// lane ids, with [`ARTIFICIAL_ENTRY`] marking the artificial neighbor.
    pub fn entries(&self, v: usize) -> &[u32] {
        &self.ent_lane[self.off[v] as usize..self.off[v + 1] as usize]
    }

    /// The contiguous lane range of real node `v`.
    pub fn lane_range(&self, v: usize) -> Range<usize> {
        self.lane_off[v] as usize..self.lane_off[v + 1] as usize
    }

    /// Neighbor node index per lane.
    pub fn lane_src(&self) -> &[u32] {
        &self.lane_src
    }

    /// Edge frequency per lane.
    pub fn lane_freq(&self) -> &[f64] {
        &self.lane_freq
    }

    /// Frequency of `v`'s artificial neighbor edge; `NaN` when absent.
    pub fn art_freq(&self, v: usize) -> f64 {
        self.art_freq[v]
    }

    /// Decomposes into raw columns for serialization.
    pub fn to_parts(&self) -> CsrParts {
        CsrParts {
            off: self.off.clone(),
            ent_lane: self.ent_lane.clone(),
            lane_off: self.lane_off.clone(),
            lane_src: self.lane_src.clone(),
            lane_freq: self.lane_freq.clone(),
            art_freq: self.art_freq.clone(),
        }
    }

    /// Rebuilds a CSR from raw columns, re-validating every structural
    /// invariant [`NeighborCsr::build`] guarantees: shared lengths, dense
    /// monotone offsets, consecutive lane numbering per node, at most one
    /// artificial sentinel per node (present exactly when `art_freq` is
    /// non-NaN), in-range neighbor indices, and finite frequencies.
    pub fn try_from_parts(parts: CsrParts) -> Result<Self, GraphError> {
        let corrupt = |message: String| GraphError::CorruptCsr { message };
        let n = parts.art_freq.len();
        if parts.off.len() != n + 1 || parts.lane_off.len() != n + 1 {
            return Err(corrupt(format!(
                "offset lengths {}/{} do not match {n} nodes",
                parts.off.len(),
                parts.lane_off.len()
            )));
        }
        if parts.lane_freq.len() != parts.lane_src.len() {
            return Err(corrupt(format!(
                "{} lane sources but {} lane frequencies",
                parts.lane_src.len(),
                parts.lane_freq.len()
            )));
        }
        for (name, off, total) in [
            ("entry", &parts.off, parts.ent_lane.len()),
            ("lane", &parts.lane_off, parts.lane_src.len()),
        ] {
            if off[0] != 0 {
                return Err(corrupt(format!("{name} offsets do not start at 0")));
            }
            if off.windows(2).any(|w| w[0] > w[1]) {
                return Err(corrupt(format!("{name} offsets are not monotone")));
            }
            if off[n] as usize != total {
                return Err(corrupt(format!(
                    "{name} offsets end at {} but {total} items exist",
                    off[n]
                )));
            }
        }
        for v in 0..n {
            let mut lane = parts.lane_off[v];
            let mut sentinels = 0usize;
            for &e in &parts.ent_lane[parts.off[v] as usize..parts.off[v + 1] as usize] {
                if e == ARTIFICIAL_ENTRY {
                    sentinels += 1;
                } else {
                    if e != lane {
                        return Err(corrupt(format!(
                            "node {v}: entry lane {e} breaks dense numbering (want {lane})"
                        )));
                    }
                    lane += 1;
                }
            }
            if lane != parts.lane_off[v + 1] {
                return Err(corrupt(format!(
                    "node {v}: entries cover lanes up to {lane}, lane offset says {}",
                    parts.lane_off[v + 1]
                )));
            }
            if sentinels > 1 {
                return Err(corrupt(format!("node {v}: {sentinels} artificial entries")));
            }
            if (sentinels == 1) == parts.art_freq[v].is_nan() {
                return Err(corrupt(format!(
                    "node {v}: artificial sentinel and art_freq disagree"
                )));
            }
        }
        for (i, &src) in parts.lane_src.iter().enumerate() {
            if src as usize >= n {
                return Err(corrupt(format!(
                    "lane {i}: neighbor index {src} out of range for {n} nodes"
                )));
            }
        }
        for (i, &f) in parts.lane_freq.iter().enumerate() {
            if !f.is_finite() {
                return Err(corrupt(format!("lane {i}: non-finite frequency {f}")));
            }
        }
        if let Some((v, &f)) = parts
            .art_freq
            .iter()
            .enumerate()
            .find(|(_, f)| f.is_infinite())
        {
            return Err(corrupt(format!(
                "node {v}: non-finite artificial frequency {f}"
            )));
        }
        Ok(NeighborCsr {
            off: parts.off,
            ent_lane: parts.ent_lane,
            lane_off: parts.lane_off,
            lane_src: parts.lane_src,
            lane_freq: parts.lane_freq,
            art_freq: parts.art_freq,
        })
    }
}

impl DependencyGraph {
    /// Flattens the pre-sets of all real nodes into a [`NeighborCsr`]
    /// (the forward-similarity substrate).
    pub fn pre_csr(&self) -> NeighborCsr {
        NeighborCsr::build(self, |v| self.pre(v))
    }

    /// Flattens the post-sets of all real nodes into a [`NeighborCsr`]
    /// (the backward-similarity substrate).
    pub fn post_csr(&self) -> NeighborCsr {
        NeighborCsr::build(self, |v| self.post(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn sample_graph() -> DependencyGraph {
        let mut log = EventLog::new();
        log.push_trace(["A", "C", "D"]);
        log.push_trace(["B", "C", "D"]);
        DependencyGraph::from_log(&log)
    }

    #[test]
    fn csr_mirrors_adjacency_in_order() {
        let g = sample_graph();
        let csr = g.pre_csr();
        assert_eq!(csr.num_nodes(), g.num_real());
        for v in 0..g.num_real() {
            let adj = g.pre(NodeId::from_index(v));
            let ents = csr.entries(v);
            assert_eq!(ents.len(), adj.len());
            let mut lane_cursor = csr.lane_range(v).start;
            for (&(u, f), &e) in adj.iter().zip(ents) {
                if g.is_artificial(u) {
                    assert_eq!(e, ARTIFICIAL_ENTRY);
                    assert_eq!(csr.art_freq(v), f);
                } else {
                    assert_eq!(e as usize, lane_cursor);
                    assert_eq!(csr.lane_src()[e as usize] as usize, u.index());
                    assert_eq!(csr.lane_freq()[e as usize], f);
                    lane_cursor += 1;
                }
            }
            assert_eq!(lane_cursor, csr.lane_range(v).end);
        }
    }

    #[test]
    fn post_csr_covers_out_edges() {
        let g = sample_graph();
        let csr = g.post_csr();
        let total_real: usize = (0..g.num_real())
            .map(|v| {
                g.post(NodeId::from_index(v))
                    .iter()
                    .filter(|&&(u, _)| !g.is_artificial(u))
                    .count()
            })
            .sum();
        assert_eq!(csr.num_lanes(), total_real);
    }

    #[test]
    fn zero_frequency_node_has_no_artificial_entry() {
        let mut log = EventLog::new();
        let _ghost = log.intern("ghost");
        log.push_trace(["a"]);
        let g = DependencyGraph::from_log(&log);
        let ghost = g.node_by_name("ghost").unwrap().index();
        let csr = g.pre_csr();
        assert!(csr.entries(ghost).is_empty());
        assert!(csr.art_freq(ghost).is_nan());
        assert!(csr.lane_range(ghost).is_empty());
    }

    #[test]
    fn parts_round_trip_losslessly() {
        let g = sample_graph();
        for csr in [g.pre_csr(), g.post_csr()] {
            let rebuilt = NeighborCsr::try_from_parts(csr.to_parts()).unwrap();
            assert_eq!(rebuilt, csr);
        }
    }

    #[test]
    fn corrupt_parts_are_rejected() {
        let csr = sample_graph().pre_csr();
        let good = csr.to_parts();
        type Mutation = Box<dyn Fn(&mut CsrParts)>;
        let cases: Vec<Mutation> = vec![
            Box::new(|p| p.off.pop().map(|_| ()).unwrap()),
            Box::new(|p| p.off[0] = 1),
            Box::new(|p| {
                let last = p.off.len() - 1;
                p.off[last] += 1;
            }),
            Box::new(|p| p.lane_off[1] = p.lane_off[2] + 1),
            Box::new(|p| p.ent_lane[0] = p.ent_lane[0].wrapping_add(1)),
            Box::new(|p| p.lane_src[0] = 9999),
            Box::new(|p| p.lane_freq[0] = f64::INFINITY),
            Box::new(|p| p.lane_freq.pop().map(|_| ()).unwrap()),
            Box::new(|p| p.art_freq[0] = f64::NAN),
        ];
        for (i, mutate) in cases.iter().enumerate() {
            let mut bad = good.clone();
            mutate(&mut bad);
            assert!(
                matches!(
                    NeighborCsr::try_from_parts(bad),
                    Err(GraphError::CorruptCsr { .. })
                ),
                "corruption case {i} went undetected"
            );
        }
        assert!(NeighborCsr::try_from_parts(good).is_ok());
    }

    #[test]
    fn lanes_are_contiguous_per_node() {
        let g = sample_graph();
        let csr = g.pre_csr();
        let mut seen = 0usize;
        for v in 0..csr.num_nodes() {
            let r = csr.lane_range(v);
            assert_eq!(r.start, seen);
            seen = r.end;
        }
        assert_eq!(seen, csr.num_lanes());
    }
}
