//! Typed errors for dependency-graph construction and (de)serialization.

use ems_error::EmsError;
use std::fmt;

/// Errors raised when building or validating a [`crate::DependencyGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// `names` and `node_freq` disagree in length.
    ShapeMismatch {
        /// Number of node names supplied.
        names: usize,
        /// Number of node frequencies supplied.
        freqs: usize,
    },
    /// An edge references a node index outside `0..nodes`.
    EndpointOutOfRange {
        /// Edge source index.
        from: usize,
        /// Edge target index.
        to: usize,
        /// Number of real nodes.
        nodes: usize,
    },
    /// A node frequency is NaN, infinite, or outside `[0, 1]`.
    ///
    /// Normalized frequencies (Definition 1) are fractions of traces; zero is
    /// legal for alphabet entries that never occur.
    BadNodeFrequency {
        /// Name of the offending node.
        node: String,
        /// The invalid frequency value.
        value: f64,
    },
    /// An edge frequency is NaN, infinite, or outside `(0, 1]`.
    ///
    /// An edge exists only when its pair occurs in at least one trace, so a
    /// zero (or negative) edge frequency is always invalid.
    BadEdgeFrequency {
        /// Name of the edge's source node.
        from: String,
        /// Name of the edge's target node.
        to: String,
        /// The invalid frequency value.
        value: f64,
    },
    /// The source log has no traces, so no frequencies can be normalized.
    EmptyLog,
    /// A CSV edge list could not be parsed (line numbers are 1-based; 0 means
    /// the document itself was unusable).
    Csv {
        /// 1-based line number of the offending row.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Deserialized CSR parts are structurally inconsistent (length or
    /// offset invariants violated, lane ids out of range).
    CorruptCsr {
        /// Human-readable description of the violated invariant.
        message: String,
    },
    /// Deserialized sketch parts are structurally inconsistent (class ids
    /// out of range, multiplicity/degree sums off, unsorted class table).
    CorruptSketch {
        /// Human-readable description of the violated invariant.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::ShapeMismatch { names, freqs } => {
                write!(f, "{names} node names but {freqs} node frequencies")
            }
            GraphError::EndpointOutOfRange { from, to, nodes } => {
                write!(f, "edge ({from}, {to}) out of range for {nodes} nodes")
            }
            GraphError::BadNodeFrequency { node, value } => {
                write!(
                    f,
                    "node {node:?} has invalid frequency {value} (want [0, 1])"
                )
            }
            GraphError::BadEdgeFrequency { from, to, value } => {
                write!(
                    f,
                    "edge ({from:?}, {to:?}) has invalid frequency {value} (want (0, 1])"
                )
            }
            GraphError::EmptyLog => write!(f, "event log has no traces"),
            GraphError::Csv { line, message } => write!(f, "CSV line {line}: {message}"),
            GraphError::CorruptCsr { message } => write!(f, "corrupt CSR parts: {message}"),
            GraphError::CorruptSketch { message } => {
                write!(f, "corrupt sketch parts: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<GraphError> for EmsError {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::Csv { line, message } => EmsError::Parse {
                offset: Some(line),
                message,
            },
            GraphError::EmptyLog => EmsError::Input {
                message: e.to_string(),
            },
            other => EmsError::Graph {
                message: other.to_string(),
            },
        }
    }
}
