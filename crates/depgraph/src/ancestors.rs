//! Ancestor sets `AN(v)` — every node from which `v` is reachable — used by
//! the unchanged-similarity pruning of composite matching (Proposition 4):
//! if `AN(v) ∩ U = ∅` for the freshly merged composite `U`, similarities
//! involving `v` cannot change and need not be recomputed.

use crate::graph::{DependencyGraph, NodeId};

/// Computes, for every node `v`, the set of *real* ancestors of `v`: real
/// nodes `u` with a directed path `u →* v` that does not pass through the
/// artificial event.
///
/// Paths through `v^X` are excluded for the same reason `l(v)` excludes them:
/// similarities of pairs involving `v^X` are pinned, so change cannot flow
/// through it. The result is a vector of sorted ancestor lists indexed by
/// node.
pub fn ancestor_sets(g: &DependencyGraph) -> Vec<Vec<NodeId>> {
    reachability_sets(g, true)
}

/// The mirror of [`ancestor_sets`]: for every node `v`, the set of *real*
/// descendants — real nodes `u` with a path `v →* u` avoiding the artificial
/// event. Needed to freeze the *backward* similarity (which propagates over
/// post-sets) during composite matching.
pub fn descendant_sets(g: &DependencyGraph) -> Vec<Vec<NodeId>> {
    reachability_sets(g, false)
}

fn reachability_sets(g: &DependencyGraph, ancestors: bool) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let x = g.artificial();
    // Reachability via DFS from each node over pre (ancestors) or post
    // (descendants) edges, skipping the artificial node. Graphs are small
    // (≤ hundreds of nodes); O(V·E) is fine and keeps the code simple.
    let neighbors = |v: usize| -> &[(NodeId, f64)] {
        if ancestors {
            g.pre(NodeId::from_index(v))
        } else {
            g.post(NodeId::from_index(v))
        }
    };
    let mut result = vec![Vec::new(); n];
    let mut visited = vec![false; n];
    for (v, out) in result.iter_mut().enumerate() {
        if v == x.index() {
            continue;
        }
        visited.iter_mut().for_each(|b| *b = false);
        let mut stack: Vec<usize> = neighbors(v)
            .iter()
            .filter(|&&(s, _)| s != x)
            .map(|&(s, _)| s.index())
            .collect();
        while let Some(u) = stack.pop() {
            if visited[u] {
                continue;
            }
            visited[u] = true;
            for &(s, _) in neighbors(u) {
                if s != x && !visited[s.index()] {
                    stack.push(s.index());
                }
            }
        }
        *out = (0..n)
            .filter(|&u| visited[u])
            .map(NodeId::from_index)
            .collect();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    #[test]
    fn chain_ancestors() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c"]);
        let g = DependencyGraph::from_log(&log);
        let an = ancestor_sets(&g);
        let id = |n: &str| g.node_by_name(n).unwrap();
        assert!(an[id("a").index()].is_empty());
        assert_eq!(an[id("b").index()], vec![id("a")]);
        let mut c_anc = an[id("c").index()].clone();
        c_anc.sort();
        assert_eq!(c_anc, vec![id("a"), id("b")]);
    }

    #[test]
    fn ancestors_exclude_paths_through_artificial() {
        let mut log = EventLog::new();
        log.push_trace(["a"]);
        log.push_trace(["b"]);
        let g = DependencyGraph::from_log(&log);
        let an = ancestor_sets(&g);
        // a and b are only connected via v^X; neither is the other's ancestor.
        assert!(an[g.node_by_name("a").unwrap().index()].is_empty());
        assert!(an[g.node_by_name("b").unwrap().index()].is_empty());
    }

    #[test]
    fn cycle_members_are_mutual_ancestors_including_self() {
        let mut log = EventLog::new();
        log.push_trace(["x", "y", "x"]);
        let g = DependencyGraph::from_log(&log);
        let an = ancestor_sets(&g);
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        assert!(an[x.index()].contains(&y));
        assert!(an[x.index()].contains(&x)); // via the cycle
        assert!(an[y.index()].contains(&x));
    }

    #[test]
    fn descendants_mirror_ancestors() {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c"]);
        let g = DependencyGraph::from_log(&log);
        let an = ancestor_sets(&g);
        let dn = descendant_sets(&g);
        for (v, set) in an.iter().enumerate().take(g.num_real()) {
            for &u in set {
                assert!(dn[u.index()].iter().any(|&w| w.index() == v));
            }
        }
        let a = g.node_by_name("a").unwrap();
        assert_eq!(dn[a.index()].len(), 2);
    }

    #[test]
    fn example8_disjoint_ancestors() {
        // Example 8: with U = {E, F}, AN(A..D) ∩ U = ∅ in Figure 1(c).
        let mut log = EventLog::new();
        log.push_trace(["A", "C", "D", "E", "F"]);
        log.push_trace(["B", "C", "D", "E", "F"]);
        let g = DependencyGraph::from_log(&log);
        let an = ancestor_sets(&g);
        let e = g.node_by_name("E").unwrap();
        let f = g.node_by_name("F").unwrap();
        for name in ["A", "B", "C", "D"] {
            let v = g.node_by_name(name).unwrap();
            assert!(!an[v.index()].contains(&e));
            assert!(!an[v.index()].contains(&f));
        }
        // But E is an ancestor of F.
        assert!(an[f.index()].contains(&e));
    }
}
