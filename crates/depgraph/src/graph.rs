//! The dependency graph structure and its construction from event logs.

use crate::GraphError;
use ems_events::{EventId, EventLog, Fnv1a, LabelSym, SymbolTable};
use std::sync::Arc;

/// Index of a node in a [`DependencyGraph`].
///
/// Real events occupy indices `0..num_real()`, aligned with the source log's
/// [`EventId`]s when the graph is built by [`DependencyGraph::from_log`]. The
/// artificial event `v^X` is the last index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize);
        NodeId(i as u32)
    }
}

impl From<EventId> for NodeId {
    fn from(e: EventId) -> Self {
        NodeId(e.0)
    }
}

/// An event dependency graph with normalized frequencies (Definition 1),
/// augmented with the artificial event `v^X` (Section 2).
///
/// Adjacency is stored twice — in-neighbors (`pre`) and out-neighbors
/// (`post`) — because the similarity function walks pre-sets for the forward
/// direction and post-sets for the backward direction. Each adjacency entry
/// carries the edge's normalized frequency, so the similarity kernel never
/// needs a hash lookup.
///
/// Node labels are stored columnar as interned [`LabelSym`]s against a
/// [`SymbolTable`] snapshot; strings are materialized only at the report edge
/// (via [`name`](Self::name)). Graphs built through
/// [`from_log_in`](Self::from_log_in) share one session-wide table, so equal
/// labels compare equal as `u32`s across graphs.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    /// Label symbols of real nodes; `syms.len()` is the number of real events.
    syms: Vec<LabelSym>,
    /// Resolves `syms` to names (may contain symbols of other session logs).
    table: Arc<SymbolTable>,
    /// Normalized event frequency `f(v)` per real node.
    node_freq: Vec<f64>,
    /// In-neighbors of each node: `(source, f(source, node))`.
    pre: Vec<Vec<(NodeId, f64)>>,
    /// Out-neighbors of each node: `(target, f(node, target))`.
    post: Vec<Vec<(NodeId, f64)>>,
}

impl DependencyGraph {
    /// Builds the dependency graph of `log` per Definition 1 and adds the
    /// artificial event and its edges per Section 2.
    ///
    /// Real node `i` corresponds to the log's event id `i`; the artificial
    /// node is [`artificial`](Self::artificial).
    pub fn from_log(log: &EventLog) -> Self {
        let mut table = SymbolTable::new();
        Self::from_log_in(log, &mut table)
    }

    /// Like [`from_log`](Self::from_log), but interns labels into a shared
    /// (typically session-owned) `table`, so symbols compare equal across all
    /// graphs built against it. The graph keeps a snapshot of the table for
    /// report-edge name resolution; later growth of `table` does not affect
    /// the snapshot.
    pub fn from_log_in(log: &EventLog, table: &mut SymbolTable) -> Self {
        let n = log.alphabet_size();
        let total = log.num_traces();
        let mut node_count = vec![0usize; n];
        // Dense pair-count matrix: real logs have small alphabets (<= a few
        // hundred), so n*n counters beat a hash map. Pairs and nodes count at
        // most once per trace, tracked via per-trace marks reset afterwards.
        let mut pair_count = vec![0u32; n * n];
        let mut seen_pair = vec![false; n * n];
        let mut seen_node = vec![false; n];
        let mut touched_pairs = Vec::new();
        let mut touched_nodes = Vec::new();
        for trace in log.traces() {
            for (a, b) in trace.consecutive_pairs() {
                let k = a.index() * n + b.index();
                if !seen_pair[k] {
                    seen_pair[k] = true;
                    pair_count[k] += 1;
                    touched_pairs.push(k);
                }
            }
            for &e in trace.events() {
                if !seen_node[e.index()] {
                    seen_node[e.index()] = true;
                    node_count[e.index()] += 1;
                    touched_nodes.push(e.index());
                }
            }
            for k in touched_pairs.drain(..) {
                seen_pair[k] = false;
            }
            for i in touched_nodes.drain(..) {
                seen_node[i] = false;
            }
        }
        let node_freq: Vec<f64> = node_count
            .iter()
            .map(|&c| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            })
            .collect();
        let mut g = DependencyGraph {
            syms: table.symbolize(log),
            table: Arc::new(table.clone()),
            node_freq,
            pre: vec![Vec::new(); n + 1],
            post: vec![Vec::new(); n + 1],
        };
        for a in 0..n {
            for b in 0..n {
                let c = pair_count[a * n + b];
                if c > 0 {
                    let f = c as f64 / total as f64;
                    g.post[a].push((NodeId::from_index(b), f));
                    g.pre[b].push((NodeId::from_index(a), f));
                }
            }
        }
        // Artificial event: edges (v^X, v) and (v, v^X) with weight f(v),
        // but only for events that actually occur (f(v) > 0).
        let x = g.artificial();
        for v in 0..n {
            let f = g.node_freq[v];
            if f > 0.0 {
                let v = NodeId::from_index(v);
                g.post[x.index()].push((v, f));
                g.pre[v.index()].push((x, f));
                g.post[v.index()].push((x, f));
                g.pre[x.index()].push((v, f));
            }
        }
        g
    }

    /// Builds the graph of a log like [`from_log`](Self::from_log), but
    /// rejects logs with no traces — frequencies cannot be normalized over an
    /// empty trace multiset.
    pub fn try_from_log(log: &EventLog) -> Result<Self, GraphError> {
        if log.num_traces() == 0 {
            return Err(GraphError::EmptyLog);
        }
        Ok(Self::from_log(log))
    }

    /// Builds a graph directly from explicit parts — used by tests and by the
    /// composite matcher when patching graphs.
    ///
    /// `edges` are `(from, to, frequency)` over real node indices; artificial
    /// edges are added automatically from `node_freq`.
    ///
    /// # Panics
    ///
    /// Panics when shapes disagree or an edge endpoint is out of range. Use
    /// [`try_from_parts`](Self::try_from_parts) for untrusted inputs.
    pub fn from_parts(
        names: Vec<String>,
        node_freq: Vec<f64>,
        edges: &[(usize, usize, f64)],
    ) -> Self {
        let mut table = SymbolTable::new();
        Self::from_parts_in(names, node_freq, edges, &mut table)
    }

    /// Like [`from_parts`](Self::from_parts), but interns labels into a
    /// shared (typically session-owned) `table` — the parts-level analogue
    /// of [`from_log_in`](Self::from_log_in), used when rehydrating graphs
    /// from durable snapshots inside a session.
    ///
    /// # Panics
    ///
    /// Panics when shapes disagree or an edge endpoint is out of range. Use
    /// [`try_from_parts_in`](Self::try_from_parts_in) for untrusted inputs.
    pub fn from_parts_in(
        names: Vec<String>,
        node_freq: Vec<f64>,
        edges: &[(usize, usize, f64)],
        table: &mut SymbolTable,
    ) -> Self {
        assert_eq!(names.len(), node_freq.len());
        let n = names.len();
        let syms = names.iter().map(|name| table.intern(name)).collect();
        let mut g = DependencyGraph {
            syms,
            table: Arc::new(table.clone()),
            node_freq,
            pre: vec![Vec::new(); n + 1],
            post: vec![Vec::new(); n + 1],
        };
        for &(a, b, f) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            g.post[a].push((NodeId::from_index(b), f));
            g.pre[b].push((NodeId::from_index(a), f));
        }
        let x = g.artificial();
        for v in 0..n {
            let f = g.node_freq[v];
            if f > 0.0 {
                let v = NodeId::from_index(v);
                g.post[x.index()].push((v, f));
                g.pre[v.index()].push((x, f));
                g.post[v.index()].push((x, f));
                g.pre[x.index()].push((v, f));
            }
        }
        g
    }

    /// Validating variant of [`from_parts`](Self::from_parts): returns a
    /// typed error instead of panicking, and additionally rejects NaN,
    /// infinite, negative, or out-of-range frequencies (node frequencies must
    /// lie in `[0, 1]`, edge frequencies in `(0, 1]`).
    pub fn try_from_parts(
        names: Vec<String>,
        node_freq: Vec<f64>,
        edges: &[(usize, usize, f64)],
    ) -> Result<Self, GraphError> {
        let mut table = SymbolTable::new();
        Self::try_from_parts_in(names, node_freq, edges, &mut table)
    }

    /// Validating variant of [`from_parts_in`](Self::from_parts_in): the
    /// shared-table analogue of [`try_from_parts`](Self::try_from_parts).
    pub fn try_from_parts_in(
        names: Vec<String>,
        node_freq: Vec<f64>,
        edges: &[(usize, usize, f64)],
        table: &mut SymbolTable,
    ) -> Result<Self, GraphError> {
        if names.len() != node_freq.len() {
            return Err(GraphError::ShapeMismatch {
                names: names.len(),
                freqs: node_freq.len(),
            });
        }
        let n = names.len();
        for (i, &f) in node_freq.iter().enumerate() {
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(GraphError::BadNodeFrequency {
                    node: names[i].clone(),
                    value: f,
                });
            }
        }
        for &(a, b, f) in edges {
            if a >= n || b >= n {
                return Err(GraphError::EndpointOutOfRange {
                    from: a,
                    to: b,
                    nodes: n,
                });
            }
            if !f.is_finite() || f <= 0.0 || f > 1.0 {
                return Err(GraphError::BadEdgeFrequency {
                    from: names[a].clone(),
                    to: names[b].clone(),
                    value: f,
                });
            }
        }
        Ok(Self::from_parts_in(names, node_freq, edges, table))
    }

    /// Checks the frequency-labeling invariants of Definition 1: every node
    /// frequency finite and in `[0, 1]`, every real edge frequency finite and
    /// in `(0, 1]`.
    ///
    /// Graphs built by [`from_log`](Self::from_log) always validate; this is
    /// a guard for graphs deserialized or assembled from untrusted parts.
    /// Cycles are *not* an error: nodes on or downstream of a cycle simply
    /// get `l(v) = ∞` (see [`crate::longest_distances`]) and are never frozen
    /// early by Proposition 2.
    pub fn validate(&self) -> Result<(), GraphError> {
        for v in self.real_nodes() {
            let f = self.node_frequency(v);
            if !f.is_finite() || !(0.0..=1.0).contains(&f) {
                return Err(GraphError::BadNodeFrequency {
                    node: self.name(v).to_owned(),
                    value: f,
                });
            }
        }
        for (a, b, f) in self.real_edges() {
            if !f.is_finite() || f <= 0.0 || f > 1.0 {
                return Err(GraphError::BadEdgeFrequency {
                    from: self.name(a).to_owned(),
                    to: self.name(b).to_owned(),
                    value: f,
                });
            }
        }
        Ok(())
    }

    /// Number of real (non-artificial) nodes.
    pub fn num_real(&self) -> usize {
        self.syms.len()
    }

    /// Total node count including the artificial event.
    pub fn num_nodes(&self) -> usize {
        self.syms.len() + 1
    }

    /// The artificial event `v^X`.
    pub fn artificial(&self) -> NodeId {
        NodeId::from_index(self.syms.len())
    }

    /// Whether `v` is the artificial event.
    pub fn is_artificial(&self, v: NodeId) -> bool {
        v.index() == self.syms.len()
    }

    /// The name of a real node; the artificial node is rendered `"v^X"`.
    /// This is the report edge — hot paths should compare symbols instead.
    pub fn name(&self, v: NodeId) -> &str {
        if self.is_artificial(v) {
            "v^X"
        } else {
            self.table.resolve(self.syms[v.index()])
        }
    }

    /// The label symbol of a real node, meaningful relative to
    /// [`symbols`](Self::symbols) (and to any table this graph was built in).
    pub fn sym(&self, v: NodeId) -> LabelSym {
        self.syms[v.index()]
    }

    /// The per-node label-symbol column for real nodes.
    pub fn syms(&self) -> &[LabelSym] {
        &self.syms
    }

    /// The symbol-table snapshot resolving this graph's labels.
    pub fn symbols(&self) -> &SymbolTable {
        &self.table
    }

    /// Finds a real node by label symbol.
    pub fn node_by_sym(&self, sym: LabelSym) -> Option<NodeId> {
        self.syms
            .iter()
            .position(|&s| s == sym)
            .map(NodeId::from_index)
    }

    /// Finds a real node by name (report/test edge; `O(1)` table lookup plus
    /// an `O(n)` position scan over the small alphabet).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.table.get(name).and_then(|s| self.node_by_sym(s))
    }

    /// Content fingerprint over names, frequencies, and adjacency, stable
    /// across processes (FNV-1a). Two graphs with equal fingerprints are
    /// equal for matching purposes; used as a substrate cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.num_real());
        for v in self.real_nodes() {
            let name = self.name(v);
            h.write_usize(name.len());
            h.write(name.as_bytes());
            h.write_u64(self.node_freq[v.index()].to_bits());
        }
        for post in &self.post {
            h.write_usize(post.len());
            for &(t, f) in post {
                h.write_u32(t.0);
                h.write_u64(f.to_bits());
            }
        }
        h.finish()
    }

    /// Normalized frequency `f(v)` of a real node (1.0 for the artificial
    /// event — it virtually starts/ends every trace).
    pub fn node_frequency(&self, v: NodeId) -> f64 {
        if self.is_artificial(v) {
            1.0
        } else {
            self.node_freq[v.index()]
        }
    }

    /// The pre-set `•v` with edge frequencies `f(v', v)`.
    pub fn pre(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.pre[v.index()]
    }

    /// The post-set `v•` with edge frequencies `f(v, v')`.
    pub fn post(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.post[v.index()]
    }

    /// Iterates all real nodes.
    pub fn real_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.syms.len()).map(NodeId::from_index)
    }

    /// Looks up the frequency of edge `(a, b)`, if present.
    pub fn edge_frequency(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.post[a.index()]
            .iter()
            .find(|&&(t, _)| t == b)
            .map(|&(_, f)| f)
    }

    /// Number of edges, including artificial ones.
    pub fn num_edges(&self) -> usize {
        self.post.iter().map(Vec::len).sum()
    }

    /// Average degree (out-degree) over all nodes — the `d_avg` of the
    /// paper's complexity analysis.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Removes a real edge (used by frequency filtering). Artificial edges
    /// cannot be removed. Returns whether the edge existed.
    pub(crate) fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        debug_assert!(!self.is_artificial(a) && !self.is_artificial(b));
        let before = self.post[a.index()].len();
        self.post[a.index()].retain(|&(t, _)| t != b);
        self.pre[b.index()].retain(|&(s, _)| s != a);
        before != self.post[a.index()].len()
    }

    /// All real edges `(from, to, f)` in deterministic order.
    pub fn real_edges(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut out = Vec::new();
        for a in self.real_nodes() {
            for &(b, f) in &self.post[a.index()] {
                if !self.is_artificial(b) {
                    out.push((a, b, f));
                }
            }
        }
        out
    }
}

impl PartialEq for DependencyGraph {
    /// Structural equality: two graphs are equal when they have the same
    /// node names (in order), frequencies, and adjacency — regardless of
    /// which symbol table each was interned into.
    fn eq(&self, other: &Self) -> bool {
        self.node_freq == other.node_freq
            && self.pre == other.pre
            && self.post == other.post
            && self.syms.len() == other.syms.len()
            && self
                .syms
                .iter()
                .zip(&other.syms)
                .all(|(&a, &b)| self.table.resolve(a) == other.table.resolve(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    /// The L1 fragment of Figure 1: traces over A..F with f(A)=0.4, f(B)=0.6.
    pub(crate) fn figure1_l1() -> EventLog {
        let mut log = EventLog::new();
        log.push_trace(["A", "C", "D", "E", "F"]);
        log.push_trace(["A", "C", "D", "F", "E"]);
        log.push_trace(["B", "C", "D", "E", "F"]);
        log.push_trace(["B", "C", "D", "F", "E"]);
        log.push_trace(["B", "C", "D", "E", "F"]);
        log
    }

    #[test]
    fn frequencies_match_figure_2a() {
        let g = DependencyGraph::from_log(&figure1_l1());
        let a = g.node_by_name("A").unwrap();
        let b = g.node_by_name("B").unwrap();
        let c = g.node_by_name("C").unwrap();
        assert!((g.node_frequency(a) - 0.4).abs() < 1e-12);
        assert!((g.node_frequency(b) - 0.6).abs() < 1e-12);
        assert!((g.edge_frequency(a, c).unwrap() - 0.4).abs() < 1e-12);
        assert!((g.edge_frequency(b, c).unwrap() - 0.6).abs() < 1e-12);
        assert!((g.edge_frequency(c, g.node_by_name("D").unwrap()).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(g.edge_frequency(c, a), None);
    }

    #[test]
    fn artificial_event_connects_to_every_real_node() {
        let g = DependencyGraph::from_log(&figure1_l1());
        let x = g.artificial();
        assert!(g.is_artificial(x));
        assert_eq!(g.post(x).len(), g.num_real());
        assert_eq!(g.pre(x).len(), g.num_real());
        // f(v^X, C) = f(C) = 1.0 (Example 3).
        let c = g.node_by_name("C").unwrap();
        assert!((g.edge_frequency(x, c).unwrap() - 1.0).abs() < 1e-12);
        // f(v^X, A) = f(A) = 0.4 (Example 3).
        let a = g.node_by_name("A").unwrap();
        assert!((g.edge_frequency(x, a).unwrap() - 0.4).abs() < 1e-12);
        assert!((g.node_frequency(x) - 1.0).abs() < 1e-12);
        assert_eq!(g.name(x), "v^X");
    }

    #[test]
    fn pre_and_post_are_consistent() {
        let g = DependencyGraph::from_log(&figure1_l1());
        for a in 0..g.num_nodes() {
            let a = NodeId::from_index(a);
            for &(b, f) in g.post(a) {
                assert!(g
                    .pre(b)
                    .iter()
                    .any(|&(s, fs)| s == a && (fs - f).abs() < 1e-15));
            }
        }
    }

    #[test]
    fn pair_counted_once_per_trace() {
        let mut log = EventLog::new();
        log.push_trace(["x", "y", "z", "x", "y"]); // xy twice in one trace
        log.push_trace(["z"]);
        let g = DependencyGraph::from_log(&log);
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        assert!((g.edge_frequency(x, y).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_log_builds_empty_graph() {
        let g = DependencyGraph::from_log(&EventLog::new());
        assert_eq!(g.num_real(), 0);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn unused_alphabet_entries_get_no_artificial_edges() {
        let mut log = EventLog::new();
        let _ghost = log.intern("ghost");
        log.push_trace(["a"]);
        let g = DependencyGraph::from_log(&log);
        let ghost = g.node_by_name("ghost").unwrap();
        assert_eq!(g.node_frequency(ghost), 0.0);
        assert!(g.pre(ghost).is_empty());
        assert!(g.post(ghost).is_empty());
    }

    #[test]
    fn from_parts_builds_expected_graph() {
        let g = DependencyGraph::from_parts(
            vec!["a".into(), "b".into()],
            vec![1.0, 0.5],
            &[(0, 1, 0.5)],
        );
        let a = NodeId(0);
        let b = NodeId(1);
        assert_eq!(g.edge_frequency(a, b), Some(0.5));
        // a: pre = {vX}, post = {b, vX}
        assert_eq!(g.pre(a).len(), 1);
        assert_eq!(g.post(a).len(), 2);
        assert_eq!(g.num_edges(), 1 + 4);
    }

    #[test]
    fn remove_edge_updates_both_directions() {
        let mut g = DependencyGraph::from_parts(
            vec!["a".into(), "b".into()],
            vec![1.0, 1.0],
            &[(0, 1, 0.7)],
        );
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_frequency(NodeId(0), NodeId(1)), None);
        assert!(!g.pre(NodeId(1)).iter().any(|&(s, _)| s == NodeId(0)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn try_from_parts_rejects_bad_inputs() {
        let names = || vec!["a".to_string(), "b".to_string()];
        assert_eq!(
            DependencyGraph::try_from_parts(names(), vec![1.0], &[]),
            Err(GraphError::ShapeMismatch { names: 2, freqs: 1 })
        );
        assert_eq!(
            DependencyGraph::try_from_parts(names(), vec![1.0, 0.5], &[(0, 2, 0.5)]),
            Err(GraphError::EndpointOutOfRange {
                from: 0,
                to: 2,
                nodes: 2
            })
        );
        assert!(matches!(
            DependencyGraph::try_from_parts(names(), vec![f64::NAN, 0.5], &[]),
            Err(GraphError::BadNodeFrequency { .. })
        ));
        assert!(matches!(
            DependencyGraph::try_from_parts(names(), vec![-0.1, 0.5], &[]),
            Err(GraphError::BadNodeFrequency { .. })
        ));
        assert!(matches!(
            DependencyGraph::try_from_parts(names(), vec![1.0, 0.5], &[(0, 1, 0.0)]),
            Err(GraphError::BadEdgeFrequency { .. })
        ));
        assert!(matches!(
            DependencyGraph::try_from_parts(names(), vec![1.0, 0.5], &[(0, 1, f64::NAN)]),
            Err(GraphError::BadEdgeFrequency { .. })
        ));
        let ok = DependencyGraph::try_from_parts(names(), vec![1.0, 0.5], &[(0, 1, 0.5)]);
        assert!(ok.is_ok());
    }

    #[test]
    fn try_from_log_rejects_empty_log() {
        assert_eq!(
            DependencyGraph::try_from_log(&EventLog::new()),
            Err(GraphError::EmptyLog)
        );
        assert!(DependencyGraph::try_from_log(&figure1_l1()).is_ok());
    }

    #[test]
    fn validate_accepts_log_graphs_and_rejects_corrupt_parts() {
        assert_eq!(DependencyGraph::from_log(&figure1_l1()).validate(), Ok(()));
        // Bypass try_from_parts to simulate corruption after construction.
        let g = DependencyGraph::from_parts(
            vec!["a".into(), "b".into()],
            vec![1.0, 0.5],
            &[(0, 1, 7.5)],
        );
        assert!(matches!(
            g.validate(),
            Err(GraphError::BadEdgeFrequency { .. })
        ));
    }

    #[test]
    fn shared_table_symbols_align_across_graphs() {
        let mut table = SymbolTable::new();
        let mut l1 = EventLog::new();
        l1.push_trace(["B", "A"]);
        let mut l2 = EventLog::new();
        l2.push_trace(["A", "C"]);
        let g1 = DependencyGraph::from_log_in(&l1, &mut table);
        let g2 = DependencyGraph::from_log_in(&l2, &mut table);
        let a1 = g1.node_by_name("A").unwrap();
        let a2 = g2.node_by_name("A").unwrap();
        assert_eq!(g1.sym(a1), g2.sym(a2));
        assert_ne!(g1.sym(g1.node_by_name("B").unwrap()), g2.sym(a2));
        assert_eq!(g1.node_by_sym(g1.sym(a1)), Some(a1));
        // "C" is in the shared table but not in g1.
        assert_eq!(g1.node_by_name("C"), None);
        // Equality is structural, independent of the interning table.
        assert_eq!(g1, DependencyGraph::from_log(&l1));
    }

    #[test]
    fn fingerprint_tracks_content_not_symbol_table() {
        let log = figure1_l1();
        let mut table = SymbolTable::new();
        table.intern("padding-so-symbol-ids-shift");
        let g1 = DependencyGraph::from_log(&log);
        let g2 = DependencyGraph::from_log_in(&log, &mut table);
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        let mut other = figure1_l1();
        other.push_trace(["A"]);
        assert_ne!(
            g1.fingerprint(),
            DependencyGraph::from_log(&other).fingerprint()
        );
    }

    #[test]
    fn parts_round_trip_preserves_fingerprint() {
        let g = DependencyGraph::from_log(&figure1_l1());
        let names: Vec<String> = g.real_nodes().map(|v| g.name(v).to_owned()).collect();
        let freqs: Vec<f64> = g.real_nodes().map(|v| g.node_frequency(v)).collect();
        let edges: Vec<(usize, usize, f64)> = g
            .real_edges()
            .into_iter()
            .map(|(a, b, f)| (a.index(), b.index(), f))
            .collect();
        let mut table = SymbolTable::new();
        table.intern("unrelated-session-symbol");
        let rebuilt = DependencyGraph::from_parts_in(names, freqs, &edges, &mut table);
        assert_eq!(rebuilt, g);
        assert_eq!(rebuilt.fingerprint(), g.fingerprint());
    }

    #[test]
    fn real_edges_excludes_artificial() {
        let g = DependencyGraph::from_log(&figure1_l1());
        for (a, b, _) in g.real_edges() {
            assert!(!g.is_artificial(a));
            assert!(!g.is_artificial(b));
        }
    }
}
