#![forbid(unsafe_code)]
//! Event dependency graphs (Definition 1 of *Matching Heterogeneous Event
//! Data*, SIGMOD 2014) with the artificial-event augmentation that enables
//! dislocated matching.
//!
//! A dependency graph `G(V, E, f)` has one vertex per event of a log, an edge
//! `(v1, v2)` whenever `v1 v2` occur consecutively in at least one trace, and
//! a labeling `f` of *normalized frequencies*:
//!
//! * `f(v)` — fraction of traces containing `v`;
//! * `f(v1, v2)` — fraction of traces where `v1 v2` occur consecutively at
//!   least once.
//!
//! To support dislocated matching, an **artificial event** `v^X` is added as
//! the virtual beginning/end of all traces, with edges `(v^X, v)` and
//! `(v, v^X)` weighted `f(v)` for every real event `v` (Section 2).
//!
//! The crate also provides:
//!
//! * minimum-frequency edge filtering (the accuracy/efficiency trade-off of
//!   Section 2),
//! * the longest-distance analysis `l(v)` that powers early-convergence
//!   pruning (Proposition 2), cycle-aware via Tarjan SCC condensation,
//! * ancestor sets for the unchanged-similarity pruning of composite matching
//!   (Proposition 4),
//! * Graphviz DOT export for debugging.
//!
//! # Example
//!
//! ```
//! use ems_events::EventLog;
//! use ems_depgraph::DependencyGraph;
//!
//! let mut log = EventLog::new();
//! log.push_trace(["A", "C", "D"]);
//! log.push_trace(["B", "C", "D"]);
//! let g = DependencyGraph::from_log(&log);
//! let c = g.node_by_name("C").unwrap();
//! assert_eq!(g.node_frequency(c), 1.0);
//! // pre-set of C: A, B and the artificial event.
//! assert_eq!(g.pre(c).len(), 3);
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

mod ancestors;
mod csr;
mod dot;
mod error;
mod filter;
mod graph;
mod longest;
mod metrics;
mod obs;
mod sketch;

pub use ancestors::{ancestor_sets, descendant_sets};
pub use csr::{CsrParts, NeighborCsr, ARTIFICIAL_ENTRY};
pub use dot::to_dot;
pub use error::GraphError;
pub use filter::filter_min_frequency;
pub use graph::{DependencyGraph, NodeId};
pub use longest::{longest_distances, longest_distances_backward, Distance};
pub use metrics::{from_edge_csv, to_edge_csv, GraphMetrics};
pub use obs::observe_graph;
pub use sketch::{BoundCombine, GraphSketch, LabelBound, VertexProfile, MINHASH_LANES};
