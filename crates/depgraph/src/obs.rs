//! Graph-construction telemetry: one call reports a built graph's shape
//! to an [`ems_obs::Recorder`] so a `--trace` run can explain downstream
//! engine cost (the pair space is `vertices(g1) × vertices(g2)`).

use crate::graph::DependencyGraph;
use ems_obs::Recorder;

/// Records `graph_vertices`, `graph_edges` and `graph_avg_degree` gauges
/// labeled with `side` (conventionally `"log1"` / `"log2"`).
pub fn observe_graph(g: &DependencyGraph, recorder: &Recorder, side: &str) {
    let labels = vec![("side".to_string(), side.to_string())];
    recorder.gauge_set("graph_vertices", labels.clone(), g.num_real() as f64);
    recorder.gauge_set("graph_edges", labels.clone(), g.real_edges().len() as f64);
    recorder.gauge_set("graph_avg_degree", labels, g.avg_degree());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_obs::Record;

    #[test]
    fn observe_reports_shape_gauges() {
        let g = DependencyGraph::from_parts(
            vec!["a".into(), "b".into()],
            vec![1.0, 1.0],
            &[(0, 1, 1.0)],
        );
        let rec = Recorder::new();
        observe_graph(&g, &rec, "log1");
        let records = rec.records();
        assert_eq!(records.len(), 3);
        match &records[0] {
            Record::Gauge {
                name,
                labels,
                value,
            } => {
                assert_eq!(name, "graph_vertices");
                assert_eq!(labels[0], ("side".to_string(), "log1".to_string()));
                assert_eq!(*value, 2.0);
            }
            other => panic!("expected gauge, got {other:?}"),
        }
        match &records[1] {
            Record::Gauge { name, value, .. } => {
                assert_eq!(name, "graph_edges");
                assert_eq!(*value, 1.0);
            }
            other => panic!("expected gauge, got {other:?}"),
        }
    }
}
