//! Structural metrics of dependency graphs — useful for sizing the
//! similarity computation (the paper's complexity is `O(k|V1||V2|d_avg)`)
//! and for sanity-checking synthetic workloads against real-log shapes.

use crate::graph::{DependencyGraph, NodeId};
use crate::longest::{longest_distances, Distance};
use crate::GraphError;

/// Aggregate structural metrics of a dependency graph (real nodes/edges
/// only; the artificial event is excluded everywhere).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of real nodes.
    pub nodes: usize,
    /// Number of real edges.
    pub edges: usize,
    /// Edge density `edges / (nodes * (nodes - 1))`.
    pub density: f64,
    /// Mean out-degree over real nodes (real edges only).
    pub mean_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of source nodes (no real predecessors).
    pub sources: usize,
    /// Number of sink nodes (no real successors).
    pub sinks: usize,
    /// Number of reciprocal edge pairs (`a→b` and `b→a` both present) —
    /// interleaving concurrency shows up here.
    pub reciprocal_pairs: usize,
    /// Number of nodes with an infinite longest distance from `v^X`
    /// (on or downstream of a cycle) — these never early-converge.
    pub cyclic_nodes: usize,
    /// Mean edge frequency.
    pub mean_edge_frequency: f64,
}

impl GraphMetrics {
    /// Computes the metrics of `g`.
    pub fn of(g: &DependencyGraph) -> Self {
        let n = g.num_real();
        let edges = g.real_edges();
        let x = g.artificial();
        let real_out = |v: NodeId| g.post(v).iter().filter(|&&(t, _)| t != x).count();
        let real_in = |v: NodeId| g.pre(v).iter().filter(|&&(s, _)| s != x).count();
        let mut reciprocal = 0usize;
        for &(a, b, _) in &edges {
            if a < b && g.edge_frequency(b, a).is_some() {
                reciprocal += 1;
            }
        }
        let distances = longest_distances(g);
        let cyclic = g
            .real_nodes()
            .filter(|v| distances[v.index()] == Distance::Infinite)
            .count();
        GraphMetrics {
            nodes: n,
            edges: edges.len(),
            density: if n > 1 {
                edges.len() as f64 / (n * (n - 1)) as f64
            } else {
                0.0
            },
            mean_degree: if n > 0 {
                edges.len() as f64 / n as f64
            } else {
                0.0
            },
            max_out_degree: g.real_nodes().map(real_out).max().unwrap_or(0),
            max_in_degree: g.real_nodes().map(real_in).max().unwrap_or(0),
            sources: g.real_nodes().filter(|&v| real_in(v) == 0).count(),
            sinks: g.real_nodes().filter(|&v| real_out(v) == 0).count(),
            reciprocal_pairs: reciprocal,
            cyclic_nodes: cyclic,
            mean_edge_frequency: if edges.is_empty() {
                0.0
            } else {
                edges.iter().map(|&(_, _, f)| f).sum::<f64>() / edges.len() as f64
            },
        }
    }
}

impl std::fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges (density {:.3}, mean degree {:.2}), \
             {} sources, {} sinks, {} reciprocal pairs, {} cyclic nodes",
            self.nodes,
            self.edges,
            self.density,
            self.mean_degree,
            self.sources,
            self.sinks,
            self.reciprocal_pairs,
            self.cyclic_nodes
        )
    }
}

/// Serializes the graph as an edge-list CSV: `from,to,frequency` with a
/// header, node frequencies as self-referencing rows (`v,v,f(v)` appears
/// only when a self-loop exists; node rows are written as `v,,f(v)`).
pub fn to_edge_csv(g: &DependencyGraph) -> String {
    let mut out = String::from("from,to,frequency\n");
    let esc = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    };
    for v in g.real_nodes() {
        out.push_str(&format!("{},,{}\n", esc(g.name(v)), g.node_frequency(v)));
    }
    for (a, b, f) in g.real_edges() {
        out.push_str(&format!("{},{},{}\n", esc(g.name(a)), esc(g.name(b)), f));
    }
    out
}

/// Parses the edge-list CSV produced by [`to_edge_csv`] back into a
/// dependency graph (artificial edges are re-derived from the node rows).
///
/// Accepts exactly the dialect `to_edge_csv` writes: a `from,to,frequency`
/// header, node rows with an empty `to` field, then edge rows. Quoted fields
/// may contain commas and doubled quotes.
pub fn from_edge_csv(csv: &str) -> Result<DependencyGraph, GraphError> {
    let err = |line: usize, message: String| GraphError::Csv { line, message };
    let mut lines = csv.lines();
    let header = lines.next().ok_or_else(|| err(0, "empty CSV".into()))?;
    if header.trim() != "from,to,frequency" {
        return Err(err(1, format!("unexpected header `{header}`")));
    }
    let mut names: Vec<String> = Vec::new();
    let mut freqs: Vec<f64> = Vec::new();
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    let index_of = |names: &[String], n: &str, line: usize| -> Result<usize, GraphError> {
        names
            .iter()
            .position(|x| x == n)
            .ok_or_else(|| err(line, format!("edge references unknown node `{n}`")))
    };
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv_line(line).map_err(|m| err(lineno + 2, m))?;
        if fields.len() != 3 {
            return Err(err(lineno + 2, "expected 3 fields".into()));
        }
        let f: f64 = fields[2]
            .parse()
            .map_err(|_| err(lineno + 2, format!("bad frequency `{}`", fields[2])))?;
        if fields[1].is_empty() {
            names.push(fields[0].clone());
            freqs.push(f);
        } else {
            let a = index_of(&names, &fields[0], lineno + 2)?;
            let b = index_of(&names, &fields[1], lineno + 2)?;
            edges.push((a, b, f));
        }
    }
    // Validating construction: a CSV can smuggle in NaN/negative/oversized
    // frequencies that `parse::<f64>` accepts.
    DependencyGraph::try_from_parts(names, freqs, &edges)
}

fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    loop {
        match chars.peek() {
            None => {
                fields.push(cur);
                return Ok(fields);
            }
            Some('"') => {
                chars.next();
                loop {
                    match chars.next() {
                        Some('"') if chars.peek() == Some(&'"') => {
                            chars.next();
                            cur.push('"');
                        }
                        Some('"') => break,
                        Some(c) => cur.push(c),
                        None => return Err("unterminated quoted field".into()),
                    }
                }
            }
            Some(',') => {
                chars.next();
                fields.push(std::mem::take(&mut cur));
            }
            Some(&c) => {
                chars.next();
                cur.push(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ems_events::EventLog;

    fn graph() -> DependencyGraph {
        let mut log = EventLog::new();
        log.push_trace(["a", "b", "c", "b"]); // b->c, c->b reciprocal; cycle
        log.push_trace(["a", "b"]);
        DependencyGraph::from_log(&log)
    }

    #[test]
    fn metrics_match_hand_count() {
        let m = GraphMetrics::of(&graph());
        assert_eq!(m.nodes, 3);
        // Edges: a->b (1.0), b->c (0.5), c->b (0.5).
        assert_eq!(m.edges, 3);
        assert_eq!(m.sources, 1); // a
        assert_eq!(m.sinks, 0); // b has out (c), c has out (b)
        assert_eq!(m.reciprocal_pairs, 1);
        assert!(m.cyclic_nodes >= 2); // b and c are in a cycle
        assert!((m.density - 3.0 / 6.0).abs() < 1e-12);
        assert!((m.mean_edge_frequency - (1.0 + 0.5 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_the_counts() {
        let text = GraphMetrics::of(&graph()).to_string();
        assert!(text.contains("3 nodes"));
        assert!(text.contains("1 sources"));
    }

    #[test]
    fn edge_csv_lists_nodes_and_edges() {
        let csv = to_edge_csv(&graph());
        assert!(csv.starts_with("from,to,frequency\n"));
        assert!(csv.contains("a,,1\n"));
        assert!(csv.contains("a,b,1\n"));
        assert!(csv.contains("b,c,0.5\n"));
    }

    #[test]
    fn csv_escapes_commas_in_names() {
        let mut log = EventLog::new();
        log.push_trace(["check, validate", "ship"]);
        let g = DependencyGraph::from_log(&log);
        let csv = to_edge_csv(&g);
        assert!(csv.contains("\"check, validate\""));
    }

    #[test]
    fn edge_csv_roundtrips() {
        let mut log = EventLog::new();
        log.push_trace(["check, validate", "ship \"now\"", "mail"]);
        log.push_trace(["check, validate", "mail"]);
        let g = DependencyGraph::from_log(&log);
        let back = from_edge_csv(&to_edge_csv(&g)).unwrap();
        assert_eq!(back.num_real(), g.num_real());
        for v in g.real_nodes() {
            assert_eq!(back.name(v), g.name(v));
            assert!((back.node_frequency(v) - g.node_frequency(v)).abs() < 1e-12);
        }
        for (a, b, f) in g.real_edges() {
            let f2 = back.edge_frequency(a, b).expect("edge survives");
            assert!((f - f2).abs() < 1e-12);
        }
        assert_eq!(back.real_edges().len(), g.real_edges().len());
    }

    #[test]
    fn edge_csv_rejects_garbage() {
        assert!(from_edge_csv("").is_err());
        assert!(from_edge_csv("wrong,header,here\n").is_err());
        assert!(from_edge_csv("from,to,frequency\na,,not-a-number\n").is_err());
        assert!(from_edge_csv("from,to,frequency\na,,1.0\na,ghost,0.5\n").is_err());
        assert!(from_edge_csv("from,to,frequency\n\"unterminated,,1\n").is_err());
        assert!(from_edge_csv("from,to,frequency\nonly,two\n").is_err());
    }

    #[test]
    fn empty_graph_metrics() {
        let g = DependencyGraph::from_log(&EventLog::new());
        let m = GraphMetrics::of(&g);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.density, 0.0);
        assert_eq!(m.mean_edge_frequency, 0.0);
    }
}
