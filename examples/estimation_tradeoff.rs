//! The estimation accuracy/time trade-off (Section 3.5) on one synthetic
//! pair: sweep the number of exact iterations `I` and watch the estimate
//! approach the exact similarity while the work shrinks.
//!
//! ```sh
//! cargo run --release --example estimation_tradeoff
//! ```

use event_matching::core::{Ems, EmsParams};
use event_matching::eval::Stopwatch;
use event_matching::synth::{PairConfig, PairGenerator, TreeConfig};

fn main() {
    let pair = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 40,
            seed: 31,
            ..TreeConfig::default()
        },
        traces_per_log: 150,
        seed: 32,
        ..PairConfig::default()
    })
    .generate();

    let (exact, exact_time) =
        Stopwatch::time(|| Ems::new(EmsParams::structural()).match_logs(&pair.log1, &pair.log2));
    println!(
        "exact:       max-iter fixpoint, {:7} formula evals, {:6.2} ms",
        exact.stats.formula_evals,
        exact_time.as_secs_f64() * 1e3
    );

    for i in [0usize, 1, 2, 5, 10] {
        let (est, t) = Stopwatch::time(|| {
            Ems::new(EmsParams::structural().estimated(i)).match_logs(&pair.log1, &pair.log2)
        });
        let err = est.similarity.max_abs_diff(&exact.similarity);
        println!(
            "estimate I={i:2}: max |error| = {err:.4}, {:7} formula evals, {:6.2} ms",
            est.stats.formula_evals,
            t.as_secs_f64() * 1e3
        );
    }
    println!("\nlarger I -> smaller error, more work: the paper's Figure 5 trade-off.");
}
