//! The paper's running example (Figure 1): two subsidiaries' turbine order
//! processing logs with opaque names, dislocated traces AND a composite
//! event — matched end-to-end with composite-event matching (Algorithm 2).
//!
//! ```sh
//! cargo run --example order_processing
//! ```

use event_matching::assignment::max_total_assignment;
use event_matching::core::composite::{Candidate, CompositeConfig, CompositeMatcher};
use event_matching::core::{Ems, EmsParams};
use event_matching::events::{EventId, EventLog};

fn main() {
    // L1: events A..F (Paid by Cash/..., Check Inventory, Validate, ...).
    let mut l1 = EventLog::with_name("L1");
    for _ in 0..2 {
        l1.push_trace(["A", "C", "D", "E", "F"]);
    }
    for _ in 0..3 {
        l1.push_trace(["B", "C", "D", "F", "E"]);
    }
    // L2: events 1..6; "4" is the composite "Inventory Checking & Validation"
    // and "1" (Order Accepted) has no counterpart in L1.
    let mut l2 = EventLog::with_name("L2");
    for _ in 0..2 {
        l2.push_trace(["1", "2", "4", "5", "6"]);
    }
    for _ in 0..3 {
        l2.push_trace(["1", "3", "4", "6", "5"]);
    }

    let ems = Ems::new(EmsParams::structural());

    // Plain singleton matching first.
    let singleton = ems.match_logs(&l1, &l2);
    println!(
        "singleton matching: avg similarity = {:.3}",
        singleton.similarity.average()
    );

    // Composite matching with candidates {C,D} and {E,F} (Example 7).
    let cands1 = vec![Candidate::new(["C", "D"]), Candidate::new(["E", "F"])];
    let matcher = CompositeMatcher::new(ems, CompositeConfig::default());
    let outcome = matcher.match_logs(&l1, &l2, &cands1, &[]);
    println!(
        "composite matching: avg similarity = {:.3} after {} merge(s)",
        outcome.average,
        outcome.merges.len()
    );
    for m in &outcome.merges {
        println!(
            "  accepted merge in log {}: {}",
            m.side,
            m.candidate.merged_name()
        );
    }

    let sim = &outcome.similarity;
    let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 0.05);
    println!("\nfinal correspondences:");
    for c in cs {
        println!(
            "  {:>4} <-> {:<2} ({:.3})",
            outcome.log1.name_of(EventId::from_index(c.left)),
            outcome.log2.name_of(EventId::from_index(c.right)),
            c.score
        );
    }
    println!("\nground truth: A→2, B→3, C+D→4, E→5, F→6 (1 has no counterpart)");
}
