//! Quickstart: match two small heterogeneous event logs and print the
//! selected correspondences.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use event_matching::assignment::max_total_assignment;
use event_matching::core::{Ems, EmsParams};
use event_matching::events::EventLog;

fn main() {
    // Two logs of the same ordering process from different systems.
    // Log 2 uses opaque names and has an extra first step ("order accepted"),
    // so the true matching is dislocated.
    let mut l1 = EventLog::with_name("subsidiary-A");
    for _ in 0..2 {
        l1.push_trace(["cash", "validate", "ship"]);
    }
    for _ in 0..3 {
        l1.push_trace(["card", "validate", "ship"]);
    }
    let mut l2 = EventLog::with_name("subsidiary-B");
    for _ in 0..2 {
        l2.push_trace(["e0", "e1", "e3", "e4"]);
    }
    for _ in 0..3 {
        l2.push_trace(["e0", "e2", "e3", "e4"]);
    }

    // Structure-only matching (the names are useless anyway).
    let ems = Ems::new(EmsParams::structural());
    let outcome = ems.match_logs(&l1, &l2);
    let sim = &outcome.similarity;

    println!(
        "similarity matrix ({} x {} events):",
        sim.rows(),
        sim.cols()
    );
    print!("{:>10}", "");
    for j in 0..sim.cols() {
        print!(
            "{:>9}",
            l2.name_of(event_matching::events::EventId::from_index(j))
        );
    }
    println!();
    for i in 0..sim.rows() {
        print!(
            "{:>10}",
            l1.name_of(event_matching::events::EventId::from_index(i))
        );
        for j in 0..sim.cols() {
            print!("{:>9.3}", sim.get(i, j));
        }
        println!();
    }

    // Maximum-total-similarity selection (Munkres).
    let correspondences = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 0.05);
    println!("\ncorrespondences:");
    for c in correspondences {
        println!(
            "  {:>8} <-> {:<4} (similarity {:.3})",
            l1.name_of(event_matching::events::EventId::from_index(c.left)),
            l2.name_of(event_matching::events::EventId::from_index(c.right)),
            c.score
        );
    }
    println!("\nnote: \"cash\" matches e1 (second position) — dislocated matching");
    println!("works because the artificial event lets any event start a trace.");
}
