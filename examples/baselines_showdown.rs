//! All six matchers — EMS, EMS+es, GED, OPQ, BHV and Similarity Flooding —
//! on the same dislocated, opaque log pair, scored against ground truth.
//!
//! ```sh
//! cargo run --release --example baselines_showdown
//! ```

use event_matching::assignment::max_total_assignment;
use event_matching::baselines::bhv::trace_start_anchors;
use event_matching::baselines::{Bhv, Ged, Opq, OpqParams, SimilarityFlooding};
use event_matching::core::{Ems, EmsParams, SimMatrix};
use event_matching::depgraph::DependencyGraph;
use event_matching::eval::{score, Stopwatch, Table};
use event_matching::events::EventId;
use event_matching::labels::LabelMatrix;
use event_matching::synth::{Dislocation, PairConfig, PairGenerator, TreeConfig};

fn main() {
    let pair = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 18,
            seed: 51,
            max_branch: 5,
            ..TreeConfig::default()
        },
        traces_per_log: 80,
        seed: 151,
        dislocation: Dislocation::Front(2),
        opaque_fraction: 1.0,
        xor_jitter: 0.25,
        ..PairConfig::default()
    })
    .generate();
    let (l1, l2) = (&pair.log1, &pair.log2);
    let g1 = DependencyGraph::from_log(l1);
    let g2 = DependencyGraph::from_log(l2);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());

    let score_matrix = |sim: &SimMatrix| -> f64 {
        let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 1e-6);
        let found: Vec<(String, String)> = cs
            .iter()
            .map(|c| {
                (
                    l1.name_of(EventId::from_index(c.left)).to_owned(),
                    l2.name_of(EventId::from_index(c.right)).to_owned(),
                )
            })
            .collect();
        score(
            pair.truth.iter(),
            found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
        )
        .f_measure
    };
    let score_mapping = |mapping: &[(usize, usize)]| -> f64 {
        let found: Vec<(String, String)> = mapping
            .iter()
            .map(|&(a, b)| {
                (
                    l1.name_of(EventId::from_index(a)).to_owned(),
                    l2.name_of(EventId::from_index(b)).to_owned(),
                )
            })
            .collect();
        score(
            pair.truth.iter(),
            found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
        )
        .f_measure
    };

    let mut table = Table::new(
        "matcher showdown: 18 events, opaque names, 2 dislocated steps",
        vec!["method", "f-measure", "time (ms)"],
    );
    let mut add = |name: &str, f: f64, secs: f64| {
        table.row(vec![
            name.to_owned(),
            format!("{f:.3}"),
            format!("{:.1}", secs * 1e3),
        ]);
    };

    let (out, t) =
        Stopwatch::time(|| Ems::new(EmsParams::structural()).match_graphs(&g1, &g2, &labels));
    add("EMS", score_matrix(&out.similarity), t.as_secs_f64());

    let (out, t) = Stopwatch::time(|| {
        Ems::new(EmsParams::structural().estimated(5)).match_graphs(&g1, &g2, &labels)
    });
    add(
        "EMS+es(I=5)",
        score_matrix(&out.similarity),
        t.as_secs_f64(),
    );

    let (sim, t) = Stopwatch::time(|| {
        Bhv::default().similarity_with_anchors(
            &g1,
            &g2,
            &labels,
            &trace_start_anchors(l1),
            &trace_start_anchors(l2),
        )
    });
    add("BHV", score_matrix(&sim), t.as_secs_f64());

    let (sim, t) = Stopwatch::time(|| SimilarityFlooding::default().similarity(&g1, &g2, &labels));
    add("SF", score_matrix(&sim), t.as_secs_f64());

    let (r, t) = Stopwatch::time(|| Ged::default().match_graphs(&g1, &g2, &labels));
    add("GED", score_mapping(&r.mapping), t.as_secs_f64());

    let (r, t) = Stopwatch::time(|| {
        Opq::new(OpqParams {
            node_budget: 2_000_000,
        })
        .match_graphs(&g1, &g2)
    });
    add(
        if r.finished { "OPQ" } else { "OPQ (budget)" },
        score_mapping(&r.mapping),
        t.as_secs_f64(),
    );

    print!("{}", table.to_text());
    println!("\nDislocated beginnings are where EMS's artificial event pays off;");
    println!("single-direction and local matchers miss the shifted alignment.");
}
