//! Full XES pipeline: synthesize a heterogeneous log pair, serialize both
//! sides to XES, parse them back (as a real deployment ingesting exported
//! logs would), match, and score against the generator's ground truth.
//!
//! ```sh
//! cargo run --example xes_pipeline
//! ```

use event_matching::assignment::max_total_assignment;
use event_matching::core::{Ems, EmsParams};
use event_matching::eval::score;
use event_matching::events::EventId;
use event_matching::synth::{Dislocation, PairConfig, PairGenerator, TreeConfig};
use event_matching::xes::{from_event_log, parse_str, to_event_log, write_string};

fn main() {
    // Synthesize a 20-activity process and two heterogeneous logs of it.
    let pair = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 20,
            seed: 11,
            // Keep choices local so traces visit most activities.
            max_branch: 5,
            ..TreeConfig::default()
        },
        traces_per_log: 100,
        seed: 12,
        dislocation: Dislocation::Front(1),
        opaque_fraction: 1.0,
        xor_jitter: 0.2,
        ..PairConfig::default()
    })
    .generate();

    // Round-trip both logs through XES text (what the OA systems export).
    let xes1 = write_string(&from_event_log(&pair.log1));
    let xes2 = write_string(&from_event_log(&pair.log2));
    println!(
        "serialized logs: {} and {} bytes of XES",
        xes1.len(),
        xes2.len()
    );
    let log1 = to_event_log(&parse_str(&xes1).expect("own XES must parse"));
    let log2 = to_event_log(&parse_str(&xes2).expect("own XES must parse"));
    assert_eq!(log1.num_traces(), pair.log1.num_traces());

    // Match with estimation (EMS+es, I = 5) for speed.
    let ems = Ems::new(EmsParams::structural().estimated(5));
    let outcome = ems.match_logs(&log1, &log2);
    let sim = &outcome.similarity;
    let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 1e-6);
    let found: Vec<(String, String)> = cs
        .iter()
        .map(|c| {
            (
                log1.name_of(EventId::from_index(c.left)).to_owned(),
                log2.name_of(EventId::from_index(c.right)).to_owned(),
            )
        })
        .collect();

    let acc = score(
        pair.truth.iter(),
        found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    );
    println!(
        "matched {} pairs: precision {:.3}, recall {:.3}, f-measure {:.3}",
        acc.num_found, acc.precision, acc.recall, acc.f_measure
    );
    println!(
        "engine work: {} iterations, {} formula evaluations, {} estimated pairs",
        outcome.stats.iterations, outcome.stats.formula_evals, outcome.stats.estimated_pairs
    );
}
