#![forbid(unsafe_code)]
//! Umbrella crate for the SIGMOD'14 *Matching Heterogeneous Event Data*
//! reproduction: re-exports the full public API of the workspace.
//!
//! ```
//! use event_matching::core::{Ems, EmsParams};
//! use event_matching::events::EventLog;
//!
//! let mut l1 = EventLog::new();
//! l1.push_trace(["a", "b"]);
//! let mut l2 = EventLog::new();
//! l2.push_trace(["x", "y"]);
//! let out = Ems::new(EmsParams::structural()).match_logs(&l1, &l2);
//! assert_eq!(out.similarity.rows(), 2);
//! ```

pub use ems_assignment as assignment;
pub use ems_baselines as baselines;
pub use ems_catalog as catalog;
pub use ems_core as core;
pub use ems_depgraph as depgraph;
pub use ems_error as error;
pub use ems_eval as eval;
pub use ems_events as events;
pub use ems_faults as faults;
pub use ems_labels as labels;
pub use ems_obs as obs;
pub use ems_store as store;
pub use ems_synth as synth;
pub use ems_xes as xes;
