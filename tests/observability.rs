//! Cross-crate observability contract (PR4 acceptance criteria):
//!
//! - a traced run on the synthetic corpus emits a valid `ems-trace/1`
//!   JSONL stream whose per-engine `max_delta` is non-increasing after
//!   the first iteration;
//! - the non-timing trace content is byte-identical across thread
//!   counts (`--threads N` vs `--threads 1`), i.e. telemetry inherits
//!   the kernel's bit-identity guarantee.

use ems_core::{Ems, EmsParams, RunOptions};
use ems_depgraph::{observe_graph, DependencyGraph};
use ems_events::EventLog;
use ems_obs::{jsonl, prom, Record, Recorder};
use ems_synth::{PairConfig, PairGenerator, TreeConfig};
use std::sync::Arc;

fn synth_pair() -> (EventLog, EventLog) {
    let p = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 24,
            seed: 11,
            ..TreeConfig::default()
        },
        traces_per_log: 40,
        seed: 23,
        xor_jitter: 0.2,
        ..PairConfig::default()
    })
    .generate();
    (p.log1, p.log2)
}

/// Runs the full non-composite matching pipeline with `threads` worker
/// threads and a recorder attached, mirroring the CLI's `--trace` path.
fn traced_match(threads: usize) -> Vec<Record> {
    let (l1, l2) = synth_pair();
    let recorder = Arc::new(Recorder::new());
    let g1 = DependencyGraph::from_log(&l1);
    let g2 = DependencyGraph::from_log(&l2);
    observe_graph(&g1, &recorder, "log1");
    observe_graph(&g2, &recorder, "log2");
    let params = EmsParams {
        threads,
        ..EmsParams::default()
    };
    let ems = Ems::try_new(params).expect("default-ish params are valid");
    let labels = ems.label_matrix(&l1, &l2);
    let options = RunOptions {
        recorder: Some(Arc::clone(&recorder)),
        // The whole point is comparing traces across thread counts, so an
        // explicit count must spin up a real pool even on a small host —
        // otherwise the clamp would (correctly) warn into the trace.
        oversubscribe: true,
        ..RunOptions::default()
    };
    ems.try_match_graphs_opts(&g1, &g2, &labels, &options, &options)
        .expect("matching succeeds on the synthetic corpus");
    recorder.records()
}

#[test]
fn traced_run_emits_valid_jsonl_with_non_increasing_max_delta() {
    let records = traced_match(1);
    let trace = jsonl::write(&records);

    // The stream round-trips through the schema validator.
    let parsed = jsonl::parse_records(&trace).expect("trace conforms to ems-trace/1");
    assert_eq!(parsed.len(), records.len());

    // Both directions report a convergence curve, and each curve's
    // max_delta never increases after the first iteration.
    let curves = jsonl::check_convergence(&parsed).expect("max_delta is non-increasing");
    assert_eq!(curves.len(), 2, "expected forward + backward engines");
    for (engine, iterations) in &curves {
        assert!(*iterations >= 1, "engine {engine} recorded no iterations");
    }

    // The instrumentation covers graph construction and the run summary.
    assert!(records.iter().any(|r| matches!(
        r,
        Record::Gauge { name, .. } if name == "graph_vertices"
    )));
    assert!(records.iter().any(|r| matches!(
        r,
        Record::Counter { name, .. } if name == "run.iterations"
    )));
}

#[test]
fn trace_content_is_identical_across_thread_counts() {
    let serial = traced_match(1);
    let parallel = traced_match(4);

    // Redacted JSONL (dur_us zeroed) must be byte-identical: same
    // records, same order, same floating-point deltas.
    assert_eq!(
        jsonl::write_redacted(&serial),
        jsonl::write_redacted(&parallel),
        "per-iteration telemetry must not depend on the thread count"
    );

    // The deterministic Prometheus view (span timings omitted) agrees too.
    assert_eq!(
        prom::write_deterministic(&serial),
        prom::write_deterministic(&parallel)
    );
}
