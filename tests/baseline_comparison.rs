//! Integration tests pinning the qualitative relationships between EMS and
//! the baselines that the paper's evaluation rests on.

use event_matching::assignment::max_total_assignment;
use event_matching::baselines::bhv::trace_start_anchors;
use event_matching::baselines::{Bhv, Ged, Opq};
use event_matching::core::{Ems, EmsParams, SimMatrix};
use event_matching::depgraph::DependencyGraph;
use event_matching::eval::score;
use event_matching::events::EventId;
use event_matching::labels::LabelMatrix;
use event_matching::synth::{Dislocation, LogPair, PairConfig, PairGenerator, TreeConfig};

fn dislocated_front_pair(seed: u64) -> LogPair {
    PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 16,
            seed,
            max_branch: 4,
            ..TreeConfig::default()
        },
        traces_per_log: 80,
        seed: seed + 900,
        dislocation: Dislocation::Front(2),
        opaque_fraction: 1.0,
        ..PairConfig::default()
    })
    .generate()
}

fn f_of(pair: &LogPair, sim: &SimMatrix) -> f64 {
    let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 1e-6);
    let found: Vec<(String, String)> = cs
        .iter()
        .map(|c| {
            (
                pair.log1.name_of(EventId::from_index(c.left)).to_owned(),
                pair.log2.name_of(EventId::from_index(c.right)).to_owned(),
            )
        })
        .collect();
    score(
        pair.truth.iter(),
        found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .f_measure
}

fn mapping_f(pair: &LogPair, mapping: &[(usize, usize)]) -> f64 {
    let found: Vec<(String, String)> = mapping
        .iter()
        .map(|&(a, b)| {
            (
                pair.log1.name_of(EventId::from_index(a)).to_owned(),
                pair.log2.name_of(EventId::from_index(b)).to_owned(),
            )
        })
        .collect();
    score(
        pair.truth.iter(),
        found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .f_measure
}

/// The paper's central claim (Figures 3 and 9): on dislocated-beginning
/// pairs, EMS clearly beats BHV and GED, which cannot express dislocation.
#[test]
fn ems_beats_bhv_and_ged_on_front_dislocation() {
    let mut ems_total = 0.0;
    let mut bhv_total = 0.0;
    let mut ged_total = 0.0;
    for seed in [21, 22, 23] {
        let pair = dislocated_front_pair(seed);
        let g1 = DependencyGraph::from_log(&pair.log1);
        let g2 = DependencyGraph::from_log(&pair.log2);
        let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());

        let ems = Ems::new(EmsParams::structural()).match_graphs(&g1, &g2, &labels);
        ems_total += f_of(&pair, &ems.similarity);

        let bhv = Bhv::default().similarity_with_anchors(
            &g1,
            &g2,
            &labels,
            &trace_start_anchors(&pair.log1),
            &trace_start_anchors(&pair.log2),
        );
        bhv_total += f_of(&pair, &bhv);

        let ged = Ged::default().match_graphs(&g1, &g2, &labels);
        ged_total += mapping_f(&pair, &ged.mapping);
    }
    assert!(
        ems_total > bhv_total + 0.5,
        "EMS {ems_total} vs BHV {bhv_total}"
    );
    assert!(
        ems_total > ged_total + 0.5,
        "EMS {ems_total} vs GED {ged_total}"
    );
}

/// OPQ cannot finish beyond small event counts (Figure 8's DNF band).
#[test]
fn opq_exhausts_its_budget_on_larger_alphabets() {
    let pair = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 40,
            seed: 77,
            max_branch: 8,
            ..TreeConfig::default()
        },
        traces_per_log: 60,
        seed: 1077,
        xor_jitter: 0.3,
        ..PairConfig::default()
    })
    .generate();
    let g1 = DependencyGraph::from_log(&pair.log1);
    let g2 = DependencyGraph::from_log(&pair.log2);
    let r = Opq::new(event_matching::baselines::OpqParams {
        node_budget: 100_000,
    })
    .match_graphs(&g1, &g2);
    assert!(!r.finished, "40-event OPQ should exhaust 100k nodes");
    assert_eq!(r.nodes_explored, 100_000);
}

/// Every similarity matrix any matcher produces stays within [0, 1].
#[test]
fn similarity_ranges_hold_across_matchers() {
    let pair = dislocated_front_pair(31);
    let g1 = DependencyGraph::from_log(&pair.log1);
    let g2 = DependencyGraph::from_log(&pair.log2);
    let labels = LabelMatrix::zeros(g1.num_real(), g2.num_real());
    let check = |sim: &SimMatrix| {
        for (_, _, v) in sim.iter() {
            assert!((0.0..=1.0).contains(&v), "out of range: {v}");
        }
    };
    check(
        &Ems::new(EmsParams::structural())
            .match_graphs(&g1, &g2, &labels)
            .similarity,
    );
    check(&Bhv::default().similarity(&g1, &g2, &labels));
}

/// EMS with labels on readable names performs at least as well as any
/// structure-only baseline.
#[test]
fn labeled_ems_dominates_on_readable_names() {
    let pair = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 16,
            seed: 91,
            max_branch: 4,
            ..TreeConfig::default()
        },
        traces_per_log: 80,
        seed: 991,
        opaque_fraction: 0.0,
        ..PairConfig::default()
    })
    .generate();
    let out = Ems::new(EmsParams::with_labels(0.5)).match_logs(&pair.log1, &pair.log2);
    let f = f_of(&pair, &out.similarity);
    assert!(f > 0.95, "readable identical names: f = {f}");
}
