//! Robustness integration tests: matching quality under log-quality noise
//! and format conversions.

use event_matching::assignment::max_total_assignment;
use event_matching::core::{Ems, EmsParams};
use event_matching::eval::score;
use event_matching::events::EventId;
use event_matching::synth::{apply_noise, NoiseConfig, PairConfig, PairGenerator, TreeConfig};
use event_matching::xes::mxml;

fn pair(seed: u64) -> event_matching::synth::LogPair {
    PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 16,
            seed,
            max_branch: 4,
            ..TreeConfig::default()
        },
        traces_per_log: 80,
        seed: seed + 70,
        opaque_fraction: 1.0,
        ..PairConfig::default()
    })
    .generate()
}

fn f_measure(pair: &event_matching::synth::LogPair) -> f64 {
    let out = Ems::new(EmsParams::structural()).match_logs(&pair.log1, &pair.log2);
    let sim = &out.similarity;
    let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 1e-6);
    let found: Vec<(String, String)> = cs
        .iter()
        .map(|c| {
            (
                pair.log1.name_of(EventId::from_index(c.left)).to_owned(),
                pair.log2.name_of(EventId::from_index(c.right)).to_owned(),
            )
        })
        .collect();
    score(
        pair.truth.iter(),
        found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .f_measure
}

#[test]
fn mild_noise_degrades_gracefully() {
    let clean = pair(61);
    let f_clean = f_measure(&clean);
    let mut noisy = clean.clone();
    noisy.log2 = apply_noise(
        &clean.log2,
        &NoiseConfig {
            drop_prob: 0.02,
            duplicate_prob: 0.02,
            swap_prob: 0.02,
            seed: 5,
        },
    );
    let f_noisy = f_measure(&noisy);
    assert!(f_clean > 0.6, "clean baseline too weak: {f_clean}");
    assert!(
        f_noisy > f_clean - 0.35,
        "2% noise collapsed matching: {f_clean} -> {f_noisy}"
    );
}

#[test]
fn heavy_noise_does_not_panic_or_overflow() {
    let clean = pair(62);
    let mut noisy = clean.clone();
    noisy.log2 = apply_noise(
        &clean.log2,
        &NoiseConfig {
            drop_prob: 0.5,
            duplicate_prob: 0.5,
            swap_prob: 0.5,
            seed: 6,
        },
    );
    let f = f_measure(&noisy);
    assert!((0.0..=1.0).contains(&f));
}

#[test]
fn mxml_conversion_preserves_matching() {
    let p = pair(63);
    // Route log 2 through MXML (the legacy exporter path).
    let text = mxml::write_mxml(&mxml::from_event_log(&p.log2));
    let back = mxml::to_event_log_complete_only(&mxml::parse_mxml(&text).unwrap());
    let direct = Ems::new(EmsParams::structural()).match_logs(&p.log1, &p.log2);
    let routed = Ems::new(EmsParams::structural()).match_logs(&p.log1, &back);
    assert!(
        direct.similarity.max_abs_diff(&routed.similarity) < 1e-12,
        "MXML round-trip changed similarities"
    );
}

#[test]
fn streaming_and_tree_parsers_agree_on_synthetic_logs() {
    let p = pair(64);
    let text = event_matching::xes::write_string(&event_matching::xes::from_event_log(&p.log1));
    let streamed = event_matching::xes::parse_event_log(&text).unwrap();
    let tree = event_matching::xes::to_event_log(&event_matching::xes::parse_str(&text).unwrap());
    assert_eq!(streamed.num_traces(), tree.num_traces());
    assert_eq!(streamed.num_events(), tree.num_events());
    assert_eq!(streamed.alphabet_size(), tree.alphabet_size());
}
