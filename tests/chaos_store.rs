//! Chaos sweep over the durable catalog store: hundreds of seeded fault
//! plans injected into store I/O and stage boundaries, asserting the PR's
//! recovery invariant end to end —
//!
//! * no run panics: every failure is a typed [`ems_error::EmsError`] /
//!   [`CoreError`] (a panic anywhere fails the test process);
//! * faults never corrupt results: after any injected crash, reopening the
//!   catalog fault-free and re-matching yields scores **byte-identical** to
//!   a clean cold run (commit-by-rename means a committed snapshot is
//!   always whole, and everything else rebuilds from source);
//! * external corruption is always detected (`verify` flags every mutation
//!   the harness produces) and quarantine-then-rebuild is idempotent: one
//!   recovery pass leaves a clean store that disk-warms the next session.

use ems_rng::StdRng;
use event_matching::core::{CoreError, EmsParams, MatchOutcome, MatchSession, SessionOptions};
use event_matching::events::EventLog;
use event_matching::faults::{FaultInjector, FaultPlan};
use event_matching::store::{CatalogStore, EntryStatus};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn tmp_root(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ems-chaos-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small heterogeneous pair: distinct names, overlapping structure.
fn logs() -> (EventLog, EventLog) {
    let mut l1 = EventLog::new();
    l1.push_trace(["cash", "validate", "pack", "ship"]);
    l1.push_trace(["cash", "validate", "pack", "ship"]);
    l1.push_trace(["card", "validate", "pack", "ship"]);
    let mut l2 = EventLog::new();
    l2.push_trace(["e0", "e1", "e2", "e4", "e5"]);
    l2.push_trace(["e0", "e1", "e3", "e4", "e5"]);
    (l1, l2)
}

/// A clean cold match with no store involved — the reference scores every
/// recovery must reproduce bit-for-bit.
fn baseline() -> MatchOutcome {
    let (l1, l2) = logs();
    let mut session = MatchSession::new(EmsParams::structural());
    let h1 = session.ingest(l1);
    let h2 = session.ingest(l2);
    session.match_pair(h1, h2).expect("clean run")
}

fn assert_bit_identical(out: &MatchOutcome, want: &MatchOutcome) {
    assert_eq!(out.similarity.max_abs_diff(&want.similarity), 0.0);
    assert_eq!(out.forward.max_abs_diff(&want.forward), 0.0);
    assert_eq!(out.backward.max_abs_diff(&want.backward), 0.0);
}

/// One store-backed match under an injector shared by the store (write /
/// fsync / rename / read sites) and the session (ingest / solve sites).
fn faulted_match(root: &Path, injector: Arc<FaultInjector>) -> Result<MatchOutcome, CoreError> {
    let store = CatalogStore::open(root)
        .map_err(|e| CoreError::SnapshotDecode {
            message: e.to_string(),
        })?
        .with_injector(Arc::clone(&injector));
    let mut session = MatchSession::new(EmsParams::structural()).with_store(Arc::new(store));
    let (l1, l2) = logs();
    let h1 = session.ingest(l1);
    let h2 = session.ingest(l2);
    let options = SessionOptions {
        injector: Some(injector),
        ..SessionOptions::default()
    };
    session.match_pair_opts(h1, h2, &options)
}

/// Fault-free store-backed match, returning the outcome and the session
/// for stats inspection.
fn clean_match(root: &Path) -> (MatchOutcome, MatchSession) {
    let store = CatalogStore::open(root).expect("reopen store");
    let mut session = MatchSession::new(EmsParams::structural()).with_store(Arc::new(store));
    let (l1, l2) = logs();
    let h1 = session.ingest(l1);
    let h2 = session.ingest(l2);
    let out = session.match_pair(h1, h2).expect("fault-free recovery run");
    (out, session)
}

/// The tentpole acceptance sweep: ≥200 seeded fault plans, zero panics,
/// typed errors only, byte-identical scores after recovery.
#[test]
fn seeded_fault_plans_never_corrupt_results() {
    let want = baseline();
    let mut failed_runs = 0u32;
    let mut fired_faults = 0usize;
    for seed in 0..240u64 {
        let root = tmp_root("sweep");
        let plan = FaultPlan::generate(seed);
        assert!(!plan.is_empty(), "seed {seed} generated an empty plan");
        let injector = Arc::new(FaultInjector::new(plan));

        // The faulted run may fail — but only with a typed error, and it
        // may leave arbitrary residue (torn temp files, missing or
        // quarantined snapshots) behind.
        let result = faulted_match(&root, Arc::clone(&injector));
        fired_faults += injector.fired().len();
        match result {
            Ok(out) => {
                // Solve-stage budget exhaustion degrades scores; anything
                // else must already be bit-identical. Either way the run
                // completed without a panic.
                if !out.stats.degraded {
                    assert_bit_identical(&out, &want);
                }
            }
            Err(e) => {
                failed_runs += 1;
                // Typed, rendered, and carried across the error boundary.
                assert!(!e.to_string().is_empty(), "seed {seed}: empty error");
            }
        }

        // Recovery invariant: reopening the catalog fault-free yields
        // byte-identical scores, and no committed snapshot is ever torn
        // (atomic rename = a snapshot either exists whole or not at all).
        let (recovered, session) = clean_match(&root);
        assert_bit_identical(&recovered, &want);
        assert_eq!(
            session.stats().store_quarantines,
            0,
            "seed {seed}: a committed snapshot was torn"
        );

        // Whatever the faults left behind, verify agrees: every committed
        // snapshot is whole.
        let store = CatalogStore::open(&root).expect("verify reopen");
        let report = store.verify().expect("verify");
        assert!(
            report.corrupt.is_empty(),
            "seed {seed}: verify flagged committed snapshots: {:?}",
            report.corrupt
        );
        // gc reclaims torn temp residue; a second gc finds nothing.
        let first = store.gc().expect("gc");
        let second = store.gc().expect("gc twice");
        assert_eq!(second.removed_tmp, 0);
        assert_eq!(second.removed_quarantined, 0);
        let _ = first;
        let _ = std::fs::remove_dir_all(&root);
    }
    // The sweep must actually inject: hundreds of planned faults fire
    // across the store and stage sites, and the rare terminal ingest
    // faults (the only class designed to fail a match — store failures
    // all absorb into rebuilds) surface as typed errors at least a few
    // times.
    assert!(
        fired_faults >= 200,
        "only {fired_faults} faults fired across 240 plans — the sweep is not injecting"
    );
    assert!(
        failed_runs >= 3,
        "only {failed_runs}/240 runs failed — terminal faults never surfaced"
    );
}

/// Satellite 3: every external corruption the harness can produce is
/// flagged by `verify`, and quarantine-then-rebuild is idempotent.
#[test]
fn external_corruption_is_always_detected_and_recovery_is_idempotent() {
    let want = baseline();
    let root = tmp_root("corrupt");
    {
        // Populate the catalog once.
        let (out, _) = clean_match(&root);
        assert_bit_identical(&out, &want);
    }
    let objects = root.join("objects");
    let snaps = || -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = std::fs::read_dir(&objects)
            .expect("objects dir")
            .filter_map(|e| Some(e.ok()?.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "snap"))
            .collect();
        v.sort();
        v
    };
    assert_eq!(snaps().len(), 5, "2 graphs + 2 substrates + 1 labels");

    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let files = snaps();
        let victim = files[rng.gen_range(0..files.len())].clone();
        let original = std::fs::read(&victim).expect("read snapshot");
        let mut mutated = original.clone();
        match rng.gen_range(0..3u8) {
            0 => {
                // Byte flip anywhere in the envelope or payload.
                let at = rng.gen_range(0..mutated.len());
                mutated[at] ^= 1 << rng.gen_range(0..8u8);
            }
            1 => {
                // Truncation to any proper prefix.
                let keep = rng.gen_range(0..mutated.len());
                mutated.truncate(keep);
            }
            _ => {
                // Appended garbage.
                let extra = rng.gen_range(1..16usize);
                mutated.extend(std::iter::repeat(0xAB).take(extra));
            }
        }
        if mutated == original {
            continue; // the rare no-op flip of a symmetric byte
        }
        std::fs::write(&victim, &mutated).expect("write corruption");

        // Detection: verify flags exactly the mutated entry.
        let store = CatalogStore::open(&root).expect("open for verify");
        let report = store.verify().expect("verify");
        let victim_name = victim
            .file_name()
            .and_then(|n| n.to_str())
            .expect("snapshot name")
            .to_owned();
        assert!(
            report.corrupt.iter().any(|(file, _)| *file == victim_name),
            "seed {seed}: verify missed corruption of {victim_name}"
        );
        // list() reports the same entry as corrupt, others as ok.
        let listed = store.list().expect("list");
        for entry in &listed {
            let corrupt = matches!(entry.status, EntryStatus::Corrupt(_));
            assert_eq!(
                corrupt,
                entry.file == victim_name,
                "seed {seed}: wrong status for {}",
                entry.file
            );
        }
        drop(store);

        // Recovery pass: quarantines the corrupt entry, rebuilds, re-puts.
        let (recovered, session) = clean_match(&root);
        assert_bit_identical(&recovered, &want);
        assert!(
            session.stats().store_quarantines >= 1,
            "seed {seed}: corruption was served instead of quarantined"
        );

        // Idempotence: one pass fully repaired the store — the next
        // session disk-warms with no quarantines and no rebuilds.
        let (rewarmed, session) = clean_match(&root);
        assert_bit_identical(&rewarmed, &want);
        assert_eq!(session.stats().store_quarantines, 0, "seed {seed}");
        assert_eq!(session.stats().store_hits, 5, "seed {seed}");
        assert_eq!(session.stats().graph_builds, 0, "seed {seed}");

        // Drain the quarantine dir so the next round starts clean.
        let store = CatalogStore::open(&root).expect("gc reopen");
        store.gc().expect("gc");
        assert!(store.verify().expect("post-gc verify").corrupt.is_empty());
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Four structurally distinct reference logs for the catalog-reload
/// sweep, plus two query logs (jittered variants of the first and third
/// references) whose top-2 rankings are unambiguous.
fn catalog_corpus() -> (Vec<EventLog>, Vec<EventLog>) {
    let (l1, l2) = logs();
    let mut l3 = EventLog::new();
    l3.push_trace(["open", "triage", "assign", "resolve", "close"]);
    l3.push_trace(["open", "triage", "escalate", "resolve", "close"]);
    l3.push_trace(["open", "triage", "assign", "close"]);
    let mut l4 = EventLog::new();
    l4.push_trace(["a", "b"]);
    l4.push_trace(["a", "c"]);
    l4.push_trace(["a", "b", "c"]);
    let mut q1 = EventLog::new();
    q1.push_trace(["cash", "validate", "pack", "ship"]);
    q1.push_trace(["card", "validate", "pack", "ship"]);
    q1.push_trace(["card", "validate", "ship"]);
    let mut q2 = EventLog::new();
    q2.push_trace(["open", "triage", "assign", "resolve", "close"]);
    q2.push_trace(["open", "triage", "assign", "close"]);
    (vec![l1, l2, l3, l4], vec![q1, q2])
}

/// PR10 catalog-reload fault sites: a byte-budgeted catalog under store
/// fault injection evicts on every pin, so each query replays the
/// eviction → store-read reload chain with reads (and the writes that
/// seeded them) failing underneath it. Every failure must degrade to a
/// rebuild from the in-memory source log — never a panic, never an error
/// surfaced from `query_top_k`, and never a ranking that differs from
/// the clean brute-force oracle.
#[test]
fn catalog_eviction_reload_faults_never_change_rankings() {
    use event_matching::catalog::Catalog;
    use event_matching::core::SharedSession;

    let (refs, queries) = catalog_corpus();

    // Clean oracle: no store, unlimited budget, pruning off — the exact
    // brute-force ranking with scores.
    let clean: Vec<Vec<(String, f64)>> = {
        let shared =
            Arc::new(SharedSession::try_new(EmsParams::structural()).expect("params are valid"));
        let mut catalog = Catalog::new(shared);
        for (i, log) in refs.iter().enumerate() {
            catalog.add(format!("ref-{i}"), log.clone());
        }
        queries
            .iter()
            .map(|q| {
                catalog
                    .query_top_k_opts(q, 2, false)
                    .expect("clean query")
                    .ranked
                    .into_iter()
                    .map(|r| (r.name, r.ems_score))
                    .collect()
            })
            .collect()
    };

    let mut fired_faults = 0usize;
    let mut evictions = 0u64;
    for seed in 0..240u64 {
        let root = tmp_root("catalog");
        let injector = Arc::new(FaultInjector::new(FaultPlan::generate(seed)));
        let store = CatalogStore::open(&root)
            .expect("open store")
            .with_injector(Arc::clone(&injector));
        let shared = Arc::new(
            SharedSession::try_new(EmsParams::structural())
                .expect("params are valid")
                .with_store(Arc::new(store)),
        );
        // A 1-byte budget evicts every pin immediately: each reference
        // access is a cold reload under whatever faults the plan holds.
        let mut catalog = Catalog::new(shared).with_byte_budget(1);
        for (i, log) in refs.iter().enumerate() {
            catalog.add(format!("ref-{i}"), log.clone());
        }
        for (qi, q) in queries.iter().enumerate() {
            let out = catalog
                .query_top_k_opts(q, 2, true)
                .expect("store faults must degrade to rebuilds, not fail the query");
            let got: Vec<(String, f64)> = out
                .ranked
                .into_iter()
                .map(|r| (r.name, r.ems_score))
                .collect();
            assert_eq!(
                got, clean[qi],
                "seed {seed}, query {qi}: faulted ranking diverged from the clean oracle"
            );
        }
        fired_faults += injector.fired().len();
        evictions += catalog.stats().evictions;
        let _ = std::fs::remove_dir_all(&root);
    }
    assert!(
        fired_faults >= 100,
        "only {fired_faults} faults fired across 240 plans — the sweep is not injecting"
    );
    assert!(
        evictions >= 240,
        "only {evictions} evictions across 240 runs — the budget is not forcing reloads"
    );
}

/// The disk-warm contract end to end through the umbrella crate: a store
/// populated by one process-lifetime serves the next one bit-identically.
#[test]
fn catalog_disk_warm_is_bit_identical_across_sessions() {
    let want = baseline();
    let root = tmp_root("warm");
    let (cold, session) = clean_match(&root);
    assert_bit_identical(&cold, &want);
    assert_eq!(session.stats().store_misses, 5);
    drop(session);
    let (warm, session) = clean_match(&root);
    assert_bit_identical(&warm, &want);
    assert_eq!(session.stats().store_hits, 5);
    assert_eq!(session.stats().graph_builds, 0);
    assert_eq!(session.stats().substrate_builds, 0);
    assert_eq!(session.stats().label_builds, 0);
    let _ = std::fs::remove_dir_all(&root);
}
