//! Invariants of the reproduction itself: the experiment harness must be
//! deterministic (same seeds → same tables) and the headline relationships
//! the paper reports must hold on the committed workloads.

use event_matching::core::composite::{CandidateConfig, CompositeConfig};

use ems_bench::composite::{run_composite, CompositeMethod};
use ems_bench::methods::{accuracy, run_method, Method};
use ems_bench::testbeds::{composite_pairs, dislocation_pairs, Testbed, Workload};

#[test]
fn method_runs_are_deterministic() {
    let w = Workload {
        pairs: 2,
        ..Workload::default()
    };
    let pairs = dislocation_pairs(Testbed::DsB, &w);
    for method in [
        Method::Ems,
        Method::EmsEstimated(5),
        Method::Ged,
        Method::Bhv,
    ] {
        let a = run_method(method, &pairs[0], 1.0);
        let b = run_method(method, &pairs[0], 1.0);
        assert_eq!(a.found, b.found, "{} nondeterministic", method.name());
        assert_eq!(a.formula_evals, b.formula_evals);
    }
}

#[test]
fn testbed_generation_is_deterministic() {
    let w = Workload {
        pairs: 3,
        ..Workload::default()
    };
    let a = dislocation_pairs(Testbed::DsFb, &w);
    let b = dislocation_pairs(Testbed::DsFb, &w);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.log1, y.log1);
        assert_eq!(x.log2, y.log2);
        assert_eq!(x.truth, y.truth);
    }
}

/// The Figure 3/9 headline: on dislocated-beginning workloads EMS beats the
/// single-direction and local baselines by a wide margin.
#[test]
fn headline_dislocation_gap_holds() {
    let w = Workload {
        pairs: 4,
        ..Workload::default()
    };
    let pairs = dislocation_pairs(Testbed::DsB, &w);
    let mean = |method: Method| -> f64 {
        pairs
            .iter()
            .map(|p| accuracy(p, &run_method(method, p, 1.0)).f_measure)
            .sum::<f64>()
            / pairs.len() as f64
    };
    let ems = mean(Method::Ems);
    let bhv = mean(Method::Bhv);
    let ged = mean(Method::Ged);
    assert!(ems > bhv + 0.3, "EMS {ems} vs BHV {bhv}");
    assert!(ems > ged + 0.3, "EMS {ems} vs GED {ged}");
}

/// The Figure 5 headline: estimation accuracy is monotone-ish in I and
/// EMS+es(MAX-ish) approaches exact EMS.
#[test]
fn estimation_accuracy_improves_with_i() {
    let w = Workload {
        pairs: 4,
        ..Workload::default()
    };
    let pairs = dislocation_pairs(Testbed::DsFb, &w);
    let mean = |method: Method| -> f64 {
        pairs
            .iter()
            .map(|p| accuracy(p, &run_method(method, p, 1.0)).f_measure)
            .sum::<f64>()
            / pairs.len() as f64
    };
    let i0 = mean(Method::EmsEstimated(0));
    let i10 = mean(Method::EmsEstimated(10));
    let exact = mean(Method::Ems);
    assert!(i10 + 1e-9 >= i0, "I=10 ({i10}) worse than I=0 ({i0})");
    assert!(
        (i10 - exact).abs() < 0.15,
        "I=10 ({i10}) far from exact ({exact})"
    );
}

/// The Figure 10 pipeline: composite matching runs deterministically end to
/// end and the EMS variant finds the injected composites' parts.
#[test]
fn composite_pipeline_is_deterministic_and_effective() {
    let w = Workload {
        pairs: 2,
        activities: 14,
        traces: 120,
        composites: 2,
        dislocated: 0,
        ..Workload::default()
    };
    let pairs = composite_pairs(&w);
    let config = CompositeConfig {
        delta: 0.001,
        ..CompositeConfig::default()
    };
    let (a, ca) = run_composite(
        CompositeMethod::Ems,
        &pairs[0],
        1.0,
        &CandidateConfig::default(),
        &config,
    );
    let (b, cb) = run_composite(
        CompositeMethod::Ems,
        &pairs[0],
        1.0,
        &CandidateConfig::default(),
        &config,
    );
    assert_eq!(a.found, b.found);
    assert_eq!(ca.merges, cb.merges);
    assert_eq!(ca.evaluations, cb.evaluations);
    // Accuracy on the committed workload clears the no-composite baseline.
    let with_merge = accuracy(&pairs[0], &a).f_measure;
    assert!(with_merge > 0.5, "composite pipeline f = {with_merge}");
}
