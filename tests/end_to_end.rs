//! Cross-crate integration tests: the full pipeline from synthetic log
//! generation through XES round-trips, dependency graphs, EMS similarity,
//! correspondence selection and scoring.

use event_matching::assignment::max_total_assignment;
use event_matching::core::{Ems, EmsParams};
use event_matching::depgraph::DependencyGraph;
use event_matching::eval::score;
use event_matching::events::{EventId, EventLog};
use event_matching::synth::{Dislocation, LogPair, PairConfig, PairGenerator, TreeConfig};
use event_matching::xes::{from_event_log, parse_str, to_event_log, write_string};

fn generate(seed: u64, dislocation: Dislocation, opaque: f64) -> LogPair {
    PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 18,
            seed,
            max_branch: 5,
            ..TreeConfig::default()
        },
        traces_per_log: 80,
        seed: seed + 500,
        dislocation,
        opaque_fraction: opaque,
        ..PairConfig::default()
    })
    .generate()
}

fn match_and_score(pair: &LogPair, params: EmsParams) -> f64 {
    let out = Ems::new(params).match_logs(&pair.log1, &pair.log2);
    let sim = &out.similarity;
    let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 1e-6);
    let found: Vec<(String, String)> = cs
        .iter()
        .map(|c| {
            (
                pair.log1.name_of(EventId::from_index(c.left)).to_owned(),
                pair.log2.name_of(EventId::from_index(c.right)).to_owned(),
            )
        })
        .collect();
    score(
        pair.truth.iter(),
        found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .f_measure
}

#[test]
fn clean_opaque_pair_matches_well() {
    let pair = generate(1, Dislocation::None, 1.0);
    let f = match_and_score(&pair, EmsParams::structural());
    assert!(f > 0.7, "f-measure {f}");
}

#[test]
fn dislocated_pair_still_matches() {
    let pair = generate(4, Dislocation::Front(2), 1.0);
    let f = match_and_score(&pair, EmsParams::structural());
    assert!(f > 0.5, "f-measure {f}");
}

#[test]
fn labels_help_when_names_are_readable() {
    let pair = generate(3, Dislocation::Front(2), 0.0);
    let structural = match_and_score(&pair, EmsParams::structural());
    let labeled = match_and_score(&pair, EmsParams::with_labels(0.5));
    assert!(
        labeled >= structural,
        "labels hurt: {labeled} < {structural}"
    );
    assert!(labeled > 0.9, "readable names should ~solve it: {labeled}");
}

#[test]
fn estimation_stays_close_to_exact() {
    let pair = generate(4, Dislocation::Front(1), 1.0);
    let exact = match_and_score(&pair, EmsParams::structural());
    let estimated = match_and_score(&pair, EmsParams::structural().estimated(5));
    assert!(
        (exact - estimated).abs() < 0.25,
        "estimation diverged: exact {exact}, estimated {estimated}"
    );
}

#[test]
fn xes_roundtrip_preserves_matching_results() {
    let pair = generate(5, Dislocation::None, 1.0);
    let rt = |log: &EventLog| -> EventLog {
        to_event_log(&parse_str(&write_string(&from_event_log(log))).expect("roundtrip parse"))
    };
    let log1 = rt(&pair.log1);
    let log2 = rt(&pair.log2);
    let direct = Ems::new(EmsParams::structural()).match_logs(&pair.log1, &pair.log2);
    let roundtripped = Ems::new(EmsParams::structural()).match_logs(&log1, &log2);
    assert!(
        direct.similarity.max_abs_diff(&roundtripped.similarity) < 1e-12,
        "XES round-trip changed similarities"
    );
}

#[test]
fn dependency_graph_is_stable_across_trace_order() {
    let pair = generate(6, Dislocation::None, 1.0);
    let g = DependencyGraph::from_log(&pair.log1);
    // Rebuild from a log with reversed trace order: graphs must be equal.
    let mut reversed = EventLog::new();
    // Intern names in the same id order first so NodeIds align.
    for i in 0..pair.log1.alphabet_size() {
        reversed.intern(pair.log1.name_of(EventId::from_index(i)));
    }
    for t in pair.log1.traces().iter().rev() {
        reversed.push_trace(t.events().iter().map(|&e| pair.log1.name_of(e)));
    }
    let g2 = DependencyGraph::from_log(&reversed);
    assert_eq!(g.num_real(), g2.num_real());
    for v in g.real_nodes() {
        assert!((g.node_frequency(v) - g2.node_frequency(v)).abs() < 1e-12);
    }
    for (a, b, f) in g.real_edges() {
        let f2 = g2.edge_frequency(a, b).expect("edge must exist");
        assert!((f - f2).abs() < 1e-12);
    }
}

#[test]
fn matching_is_deterministic() {
    let pair = generate(7, Dislocation::Front(1), 1.0);
    let a = Ems::new(EmsParams::structural()).match_logs(&pair.log1, &pair.log2);
    let b = Ems::new(EmsParams::structural()).match_logs(&pair.log1, &pair.log2);
    assert_eq!(a.similarity.data(), b.similarity.data());
    // Wall-clock phase times legitimately differ between runs; every
    // work counter must not.
    let mut sa = a.stats.clone();
    let mut sb = b.stats.clone();
    sa.phase_times = Default::default();
    sb.phase_times = Default::default();
    assert_eq!(sa, sb);
}
