//! PR5 acceptance: the staged [`MatchSession`] pipeline is a pure
//! optimization — caching and warm-starting change *work*, never *results*.
//!
//! On an acyclic corpus (every pair has a finite Proposition-2 horizon) with
//! an epsilon small enough that the exact phase runs every pair to its
//! horizon, the following must hold at 1 and 4 threads:
//!
//! 1. a session's cold match is bit-identical (similarity, forward,
//!    backward) to the one-shot [`Ems`] pipeline, and its redacted
//!    `ems-trace/1` engine export is byte-identical to the one-shot trace;
//! 2. a cached re-match skips graph, substrate and label construction
//!    (proved by the session recorder's cache counters and stage spans) yet
//!    reproduces the similarity and the redacted engine trace byte for byte;
//! 3. a warm-started re-match seeds from the prior fixpoint, converges in
//!    exactly one iteration per direction (Theorem 1: re-evaluating the
//!    fixpoint is stationary), and yields the bit-identical matrix.

use ems_core::{Ems, EmsParams, MatchOutcome, MatchSession, RunOptions, SessionOptions};
use ems_depgraph::DependencyGraph;
use ems_events::EventLog;
use ems_obs::{jsonl, Record, Recorder};
use std::sync::Arc;

/// A log whose traces are strictly increasing index sequences over `n`
/// activities: every edge goes from a lower to a higher index, so the
/// dependency graph is acyclic and every `l(v)` is finite (well under the
/// default iteration cap).
fn dag_log(n: usize, salt: usize, traces: usize) -> EventLog {
    let names: Vec<String> = (0..n).map(|i| format!("t{i:03}")).collect();
    let mut log = EventLog::new();
    for t in 0..traces {
        let mut idx = (t + salt) % 5;
        let mut trace: Vec<&str> = Vec::new();
        while idx < n {
            trace.push(&names[idx]);
            idx += 2 + (t + idx) % 4; // strides 2..=5: chains stay short
        }
        if trace.len() >= 2 {
            log.push_trace(trace);
        }
    }
    log
}

/// Large enough that the initial worklist (68 × 66 = 4488 pairs) crosses
/// the parallel kernel's spawn threshold, so `threads: 4` genuinely
/// exercises the sharded path.
fn corpus() -> (EventLog, EventLog) {
    (dag_log(68, 0, 40), dag_log(66, 1, 36))
}

/// Epsilon far below any reachable delta: the exact phase never stops
/// before every pair has retired at its horizon — the precondition for the
/// warm-start stationarity argument.
fn exact_params(threads: usize) -> EmsParams {
    EmsParams {
        epsilon: 1e-300,
        threads,
        ..EmsParams::structural()
    }
}

/// The pre-session one-shot pipeline with an engine recorder attached.
fn one_shot(threads: usize) -> (MatchOutcome, String) {
    let (l1, l2) = corpus();
    let recorder = Arc::new(Recorder::new());
    let ems = Ems::try_new(exact_params(threads)).expect("params are valid");
    let g1 = DependencyGraph::from_log(&l1);
    let g2 = DependencyGraph::from_log(&l2);
    let labels = ems.label_matrix(&l1, &l2);
    let options = RunOptions {
        recorder: Some(Arc::clone(&recorder)),
        ..RunOptions::default()
    };
    let out = ems
        .try_match_graphs_opts(&g1, &g2, &labels, &options, &options)
        .expect("one-shot match succeeds");
    (out, jsonl::write_redacted(&recorder.records()))
}

struct SessionRun {
    outcome: MatchOutcome,
    engine_trace: String,
}

/// Runs cold, cached and warm through one session; each call gets a fresh
/// engine recorder (so traces are byte-comparable) while the session
/// recorder accumulates stage/cache telemetry across all three.
fn session_runs(threads: usize) -> (Vec<SessionRun>, Arc<Recorder>, MatchSession) {
    let (l1, l2) = corpus();
    let session_rec = Arc::new(Recorder::new());
    let mut session = MatchSession::try_new(exact_params(threads))
        .expect("params are valid")
        .with_recorder(Arc::clone(&session_rec));
    let h1 = session.ingest(l1);
    let h2 = session.ingest(l2);
    let mut runs = Vec::new();
    for warm_start in [false, false, true] {
        let engine_rec = Arc::new(Recorder::new());
        let options = SessionOptions {
            warm_start,
            recorder: Some(Arc::clone(&engine_rec)),
            ..SessionOptions::default()
        };
        let outcome = session
            .match_pair_opts(h1, h2, &options)
            .expect("session match succeeds");
        runs.push(SessionRun {
            outcome,
            engine_trace: jsonl::write_redacted(&engine_rec.records()),
        });
    }
    (runs, session_rec, session)
}

fn assert_bitwise_equal(a: &MatchOutcome, b: &MatchOutcome, what: &str) {
    assert_eq!(
        a.similarity.max_abs_diff(&b.similarity),
        0.0,
        "{what}: similarity must be bit-identical"
    );
    assert_eq!(
        a.forward.max_abs_diff(&b.forward),
        0.0,
        "{what}: forward must be bit-identical"
    );
    assert_eq!(
        a.backward.max_abs_diff(&b.backward),
        0.0,
        "{what}: backward must be bit-identical"
    );
}

#[test]
fn cold_cached_and_warm_session_runs_are_bit_identical_to_one_shot() {
    for threads in [1, 4] {
        let (reference, reference_trace) = one_shot(threads);
        let (runs, _, session) = session_runs(threads);
        let [cold, cached, warm] = &runs[..] else {
            panic!("expected three session runs");
        };

        // 1. Cold session == one-shot, down to the redacted engine trace.
        assert_bitwise_equal(&cold.outcome, &reference, "cold vs one-shot");
        assert_eq!(
            cold.engine_trace, reference_trace,
            "threads={threads}: cold session engine trace must be \
             byte-identical to the one-shot trace"
        );

        // 2. Cached re-match: identical results AND identical engine trace
        //    (the skipped stages emit to the session recorder only).
        assert_bitwise_equal(&cached.outcome, &reference, "cached vs one-shot");
        assert_eq!(
            cached.engine_trace, cold.engine_trace,
            "threads={threads}: cached re-match engine trace must be \
             byte-identical to the cold run's"
        );

        // 3. Warm re-match: identical matrix, one iteration per direction.
        assert_bitwise_equal(&warm.outcome, &reference, "warm vs one-shot");
        assert!(cold.outcome.stats.iterations > 1);
        assert_eq!(
            warm.outcome.stats.iterations, 1,
            "threads={threads}: re-evaluating the fixpoint must be stationary"
        );
        let parsed =
            jsonl::parse_records(&warm.engine_trace).expect("warm trace conforms to ems-trace/1");
        let curves = jsonl::check_convergence(&parsed).expect("max_delta is non-increasing");
        assert_eq!(curves.len(), 2, "forward + backward engines");
        for (engine, iterations) in &curves {
            assert_eq!(
                *iterations, 1,
                "engine {engine} should converge in one warm iteration"
            );
        }

        // Cache accounting: the three runs built each product exactly once.
        let stats = session.stats();
        assert_eq!(stats.graph_builds, 2);
        assert_eq!(stats.graph_cache_hits, 4);
        assert_eq!(stats.substrate_builds, 2);
        assert_eq!(stats.substrate_cache_hits, 4);
        assert_eq!(stats.label_builds, 1);
        assert_eq!(stats.label_cache_hits, 2);
        assert_eq!(stats.warm_starts, 1);
    }
}

#[test]
fn session_recorder_proves_cached_rematch_skipped_construction() {
    let (_, session_rec, _) = session_runs(1);
    let records = session_rec.records();

    // Stage spans fire only on the cold run: 2 model builds, 2 substrate
    // builds, and never again on the cached or warm re-match.
    let spans = |name: &str| {
        records
            .iter()
            .filter(|r| matches!(r, Record::Span { name: n, .. } if n == name))
            .count()
    };
    assert_eq!(spans("session.model"), 2);
    assert_eq!(spans("session.substrate"), 2);

    // The cache counters tell the same story in the exported trace.
    let hits = |name: &str| {
        records
            .iter()
            .filter(|r| {
                matches!(
                    r,
                    Record::Counter { name: n, labels, .. }
                        if n == name
                            && labels.iter().any(|(k, v)| k == "result" && v == "hit")
                )
            })
            .count()
    };
    assert_eq!(hits("session.graph_cache"), 4, "2 re-matches × 2 logs");
    assert_eq!(
        hits("session.substrate_cache"),
        4,
        "2 re-matches × 2 directions"
    );
    assert_eq!(hits("session.label_cache"), 2, "one per re-match");

    // The warm start is visible too.
    assert!(records
        .iter()
        .any(|r| matches!(r, Record::Counter { name, .. } if name == "session.warm_start")));

    // Graph observation still reaches the trace (the CLI contract).
    assert!(records
        .iter()
        .any(|r| matches!(r, Record::Gauge { name, .. } if name == "graph_vertices")));
}
