//! Integration tests of the composite-event pipeline: candidate discovery
//! on synthesized logs, the greedy matcher, name expansion and scoring.

use event_matching::assignment::max_total_assignment;
use event_matching::core::composite::{
    discover_candidates, CandidateConfig, CompositeConfig, CompositeMatcher,
};
use event_matching::core::{Ems, EmsParams};
use event_matching::eval::{expand_merged, score};
use event_matching::events::{EventId, EventLog};
use std::collections::HashMap;

/// Builds the Figure-1 style pair: log 2 fuses "check" and "validate" into
/// one composite event.
fn figure1_pair() -> (EventLog, EventLog) {
    let mut l1 = EventLog::new();
    for _ in 0..2 {
        l1.push_trace(["cash", "check", "validate", "ship", "mail"]);
    }
    for _ in 0..3 {
        l1.push_trace(["card", "check", "validate", "mail", "ship"]);
    }
    let mut l2 = EventLog::new();
    for _ in 0..2 {
        l2.push_trace(["accept", "e-cash", "chk+val", "e-ship", "e-mail"]);
    }
    for _ in 0..3 {
        l2.push_trace(["accept", "e-card", "chk+val", "e-mail", "e-ship"]);
    }
    (l1, l2)
}

#[test]
fn candidate_discovery_finds_the_fused_steps() {
    let (l1, _) = figure1_pair();
    let cands = discover_candidates(&l1, &CandidateConfig::default());
    assert!(
        cands.iter().any(|c| c.parts == ["check", "validate"]),
        "candidates: {cands:?}"
    );
}

#[test]
fn greedy_matcher_merges_and_improves_average() {
    let (l1, l2) = figure1_pair();
    let cands1 = discover_candidates(&l1, &CandidateConfig::default());
    let cands2 = discover_candidates(&l2, &CandidateConfig::default());
    let matcher = CompositeMatcher::new(
        Ems::new(EmsParams::structural()),
        CompositeConfig {
            delta: 0.001,
            ..CompositeConfig::default()
        },
    );
    let base = Ems::new(EmsParams::structural())
        .match_logs(&l1, &l2)
        .similarity
        .average();
    let outcome = matcher.match_logs(&l1, &l2, &cands1, &cands2);
    assert!(
        outcome
            .merges
            .iter()
            .any(|m| m.side == 1 && m.candidate.parts == ["check", "validate"]),
        "merges: {:?}",
        outcome.merges
    );
    assert!(outcome.average > base, "{} <= {base}", outcome.average);
}

#[test]
fn expanded_correspondences_score_correctly() {
    let (l1, l2) = figure1_pair();
    let cands1 = discover_candidates(&l1, &CandidateConfig::default());
    let matcher = CompositeMatcher::new(
        Ems::new(EmsParams::structural()),
        CompositeConfig {
            delta: 0.001,
            ..CompositeConfig::default()
        },
    );
    let outcome = matcher.match_logs(&l1, &l2, &cands1, &[]);
    let sim = &outcome.similarity;
    let cs = max_total_assignment(sim.rows(), sim.cols(), |i, j| sim.get(i, j), 1e-6);
    let raw: Vec<(String, String)> = cs
        .iter()
        .map(|c| {
            (
                outcome.log1.name_of(EventId::from_index(c.left)).to_owned(),
                outcome
                    .log2
                    .name_of(EventId::from_index(c.right))
                    .to_owned(),
            )
        })
        .collect();
    let mut left_map = HashMap::new();
    for m in &outcome.merges {
        if m.side == 1 {
            left_map.insert(m.candidate.merged_name(), m.candidate.parts.clone());
        }
    }
    let found = expand_merged(&raw, &left_map, &HashMap::new());
    let truth = [
        ("cash", "e-cash"),
        ("card", "e-card"),
        ("check", "chk+val"),
        ("validate", "chk+val"),
        ("ship", "e-ship"),
        ("mail", "e-mail"),
    ];
    let acc = score(
        truth.iter().copied(),
        found.iter().map(|(a, b)| (a.as_str(), b.as_str())),
    );
    assert!(acc.f_measure > 0.8, "f-measure {}", acc.f_measure);
    // The composite's both parts must be found.
    assert!(found.iter().any(|(l, r)| l == "check" && r == "chk+val"));
    assert!(found.iter().any(|(l, r)| l == "validate" && r == "chk+val"));
}

#[test]
fn pruning_does_not_change_accepted_merges() {
    let (l1, l2) = figure1_pair();
    let cands1 = discover_candidates(&l1, &CandidateConfig::default());
    let run = |uc: bool, bd: bool| {
        let matcher = CompositeMatcher::new(
            Ems::new(EmsParams::structural()),
            CompositeConfig {
                delta: 0.001,
                unchanged_pruning: uc,
                upper_bound_pruning: bd,
                ..CompositeConfig::default()
            },
        );
        matcher.match_logs(&l1, &l2, &cands1, &[])
    };
    let base = run(false, false);
    for (uc, bd) in [(true, false), (false, true), (true, true)] {
        let out = run(uc, bd);
        let names = |o: &event_matching::core::composite::CompositeOutcome| {
            let mut v: Vec<String> = o
                .merges
                .iter()
                .map(|m| format!("{}:{}", m.side, m.candidate.merged_name()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&base), names(&out), "uc={uc} bd={bd}");
        assert!((base.average - out.average).abs() < 1e-3);
    }
}
