//! Fault-injection harness: corrupts well-formed inputs and exhausts
//! budgets, asserting that every library entry point either succeeds, or
//! fails with a *typed* error — never a panic — and that recovery mode
//! always returns a usable (possibly partial) result.

use ems_rng::StdRng;
use event_matching::core::{Budget, Ems, EmsParams};
use event_matching::depgraph::DependencyGraph;
use event_matching::error::EmsError;
use event_matching::synth::{PairConfig, PairGenerator, TreeConfig};
use event_matching::xes::{self, ParseMode};

/// A small but structurally rich well-formed XES document.
fn wellformed_xes(seed: u64) -> String {
    let pair = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 10,
            seed,
            max_branch: 4,
            ..TreeConfig::default()
        },
        traces_per_log: 12,
        seed: seed + 500,
        opaque_fraction: 1.0,
        ..PairConfig::default()
    })
    .generate();
    xes::write_string(&xes::from_event_log(&pair.log1))
}

/// Applies one random byte-level corruption: overwrite, insert, delete, or
/// truncate. Returns the corrupted document as a (lossy) string, the way a
/// file with encoding damage would reach the parser.
fn corrupt(doc: &str, rng: &mut StdRng) -> String {
    let mut bytes = doc.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let n_edits = rng.gen_range(1..8usize);
    for _ in 0..n_edits {
        if bytes.is_empty() {
            break;
        }
        let pos = rng.gen_range(0..bytes.len());
        match rng.gen_range(0..4u32) {
            0 => bytes[pos] = (rng.next_u32() & 0xff) as u8,
            1 => bytes.insert(pos, (rng.next_u32() & 0xff) as u8),
            2 => {
                bytes.remove(pos);
            }
            _ => bytes.truncate(pos),
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn random_byte_mutations_never_panic_and_strict_errors_are_typed() {
    let doc = wellformed_xes(11);
    let mut rng = StdRng::seed_from_u64(0xFA17);
    for _ in 0..300 {
        let broken = corrupt(&doc, &mut rng);
        // Strict mode: parse or a typed error that converts into the
        // workspace taxonomy with a stable nonzero exit code.
        if let Err(e) = xes::load_event_log_str(&broken, ParseMode::Strict) {
            let ems: EmsError = e.into();
            assert!(ems.exit_code() >= 2, "exit code for {ems}");
        }
        // Recovery mode: always a (possibly empty) log, and whatever was
        // salvaged feeds the rest of the pipeline without panicking.
        let recovered = xes::load_event_log_str(&broken, ParseMode::Recovery)
            .expect("recovery only fails on I/O");
        let g = DependencyGraph::from_log(&recovered.log);
        g.validate().expect("recovered log builds a valid graph");
    }
}

#[test]
fn truncation_at_every_byte_is_handled() {
    let doc = wellformed_xes(12);
    let full = xes::load_event_log_str(&doc, ParseMode::Strict)
        .expect("well-formed")
        .log;
    // Sample prefixes densely (every boundary on a small doc is O(n²) work).
    let step = (doc.len() / 400).max(1);
    for end in (0..doc.len()).step_by(step) {
        if !doc.is_char_boundary(end) {
            continue;
        }
        let prefix = &doc[..end];
        let _ = xes::load_event_log_str(prefix, ParseMode::Strict);
        let recovered = xes::load_event_log_str(prefix, ParseMode::Recovery).expect("recovery");
        assert!(
            recovered.log.num_traces() <= full.num_traces(),
            "truncated prefix produced more traces than the full document"
        );
        if end < doc.len() {
            assert!(
                !recovered.warnings.is_empty()
                    || recovered.log.num_traces() == 0
                    || prefix.trim_end().ends_with("</trace>"),
                "a strict prefix that lost data must warn (end={end})"
            );
        }
    }
}

#[test]
fn recovery_is_silent_and_identical_on_clean_input() {
    for seed in [21, 22, 23] {
        let doc = wellformed_xes(seed);
        let strict = xes::load_event_log_str(&doc, ParseMode::Strict).unwrap();
        let recovered = xes::load_event_log_str(&doc, ParseMode::Recovery).unwrap();
        assert!(
            recovered.is_clean(),
            "warnings on clean input: {:?}",
            recovered.warnings
        );
        assert_eq!(strict.log.num_traces(), recovered.log.num_traces());
        assert_eq!(strict.log.num_events(), recovered.log.num_events());
        assert_eq!(strict.log.alphabet_size(), recovered.log.alphabet_size());
    }
}

#[test]
fn exhausted_budget_still_returns_usable_degraded_result() {
    let pair = PairGenerator::new(PairConfig {
        tree: TreeConfig {
            num_activities: 12,
            seed: 31,
            max_branch: 4,
            ..TreeConfig::default()
        },
        traces_per_log: 40,
        seed: 531,
        opaque_fraction: 1.0,
        ..PairConfig::default()
    })
    .generate();
    let ems = Ems::new(EmsParams::structural());
    let full = ems.match_logs(&pair.log1, &pair.log2);
    for budget in [
        Budget {
            max_iterations: Some(0),
            ..Default::default()
        },
        Budget {
            max_formula_evals: Some(1),
            ..Default::default()
        },
        Budget {
            wall_clock: Some(std::time::Duration::ZERO),
            ..Default::default()
        },
    ] {
        let out = ems.match_logs_budgeted(&pair.log1, &pair.log2, &budget);
        assert!(out.stats.degraded, "budget {budget:?} did not degrade");
        assert_eq!(out.similarity.rows(), full.similarity.rows());
        assert_eq!(out.similarity.cols(), full.similarity.cols());
        for (_, _, v) in out.similarity.iter() {
            assert!((0.0..=1.0).contains(&v), "out-of-range similarity {v}");
        }
        // The degraded matrix supports correspondence selection.
        let cs = event_matching::assignment::max_total_assignment(
            out.similarity.rows(),
            out.similarity.cols(),
            |i, j| out.similarity.get(i, j),
            0.0,
        );
        assert!(!cs.is_empty());
    }
    assert!(!full.stats.degraded);
}

#[test]
fn corrupt_numeric_inputs_yield_typed_errors_with_distinct_codes() {
    // Graph layer: NaN frequency.
    let g_err = DependencyGraph::try_from_parts(
        vec!["a".into(), "b".into()],
        vec![f64::NAN, 1.0],
        &[(0, 1, 0.5)],
    )
    .unwrap_err();
    // Core layer: invalid parameters.
    let bad = EmsParams {
        c: f64::NAN,
        ..EmsParams::default()
    };
    let p_err = Ems::try_new(bad).unwrap_err();
    // Assignment layer: non-finite weight.
    let a_err =
        event_matching::assignment::try_hungarian_max(1, 1, |_, _| f64::INFINITY).unwrap_err();
    let codes: Vec<u8> = [
        EmsError::from(g_err).exit_code(),
        EmsError::from(p_err).exit_code(),
        EmsError::from(a_err).exit_code(),
    ]
    .into();
    let mut dedup = codes.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), codes.len(), "colliding exit codes {codes:?}");
    assert!(codes.iter().all(|&c| c >= 2));
}
